"""repro.farm -- parallel, artifact-cached experiment execution.

The farm models every experiment cell as a typed job in a dependency
graph (``build -> trace -> analyze/simulate``), runs the graph across a
``multiprocessing`` worker pool, and persists every result in a
content-addressed on-disk artifact store keyed by deterministic
fingerprints.  Warm re-runs are pure cache hits; a crashed or timed-out
worker fails only its cell, never the sweep.

Layers (each its own module):

=================  ====================================================
module             responsibility
=================  ====================================================
``fingerprint``    deterministic digests of sources and configurations
``store``          content-addressed artifact store with LRU eviction
``snapshots``      SimResult/TraceAnalysis <-> ``repro.metrics/1`` JSON
``jobs``           typed job specs, the cell planner, job execution
``scheduler``      the worker pool: timeouts, retries, crash recovery,
                   span threading, per-job resource accounting, and the
                   live-status heartbeat
``progress``       live one-line progress sink for farm events
``ledger``         persistent ``repro.ledger/1`` run manifests, drift
                   comparison, Chrome-trace export
``top``            the ``repro farm top`` live dashboard
``api``            store-backed ``analysis_for``/``sim_for`` used by
                   :mod:`repro.experiments.common`
=================  ====================================================

See docs/experiments.md for the job graph, fingerprinting and
invalidation rules, and failure semantics; docs/observability.md for
span tracing, the run ledger, and ``farm top``/``history``/``timeline``.
"""

from repro.farm.fingerprint import FARM_SCHEMA, config_digest, fingerprint
from repro.farm.jobs import Cell, JobGraph, JobSpec, plan_jobs
from repro.farm.ledger import (
    LEDGER_SCHEMA,
    LedgerRun,
    RunDelta,
    compare_runs,
    find_run,
    list_runs,
    load_run,
    run_from_sweep,
    write_run,
)
from repro.farm.scheduler import FarmRunResult, JobOutcome, run_graph
from repro.farm.store import ArtifactStore, default_store_root

__all__ = [
    "ArtifactStore",
    "Cell",
    "FARM_SCHEMA",
    "FarmRunResult",
    "JobGraph",
    "JobOutcome",
    "JobSpec",
    "LEDGER_SCHEMA",
    "LedgerRun",
    "RunDelta",
    "compare_runs",
    "config_digest",
    "default_store_root",
    "find_run",
    "fingerprint",
    "list_runs",
    "load_run",
    "plan_jobs",
    "run_from_sweep",
    "run_graph",
    "write_run",
]
