"""Deterministic fingerprints for farm artifacts.

Every artifact key is a SHA-256 over a canonical JSON encoding of the
inputs that determine the artifact's content:

* the farm schema version (:data:`FARM_SCHEMA`) and the package version
  -- bumping either invalidates the whole store,
* the benchmark's MiniC source text digest and the
  :class:`~repro.compiler.options.CompilerOptions` digest (build
  manifests),
* the built program's text CRC
  (:func:`repro.cpu.tracefile.program_crc`) -- downstream artifacts are
  keyed by what was *actually compiled*, so a compiler change that does
  not alter the emitted code keeps its traces and simulations,
* the :class:`~repro.pipeline.config.MachineConfig` /
  :class:`~repro.fac.config.FacConfig` digests (simulations), and the
  analyzer geometry (analyses),
* the instruction budget.

Configurations are frozen dataclasses; :func:`config_digest` walks them
into canonical JSON (sorted keys, no whitespace) so the digest is stable
across processes and Python hash seeds.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import repro

#: Version tag mixed into every fingerprint *and* stored in artifact
#: metadata. Bump the trailing integer when the artifact layout, the
#: snapshot encodings, or the simulator's observable behaviour change
#: incompatibly -- old artifacts then simply stop matching.
FARM_SCHEMA = "repro.farm/1"


def _canonical(value):
    """Reduce ``value`` to JSON-encodable canonical form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = dataclasses.fields(value)
        return {
            "__dataclass__": type(value).__name__,
            **{f.name: _canonical(getattr(value, f.name)) for f in fields},
        }
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, frozenset):
        return sorted(str(v) for v in value)
    raise TypeError(f"cannot fingerprint {type(value).__name__}: {value!r}")


def config_digest(obj) -> str:
    """SHA-256 hex digest of a configuration object (frozen dataclass,
    dict, or any nesting of JSON-able values)."""
    encoded = json.dumps(_canonical(obj), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def fingerprint(*parts) -> str:
    """Combine heterogeneous parts into one artifact key.

    The schema and package versions are always mixed in, so any
    incompatible change invalidates every key at once.
    """
    payload = json.dumps(
        [FARM_SCHEMA, repro.__version__] + [_canonical(p) for p in parts],
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def source_digest(text: str) -> str:
    """Digest of one benchmark's MiniC source text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
