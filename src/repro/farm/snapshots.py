"""Serialize simulation results and trace analyses as ``repro.metrics/1``
snapshots (the PR 2 observability format).

The farm persists every computed cell as a versioned metrics snapshot:
raw counters and histograms go in the ``metrics`` section through a
:class:`~repro.obs.metrics.MetricsRegistry`; the handful of values that
are not integer counters (miss *ratios*, captured stdout, the
``extras`` dict) ride in ``meta``. Encoding is deterministic -- sorted
keys, no wall-clock fields -- so a parallel farm run and a serial
in-process run produce byte-identical snapshots for the same cell
(enforced by ``tests/farm/test_determinism.py``).
"""

from __future__ import annotations

from dataclasses import fields

from repro.analysis.prediction import PredictionStats, TraceAnalysis
from repro.analysis.refclass import GENERAL, GLOBAL, STACK, ReferenceProfile
from repro.obs.metrics import MetricsRegistry
from repro.pipeline.result import SimResult

_REF_CLASSES = (GLOBAL, STACK, GENERAL)

_PRED_COUNTERS = (
    "loads", "stores", "load_failures", "store_failures",
    "norr_loads", "norr_stores", "norr_load_failures", "norr_store_failures",
)

_ANALYSIS_META_FLOATS = (
    "icache_miss_ratio", "dcache_miss_ratio", "tlb_miss_ratio",
)


# ------------------------------------------------------------------ #
# SimResult

def sim_to_snapshot(result: SimResult, meta: dict | None = None) -> dict:
    """Encode one :class:`SimResult` as a ``repro.metrics/1`` snapshot."""
    registry = MetricsRegistry()
    result.to_registry(registry, prefix="sim")
    merged = dict(meta or {})
    merged["extras"] = {k: result.extras[k] for k in sorted(result.extras)}
    return registry.snapshot(meta=merged)


def sim_from_snapshot(snapshot: dict) -> SimResult:
    """Rebuild a :class:`SimResult` from :func:`sim_to_snapshot` output."""
    registry = MetricsRegistry.from_snapshot(snapshot)
    kwargs = {}
    for f in fields(SimResult):
        if f.name == "extras":
            continue
        path = f"sim.{f.name}"
        if path not in registry:
            raise ValueError(f"sim snapshot missing counter {path!r}")
        kwargs[f.name] = registry.counter(path).count
    result = SimResult(**kwargs)
    result.extras.update(snapshot.get("meta", {}).get("extras", {}))
    return result


# ------------------------------------------------------------------ #
# TraceAnalysis

def analysis_to_snapshot(analysis: TraceAnalysis,
                         meta: dict | None = None) -> dict:
    """Encode one :class:`TraceAnalysis` as a ``repro.metrics/1`` snapshot.

    ``per_pc`` tables are *not* serialized -- they exist only for the
    static-analysis soundness checks, which run their own analyses.
    """
    registry = MetricsRegistry()
    profile = analysis.profile
    registry.counter("profile.instructions").incr(profile.instructions)
    registry.counter("profile.loads").incr(profile.loads)
    registry.counter("profile.stores").incr(profile.stores)
    for ref_class in _REF_CLASSES:
        registry.counter(f"profile.load_class.{ref_class}").incr(
            profile.load_class[ref_class])
        registry.counter(f"profile.store_class.{ref_class}").incr(
            profile.store_class[ref_class])
        registry.histogram(f"profile.offsets.{ref_class}").merge(
            profile.offset_hist[ref_class])
    for block_size, stats in analysis.predictions.items():
        prefix = f"pred.{block_size}"
        for name in _PRED_COUNTERS:
            registry.counter(f"{prefix}.{name}").incr(getattr(stats, name))
        for signal, count in stats.signal_counts.items():
            registry.counter(f"{prefix}.signals.{signal}").incr(count)
    merged = dict(meta or {})
    merged["block_sizes"] = sorted(analysis.predictions)
    merged["memory_usage"] = analysis.memory_usage
    merged["instructions"] = analysis.instructions
    merged["stdout"] = analysis.stdout
    for name in _ANALYSIS_META_FLOATS:
        merged[name] = getattr(analysis, name)
    return registry.snapshot(meta=merged)


def suite_snapshot(benchmarks=None, machines=("base", "fac32"),
                   software: bool = False) -> dict:
    """One merged ``repro.metrics/1`` snapshot for a whole suite sweep.

    Per benchmark, the functional prediction rates land under
    ``<bench>.pred<bs>`` (a ratio: successful predictions over
    speculated accesses) and every requested machine flavour's
    :class:`SimResult` under ``<bench>.<machine>.*`` -- including the
    ``<bench>.<machine>.fac`` prediction-rate ratio the regression gate
    watches. All cells come from the artifact store (computed on miss),
    so re-running the same sweep is cheap and byte-identical
    (``repro diff`` on two such runs exits clean).
    """
    from repro.experiments import common  # lazy: avoids an import cycle

    names = common.suite_names(benchmarks)
    registry = MetricsRegistry()
    for name in names:
        analysis = common.analysis_for(name, software)
        for block_size, stats in sorted(analysis.predictions.items()):
            speculated = stats.loads + stats.stores
            failures = stats.load_failures + stats.store_failures
            ratio = registry.ratio(f"{name}.pred{block_size}")
            ratio.hits = speculated - failures
            ratio.total = speculated
        for machine in machines:
            result = common.sim_for(name, software, machine)
            result.to_registry(registry, prefix=f"{name}.{machine}")
    meta = {
        "kind": "suite-sweep",
        "benchmarks": list(names),
        "machines": list(machines),
        "software": software,
    }
    return registry.snapshot(meta=meta)


def analysis_from_snapshot(snapshot: dict) -> TraceAnalysis:
    """Rebuild a :class:`TraceAnalysis` (``per_pc`` is always None)."""
    registry = MetricsRegistry.from_snapshot(snapshot)
    meta = snapshot.get("meta", {})

    profile = ReferenceProfile()
    profile.instructions = registry.counter("profile.instructions").count
    profile.loads = registry.counter("profile.loads").count
    profile.stores = registry.counter("profile.stores").count
    for ref_class in _REF_CLASSES:
        profile.load_class[ref_class] = \
            registry.counter(f"profile.load_class.{ref_class}").count
        profile.store_class[ref_class] = \
            registry.counter(f"profile.store_class.{ref_class}").count
        hist_path = f"profile.offsets.{ref_class}"
        if hist_path in registry:
            profile.offset_hist[ref_class].merge(
                registry.histogram(hist_path))

    predictions: dict[int, PredictionStats] = {}
    for block_size in meta.get("block_sizes", ()):
        prefix = f"pred.{block_size}"
        stats = PredictionStats(block_size=block_size)
        for name in _PRED_COUNTERS:
            path = f"{prefix}.{name}"
            if path not in registry:
                raise ValueError(f"analysis snapshot missing {path!r}")
            setattr(stats, name, registry.counter(path).count)
        for signal in stats.signal_counts:
            stats.signal_counts[signal] = \
                registry.counter(f"{prefix}.signals.{signal}").count
        predictions[block_size] = stats

    return TraceAnalysis(
        profile=profile,
        predictions=predictions,
        icache_miss_ratio=meta.get("icache_miss_ratio", 0.0),
        dcache_miss_ratio=meta.get("dcache_miss_ratio", 0.0),
        tlb_miss_ratio=meta.get("tlb_miss_ratio", 0.0),
        memory_usage=meta.get("memory_usage", 0),
        instructions=meta.get("instructions", 0),
        stdout=meta.get("stdout", ""),
        per_pc=None,
    )
