"""Content-addressed on-disk artifact store.

Layout (all under one root directory, default ``.repro-farm/``)::

    <root>/objects/<kind>/<k2>/<k4>/<key>/meta.json    # always present
    <root>/objects/<kind>/<k2>/<k4>/<key>/<payload>    # optional payload
    <root>/runs/last.json                              # last run summary
    <root>/serve/                                      # repro.serve state
    <root>/tmp/                                        # staging area

``kind`` is one of ``build``, ``trace``, ``coltrace``, ``analysis``,
``sim``; ``key``
is a fingerprint hex digest (see :mod:`repro.farm.fingerprint`), and
``<k2>``/``<k4>`` are its first and second byte (``key[:2]``,
``key[2:4]``) -- two-level fan-out keeps directories small when
thousands of tenants share one warm cache through ``repro serve``
(65536 leaf shards instead of 256). Stores written before the second
level existed (``objects/<kind>/<k2>/<key>``) stay readable: every
lookup falls back to the legacy path, so old artifacts remain warm
cache hits and age out through the same LRU gc.

Writes are atomic: an artifact is staged under ``tmp/`` and published
with a single ``os.rename``, so concurrent workers computing the same
key race harmlessly -- the loser discards its copy. Reads touch the
artifact's ``meta.json`` mtime, which :meth:`ArtifactStore.gc` uses for
least-recently-used eviction; :meth:`ArtifactStore.pin` protects
in-flight artifacts (a job mid-execution, a result mid-response) from a
concurrent size-budgeted gc in the same process.
"""

from __future__ import annotations

import errno
import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path

_META = "meta.json"
KINDS = ("build", "trace", "coltrace", "analysis", "sim")

#: Kinds that are cheap re-derivations of another stored artifact
#: (a ``coltrace`` is decoded from its parent ``trace`` in tens of
#: milliseconds). The size-budgeted gc evicts these before anything
#: it would be expensive to recompute.
DERIVED_KINDS = ("coltrace",)

#: Environment variable naming the store root.
ENV_DIR = "REPRO_FARM_DIR"
#: Set to ``off``/``0``/``disabled`` to run without any on-disk store.
ENV_TOGGLE = "REPRO_FARM"

DEFAULT_DIRNAME = ".repro-farm"


def store_enabled() -> bool:
    return os.environ.get(ENV_TOGGLE, "").strip().lower() not in (
        "off", "0", "disabled", "no",
    )


def default_store_root() -> Path:
    """Resolve the artifact-store root.

    Order: ``$REPRO_FARM_DIR`` if set; else ``$XDG_CACHE_HOME/repro-farm``
    if ``XDG_CACHE_HOME`` is set; else ``.repro-farm/`` in the current
    directory (gitignored).
    """
    env = os.environ.get(ENV_DIR, "").strip()
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    if xdg:
        return Path(xdg) / "repro-farm"
    return Path(DEFAULT_DIRNAME)


@dataclass(frozen=True)
class ArtifactInfo:
    """One stored artifact, as enumerated by :meth:`ArtifactStore.ls`."""

    kind: str
    key: str
    path: Path
    size: int       # bytes, meta + payload
    mtime: float    # of meta.json (touched on read)


class ArtifactStore:
    """Content-addressed store with atomic publication and LRU gc.

    ``tracer`` (assignable after construction) is an optional
    :class:`repro.obs.spans.SpanTracker`; when set, every ``get``/``put``
    is wrapped in a ``store.*`` span nested under the caller's current
    span -- how farm workers attribute store traffic to their job.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.tracer = None
        self._pins: set[tuple[str, str]] = set()

    def _traced(self, op: str, kind: str, key: str):
        """``store.get``/``store.put`` span context (no-op untracked)."""
        return self.tracer.span(
            f"store.{op}", cat="store",
            attrs={"artifact_kind": kind, "key": key[:12]})

    # -------------------------------------------------------------- #
    # paths

    def _object_dir(self, kind: str, key: str) -> Path:
        """Canonical (two-level sharded) home of an artifact."""
        return (self.root / "objects" / kind
                / (key[:2] or "__") / (key[2:4] or "__") / key)

    def _legacy_object_dir(self, kind: str, key: str) -> Path:
        """Pre-sharding (single-level) location, still honoured on read."""
        return self.root / "objects" / kind / (key[:2] or "__") / key

    def _find_object_dir(self, kind: str, key: str) -> Path:
        """Where the artifact lives: the sharded path, the legacy path
        when only it exists, else the sharded path (for error paths)."""
        sharded = self._object_dir(kind, key)
        if (sharded / _META).is_file():
            return sharded
        legacy = self._legacy_object_dir(kind, key)
        if (legacy / _META).is_file():
            return legacy
        return sharded

    def _tmp_dir(self) -> Path:
        tmp = self.root / "tmp"
        tmp.mkdir(parents=True, exist_ok=True)
        return tmp

    def scratch(self, name: str) -> Path:
        """A staging path on the store's filesystem (so the final
        ``os.rename`` publication stays atomic)."""
        return self._tmp_dir() / f"{os.getpid()}-{name}"

    def runs_dir(self) -> Path:
        runs = self.root / "runs"
        runs.mkdir(parents=True, exist_ok=True)
        return runs

    # -------------------------------------------------------------- #
    # reads

    def has(self, kind: str, key: str) -> bool:
        return (self._find_object_dir(kind, key) / _META).is_file()

    def get_meta(self, kind: str, key: str) -> dict | None:
        """Load an artifact's metadata, touching it for LRU purposes."""
        if self.tracer is not None:
            with self._traced("get", kind, key) as span_id:
                meta = self._get_meta(kind, key)
                self.tracer.annotate(span_id, {"hit": meta is not None})
                return meta
        return self._get_meta(kind, key)

    def _get_meta(self, kind: str, key: str) -> dict | None:
        meta_path = self._find_object_dir(kind, key) / _META
        try:
            with open(meta_path) as handle:
                meta = json.load(handle)
        except (OSError, ValueError):
            return None
        try:
            os.utime(meta_path)
        except OSError:
            pass
        return meta

    def payload_path(self, kind: str, key: str, name: str) -> Path | None:
        """Path of a payload file, or None when absent."""
        path = self._find_object_dir(kind, key) / name
        return path if path.is_file() else None

    def get_json(self, kind: str, key: str, name: str = "snapshot.json"):
        """Load a JSON payload (with the LRU touch), or None."""
        if self.get_meta(kind, key) is None:
            return None
        path = self._find_object_dir(kind, key) / name
        try:
            with open(path) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def get_bytes(self, kind: str, key: str, name: str) -> bytes | None:
        path = self._find_object_dir(kind, key) / name
        try:
            return path.read_bytes()
        except OSError:
            return None

    # -------------------------------------------------------------- #
    # writes

    def put(self, kind: str, key: str, meta: dict,
            payloads: dict[str, str | Path | bytes] | None = None) -> Path:
        """Atomically publish an artifact.

        ``payloads`` maps payload file names to either a source path
        (moved into the artifact) or raw bytes. Returns the artifact
        directory; if another process already published ``key``, the
        existing artifact wins and the staged copy is discarded.
        """
        if self.tracer is not None:
            with self._traced("put", kind, key):
                return self._put(kind, key, meta, payloads)
        return self._put(kind, key, meta, payloads)

    def _put(self, kind: str, key: str, meta: dict,
             payloads: dict[str, str | Path | bytes] | None = None) -> Path:
        existing = self._find_object_dir(kind, key)
        if (existing / _META).is_file():
            return existing
        final = self._object_dir(kind, key)
        stage = self._tmp_dir() / f"{os.getpid()}-{kind}-{key[:16]}"
        if stage.exists():
            shutil.rmtree(stage, ignore_errors=True)
        stage.mkdir(parents=True)
        try:
            for name, src in (payloads or {}).items():
                dst = stage / name
                if isinstance(src, bytes):
                    dst.write_bytes(src)
                else:
                    shutil.move(str(src), str(dst))
            with open(stage / _META, "w") as handle:
                json.dump(meta, handle, indent=2, sort_keys=True)
                handle.write("\n")
            final.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(stage, final)
            except OSError as exc:
                if exc.errno not in (errno.ENOTEMPTY, errno.EEXIST,
                                     errno.ENOTDIR):
                    raise
                # concurrent publication won the race; ours is equivalent
                shutil.rmtree(stage, ignore_errors=True)
        finally:
            shutil.rmtree(stage, ignore_errors=True)
        return final

    def put_json(self, kind: str, key: str, obj, meta: dict,
                 name: str = "snapshot.json") -> Path:
        """Publish a JSON payload with deterministic byte encoding."""
        encoded = (json.dumps(obj, indent=2, sort_keys=True) + "\n").encode()
        return self.put(kind, key, meta, payloads={name: encoded})

    # -------------------------------------------------------------- #
    # enumeration / gc

    def _iter_object_dirs(self, kind_dir: Path):
        """Every object directory under one kind, both layouts.

        A first-level entry holding ``meta.json`` directly is a legacy
        (single-level) artifact; otherwise it is a shard whose children
        are second-level shards holding the sharded artifacts.
        """
        for shard in sorted(kind_dir.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                if not entry.is_dir():
                    continue
                if (entry / _META).is_file():    # legacy: objects/k/ab/KEY
                    yield entry
                    continue
                for obj in sorted(entry.iterdir()):
                    if obj.is_dir() and (obj / _META).is_file():
                        yield obj                # sharded: objects/k/ab/cd/KEY

    def ls(self) -> list[ArtifactInfo]:
        objects = self.root / "objects"
        found = []
        if not objects.is_dir():
            return found
        for kind_dir in sorted(objects.iterdir()):
            if not kind_dir.is_dir():
                continue
            for obj in self._iter_object_dirs(kind_dir):
                size = sum(f.stat().st_size
                           for f in obj.iterdir() if f.is_file())
                found.append(ArtifactInfo(
                    kind=kind_dir.name, key=obj.name, path=obj,
                    size=size, mtime=(obj / _META).stat().st_mtime,
                ))
        return found

    def stats(self) -> dict:
        """Per-kind artifact counts and byte totals."""
        per_kind: dict[str, dict] = {}
        total = {"count": 0, "bytes": 0}
        for info in self.ls():
            bucket = per_kind.setdefault(info.kind, {"count": 0, "bytes": 0})
            bucket["count"] += 1
            bucket["bytes"] += info.size
            total["count"] += 1
            total["bytes"] += info.size
        return {"root": str(self.root), "kinds": per_kind, "total": total}

    def shard_stats(self) -> dict:
        """Directory fan-out statistics (the serve health endpoint).

        Per kind: object count, number of leaf shards in use, and the
        most crowded leaf shard -- the number an operator watches to
        know the two-level fan-out is keeping directories small.
        """
        objects = self.root / "objects"
        kinds: dict[str, dict] = {}
        if objects.is_dir():
            for kind_dir in sorted(objects.iterdir()):
                if not kind_dir.is_dir():
                    continue
                shards: dict[str, int] = {}
                legacy = 0
                for obj in self._iter_object_dirs(kind_dir):
                    shard = obj.parent
                    if shard.parent == kind_dir:    # legacy single-level
                        legacy += 1
                    shards[str(shard.relative_to(kind_dir))] = \
                        shards.get(str(shard.relative_to(kind_dir)), 0) + 1
                kinds[kind_dir.name] = {
                    "objects": sum(shards.values()),
                    "shards": len(shards),
                    "max_per_shard": max(shards.values(), default=0),
                    "legacy_objects": legacy,
                }
        return {"levels": 2, "kinds": kinds}

    def remove(self, kind: str, key: str) -> bool:
        path = self._find_object_dir(kind, key)
        if not path.is_dir():
            return False
        shutil.rmtree(path, ignore_errors=True)
        return True

    # -------------------------------------------------------------- #
    # pinning (in-process protection from concurrent gc)

    def pin(self, kind: str, key: str) -> None:
        """Shield an in-flight artifact from :meth:`gc` until unpinned.

        Pins are per-store-instance (in-memory): the serve worker pins
        the artifacts a request just produced while the size-budgeted
        gc runs, so the cache can be trimmed between jobs without ever
        evicting a result that is still being streamed to a client.
        """
        self._pins.add((kind, key))

    def unpin(self, kind: str, key: str) -> None:
        self._pins.discard((kind, key))

    def pinned(self, kind: str, key: str) -> bool:
        return (kind, key) in self._pins

    def gc(self, max_bytes: int | None = None, clear: bool = False,
           *, max_size: int | None = None) -> tuple[int, int]:
        """Evict artifacts; returns ``(evicted_count, freed_bytes)``.

        ``clear=True`` removes everything (except pinned artifacts).
        Otherwise artifacts are evicted least-recently-used first until
        the store fits within ``max_bytes``. ``max_size`` is the
        historical name for the same budget and remains an alias. The
        staging area is always emptied; pinned artifacts are never
        evicted (their bytes still count toward the budget, so a pin
        can make the budget unreachable -- by design: in-flight results
        beat the quota).
        """
        if max_bytes is None:
            max_bytes = max_size
        shutil.rmtree(self.root / "tmp", ignore_errors=True)
        artifacts = self.ls()
        evicted = freed = 0
        if clear:
            for info in artifacts:
                if (info.kind, info.key) in self._pins:
                    continue
                self.remove(info.kind, info.key)
                evicted += 1
                freed += info.size
            return evicted, freed
        if max_bytes is None:
            return 0, 0
        total = sum(info.size for info in artifacts)
        # derived artifacts first (they are cheap to recompute from
        # their parents), then least-recently-used within each class
        for info in sorted(artifacts,
                           key=lambda i: (i.kind not in DERIVED_KINDS,
                                          i.mtime, i.key)):
            if total <= max_bytes:
                break
            if (info.kind, info.key) in self._pins:
                continue
            self.remove(info.kind, info.key)
            evicted += 1
            freed += info.size
            total -= info.size
        return evicted, freed

    # -------------------------------------------------------------- #
    # run summaries (for ``repro farm status``)

    def write_last_run(self, summary: dict) -> None:
        path = self.runs_dir() / "last.json"
        with open(path, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def read_last_run(self) -> dict | None:
        try:
            with open(self.root / "runs" / "last.json") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ArtifactStore({str(self.root)!r})"
