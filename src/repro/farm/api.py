"""In-process, store-backed experiment results.

This is what :mod:`repro.experiments.common` calls: the serial
equivalent of one farm cell. Every lookup goes through the artifact
store -- compute on miss, read back on hit -- so results survive the
process, sweeps resume for free, and a full-suite run never holds more
than a small bounded window of results in memory (the unbounded
``lru_cache`` memoization this replaces held every ``SimResult`` and
``TraceAnalysis`` of the sweep at once).

The store root comes from ``$REPRO_FARM_DIR`` (see
:func:`repro.farm.store.default_store_root`). Setting ``REPRO_FARM=off``
keeps everything working against a throwaway per-process store in a
temporary directory: same code path, no persistence.
"""

from __future__ import annotations

import atexit
import shutil
import tempfile
from collections import OrderedDict

from repro.analysis.prediction import TraceAnalysis
from repro.farm import jobs as farm_jobs
from repro.farm.snapshots import analysis_from_snapshot, sim_from_snapshot
from repro.farm.store import (
    ENV_DIR,
    ArtifactStore,
    default_store_root,
    store_enabled,
)
from repro.pipeline.config import MachineConfig
from repro.pipeline.result import SimResult

DEFAULT_MAX_INSTRUCTIONS = 10_000_000

#: Deserialized results kept in memory (per process). Small and bounded:
#: the artifact store is the real cache; this only spares re-reading the
#: same snapshot inside one harness's loop.
_MEMO_SIZE = 16
_memo: OrderedDict[tuple, object] = OrderedDict()

_ephemeral_root: str | None = None


def _ephemeral_store_root() -> str:
    """Throwaway store used when persistence is disabled (REPRO_FARM=off)."""
    global _ephemeral_root
    if _ephemeral_root is None:
        _ephemeral_root = tempfile.mkdtemp(prefix="repro-farm-")
        atexit.register(shutil.rmtree, _ephemeral_root, ignore_errors=True)
    return _ephemeral_root


def active_store() -> ArtifactStore:
    """The store the current environment selects."""
    if store_enabled():
        return ArtifactStore(default_store_root())
    return ArtifactStore(_ephemeral_store_root())


def _memoize(key: tuple, value) -> None:
    _memo[key] = value
    _memo.move_to_end(key)
    while len(_memo) > _MEMO_SIZE:
        _memo.popitem(last=False)


def clear_memo() -> None:
    """Drop the in-memory window (the on-disk store is untouched)."""
    _memo.clear()


def analysis_for(name: str, software: bool = False,
                 max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                 store: ArtifactStore | None = None) -> TraceAnalysis:
    """The functional-trace analysis of one benchmark build."""
    store = store if store is not None else active_store()
    key = ("analysis", str(store.root), name, software, max_instructions)
    cached = _memo.get(key)
    if cached is not None:
        _memo.move_to_end(key)
        return cached
    _, snapshot = farm_jobs.ensure_analysis(store, name, software,
                                            max_instructions)
    analysis = analysis_from_snapshot(snapshot)
    _memoize(key, analysis)
    return analysis


def sim_for(name: str, software: bool, machine: MachineConfig,
            label: str | None = None,
            max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
            store: ArtifactStore | None = None) -> SimResult:
    """The timing simulation of one build on one machine flavour.

    ``label`` names the flavour in artifact keys and snapshot metadata;
    anonymous configurations get a digest-derived label.
    """
    from repro.farm.fingerprint import config_digest

    store = store if store is not None else active_store()
    if label is None:
        label = "cfg-" + config_digest(machine)[:12]
    key = ("sim", str(store.root), name, software, label, max_instructions)
    cached = _memo.get(key)
    if cached is not None:
        _memo.move_to_end(key)
        return cached
    _, snapshot = farm_jobs.ensure_sim(store, name, software, label,
                                       machine, max_instructions)
    result = sim_from_snapshot(snapshot)
    _memoize(key, result)
    return result
