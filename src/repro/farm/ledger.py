"""The farm's persistent run ledger (``repro.ledger/1``).

Every sweep that runs with spans enabled is persisted as one JSON-Lines
manifest under ``<store>/runs/ledger/<run_id>.jsonl``::

    {"record": "header",  "schema": "repro.ledger/1", "run_id": ..., ...}
    {"record": "span", ...}     # one per span, in id order
    {"record": "job", ...}      # one per job: the accounting table
    {"record": "summary", ...}  # sweep totals

Design points:

* **Relative time.** Span timestamps are stored relative to the sweep
  root's start and rounded to microseconds, so two runs of the same
  sweep differ only where their *durations* differ -- and
  :func:`normalized_lines` (which zeroes durations, resources, and run
  identity) byte-compares equal across reruns.
* **Causal completeness.** :func:`repro.obs.spans.orphan_spans` over the
  span records must be empty: every job of the sweep hangs off the sweep
  root, and every worker-side span (execute, store get/put) was adopted
  under its job. ``tests/farm/test_ledger.py`` pins this.
* **Sweep key.** :func:`sweep_key` fingerprints the sorted job ids, so
  ``repro farm history`` can find "the previous run of this same sweep"
  and flag drift (:func:`compare_runs`).

The Chrome export (:func:`run_to_chrome`) reuses
:class:`~repro.obs.sinks.ChromeTraceSink` with one named track per
worker plus a scheduler track, so ``repro farm timeline RUN --chrome``
drops straight into Perfetto.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.farm.fingerprint import fingerprint
from repro.obs.sinks import ChromeTraceSink
from repro.obs.spans import orphan_spans, span_roots

LEDGER_SCHEMA = "repro.ledger/1"

#: Schema tag for ``repro farm status --json`` (validated like
#: ``repro.lint/1`` via repro.analysis.reporting.validate_against_schema).
FARM_STATUS_SCHEMA_VERSION = "repro.farm-status/1"

FARM_STATUS_SCHEMA = {
    "type": "object",
    "required": ["schema", "store", "stats", "last_run", "runs"],
    "properties": {
        "schema": {"enum": [FARM_STATUS_SCHEMA_VERSION]},
        "store": {"type": "string"},
        "stats": {
            "type": "object",
            "required": ["kinds", "total"],
            "properties": {
                "total": {
                    "type": "object",
                    "required": ["count", "bytes"],
                    "properties": {
                        "count": {"type": "integer"},
                        "bytes": {"type": "integer"},
                    },
                },
            },
        },
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["run_id", "sweep_key", "jobs", "failed",
                             "elapsed_seconds"],
                "properties": {
                    "run_id": {"type": "string"},
                    "sweep_key": {"type": "string"},
                    "jobs": {"type": "integer"},
                    "failed": {"type": "integer"},
                    "elapsed_seconds": {"type": "number"},
                },
            },
        },
    },
}

#: Drift thresholds for :func:`compare_runs`: a job's wall time drifted
#: when it moved by more than DRIFT_REL relatively *and* DRIFT_ABS
#: seconds absolutely (both, so microsecond jitter on fast jobs and
#: sub-percent noise on slow ones are ignored).
DRIFT_REL = 0.25
DRIFT_ABS = 0.05


@dataclass
class LedgerRun:
    """One persisted sweep: identity, span tree, and job accounting."""

    run_id: str
    sweep_key: str
    created: float                  # wall-clock epoch seconds
    meta: dict = field(default_factory=dict)
    spans: list[dict] = field(default_factory=list)
    jobs: dict[str, dict] = field(default_factory=dict)
    summary: dict = field(default_factory=dict)

    def header(self) -> dict:
        return {
            "record": "header",
            "schema": LEDGER_SCHEMA,
            "run_id": self.run_id,
            "sweep_key": self.sweep_key,
            "created": self.created,
            "meta": self.meta,
        }


def sweep_key(job_ids) -> str:
    """Stable identity of a sweep: a fingerprint of its sorted job ids."""
    return fingerprint("sweep", sorted(job_ids))


# ------------------------------------------------------------------ #
# building a run from a finished sweep

def _rebase_spans(records: list[dict]) -> list[dict]:
    """Shift span times so the sweep root starts at 0, in microseconds
    precision -- monotonic absolutes mean nothing across runs."""
    roots = span_roots(records)
    base = min((r["t0"] for r in roots), default=0.0) if roots else \
        min((r["t0"] for r in records), default=0.0)
    out = []
    for record in records:
        rebased = dict(record)
        rebased["t0"] = round(record["t0"] - base, 6)
        rebased["t1"] = None if record["t1"] is None else \
            round(record["t1"] - base, 6)
        out.append(rebased)
    return out


def run_from_sweep(run_id: str, graph, result, tracker,
                   meta: dict | None = None,
                   created: float | None = None) -> LedgerRun:
    """Assemble a :class:`LedgerRun` from one executed sweep.

    ``graph``/``result`` are the planner's :class:`~repro.farm.jobs.JobGraph`
    and the scheduler's :class:`~repro.farm.scheduler.FarmRunResult`;
    ``tracker`` is the :class:`~repro.obs.spans.SpanTracker` the
    scheduler recorded into.
    """
    jobs = {}
    for job_id, outcome in sorted(result.outcomes.items()):
        jobs[job_id] = {
            "record": "job",
            "job_id": job_id,
            "kind": outcome.kind,
            "status": outcome.status,
            "cached": outcome.status == "hit",
            "attempts": outcome.attempts,
            "wall": round(outcome.wall, 6),
            "cpu": round(outcome.cpu, 6),
            "max_rss": outcome.max_rss,
            "worker": outcome.worker,
            "error": outcome.error,
        }
    summary = dict(result.summary())
    summary["record"] = "summary"
    return LedgerRun(
        run_id=run_id,
        sweep_key=sweep_key(graph.jobs),
        created=time.time() if created is None else created,
        meta=dict(meta or {}),
        spans=_rebase_spans(tracker.export()),
        jobs=jobs,
        summary=summary,
    )


def new_run_id(clock=time.gmtime) -> str:
    """``YYYYMMDDTHHMMSSZ-<pid>``; collisions are resolved at write time."""
    return time.strftime("%Y%m%dT%H%M%SZ", clock()) + f"-{os.getpid()}"


# ------------------------------------------------------------------ #
# persistence

def ledger_dir(store) -> Path:
    path = store.runs_dir() / "ledger"
    path.mkdir(parents=True, exist_ok=True)
    return path


def run_lines(run: LedgerRun) -> list[str]:
    """The manifest's JSONL lines, in canonical order and encoding."""
    records = [run.header()]
    records.extend({"record": "span", **span} for span in run.spans)
    records.extend(run.jobs[job_id] for job_id in sorted(run.jobs))
    records.append(run.summary)
    return [json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in records]


def write_run(store, run: LedgerRun) -> Path:
    """Persist one run; returns the manifest path. Atomic (staged under
    the store's tmp/ then renamed), and collision-safe on run_id."""
    directory = ledger_dir(store)
    run_id = run.run_id
    path = directory / f"{run_id}.jsonl"
    serial = 1
    while path.exists():
        serial += 1
        run_id = f"{run.run_id}.{serial}"
        path = directory / f"{run_id}.jsonl"
    run.run_id = run_id
    stage = store.scratch(f"ledger-{run_id}.jsonl")
    with open(stage, "w") as handle:
        handle.write("\n".join(run_lines(run)))
        handle.write("\n")
    os.replace(stage, path)
    return path


def load_run(path: str | Path) -> LedgerRun:
    """Parse one manifest back into a :class:`LedgerRun`."""
    header = None
    spans: list[dict] = []
    jobs: dict[str, dict] = {}
    summary: dict = {}
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("record")
            if kind == "header":
                if record.get("schema") != LEDGER_SCHEMA:
                    raise ValueError(
                        f"{path}: unsupported ledger schema "
                        f"{record.get('schema')!r} (want {LEDGER_SCHEMA})")
                header = record
            elif kind == "span":
                spans.append({k: v for k, v in record.items()
                              if k != "record"})
            elif kind == "job":
                jobs[record["job_id"]] = record
            elif kind == "summary":
                summary = record
    if header is None:
        raise ValueError(f"{path}: not a {LEDGER_SCHEMA} manifest "
                         "(no header record)")
    return LedgerRun(
        run_id=header["run_id"], sweep_key=header["sweep_key"],
        created=header["created"], meta=header.get("meta", {}),
        spans=spans, jobs=jobs, summary=summary,
    )


def list_runs(store) -> list[LedgerRun]:
    """All persisted runs, oldest first (unreadable files are skipped)."""
    directory = store.runs_dir() / "ledger"
    runs = []
    if directory.is_dir():
        for path in sorted(directory.glob("*.jsonl")):
            try:
                runs.append(load_run(path))
            except (OSError, ValueError, KeyError):
                continue
    runs.sort(key=lambda r: (r.created, r.run_id))
    return runs


def find_run(store, run_id: str) -> LedgerRun | None:
    """Resolve ``run_id`` (or the literal ``last``) to a run."""
    runs = list_runs(store)
    if run_id == "last":
        return runs[-1] if runs else None
    for run in runs:
        if run.run_id == run_id:
            return run
    return None


def find_run_by_job(store, job_id: str) -> LedgerRun | None:
    """The most recent run whose meta names this serve ``job_id``."""
    best = None
    for candidate in list_runs(store):
        if candidate.meta.get("job_id") == job_id:
            best = candidate
    return best


def previous_run(store, run: LedgerRun) -> LedgerRun | None:
    """The most recent earlier run with the same sweep key."""
    best = None
    for candidate in list_runs(store):
        if candidate.run_id == run.run_id:
            continue
        if candidate.sweep_key != run.sweep_key:
            continue
        if (candidate.created, candidate.run_id) < \
                (run.created, run.run_id):
            best = candidate
    return best


# ------------------------------------------------------------------ #
# normalization (determinism tests) and drift comparison

_TIMING_SPAN_KEYS = ("t0", "t1")
_TIMING_ATTRS = ("wall", "cpu", "max_rss", "elapsed",
                 "queue_wait_seconds", "ingress_seconds")
_TIMING_JOB_KEYS = ("wall", "cpu", "max_rss")
#: Meta keys that name *this* request/run rather than the sweep -- two
#: reruns of the same submission legitimately differ here.
_IDENTITY_META_KEYS = ("job_id", "trace_id")
#: Span attrs carrying request identity. Note the farm's own ``job_id``
#: attr (the graph job id) is deterministic and deliberately *not* here;
#: the serve layer uses ``serve_job_id`` on spans to stay distinct.
_IDENTITY_ATTRS = ("trace_id", "serve_job_id")


def normalized_lines(run: LedgerRun) -> list[str]:
    """Canonical lines with run identity and every timing field zeroed.

    Two reruns of the same sweep against warm (or equally cold) stores
    must normalize to byte-identical lines -- the ledger's structure is
    a pure function of the sweep, only durations and ids vary. Request
    identity (the serve layer's ``job_id``/``trace_id`` in meta and span
    attrs) is normalized away for the same reason.
    """
    meta = {k: ("X" if k in _IDENTITY_META_KEYS else v)
            for k, v in run.meta.items()}
    clone = LedgerRun(
        run_id="RUN", sweep_key=run.sweep_key, created=0.0,
        meta=meta, summary=dict(run.summary),
    )
    for span in run.spans:
        span = dict(span)
        for key in _TIMING_SPAN_KEYS:
            span[key] = 0.0 if span[key] is not None else None
        span["attrs"] = {
            k: (0 if k in _TIMING_ATTRS
                else "X" if k in _IDENTITY_ATTRS else v)
            for k, v in sorted(span["attrs"].items())}
        clone.spans.append(span)
    for job_id, job in run.jobs.items():
        job = dict(job)
        for key in _TIMING_JOB_KEYS:
            job[key] = 0
        clone.jobs[job_id] = job
    clone.summary["elapsed_seconds"] = 0.0
    return run_lines(clone)


def check_spans(run: LedgerRun) -> list[str]:
    """Structural problems in a run's span tree (empty = healthy)."""
    problems = []
    orphans = orphan_spans(run.spans)
    if orphans:
        problems.append(f"orphan spans (dangling parent_id): {orphans}")
    roots = span_roots(run.spans)
    if len(roots) != 1:
        problems.append(f"expected exactly one root span, found "
                        f"{len(roots)}")
    covered = {span["attrs"].get("job_id")
               for span in run.spans if span["cat"] == "job"}
    missing = sorted(set(run.jobs) - covered)
    if missing:
        problems.append(f"jobs without a span: {missing}")
    return problems


@dataclass
class JobDrift:
    """One flagged difference between two runs of the same sweep."""

    job_id: str
    field: str          # 'wall' | 'status' | 'cached' | 'missing'
    old: object
    new: object
    delta: float = 0.0  # seconds, for wall drift


@dataclass
class RunDelta:
    """The result of :func:`compare_runs`."""

    old_id: str
    new_id: str
    same_sweep: bool
    drifts: list[JobDrift] = field(default_factory=list)
    elapsed_old: float = 0.0
    elapsed_new: float = 0.0

    @property
    def ok(self) -> bool:
        return self.same_sweep and not self.drifts


def compare_runs(old: LedgerRun, new: LedgerRun,
                 rel: float = DRIFT_REL,
                 abs_floor: float = DRIFT_ABS) -> RunDelta:
    """Flag per-job drift between two runs.

    Wall-time drift needs both a ``rel`` relative change and an
    ``abs_floor`` absolute change; status and cached-ness changes are
    always flagged; jobs present in only one run are flagged as
    ``missing``. Byte-identical runs compare with zero drift.
    """
    delta = RunDelta(
        old_id=old.run_id, new_id=new.run_id,
        same_sweep=old.sweep_key == new.sweep_key,
        elapsed_old=old.summary.get("elapsed_seconds", 0.0),
        elapsed_new=new.summary.get("elapsed_seconds", 0.0),
    )
    for job_id in sorted(set(old.jobs) | set(new.jobs)):
        a, b = old.jobs.get(job_id), new.jobs.get(job_id)
        if a is None or b is None:
            delta.drifts.append(JobDrift(
                job_id=job_id, field="missing",
                old="present" if a else "absent",
                new="present" if b else "absent"))
            continue
        if a["status"] != b["status"]:
            delta.drifts.append(JobDrift(
                job_id=job_id, field="status",
                old=a["status"], new=b["status"]))
        elif a["cached"] != b["cached"]:
            delta.drifts.append(JobDrift(
                job_id=job_id, field="cached",
                old=a["cached"], new=b["cached"]))
        wall_a, wall_b = a["wall"], b["wall"]
        moved = abs(wall_b - wall_a)
        if moved > abs_floor and moved > rel * max(wall_a, 1e-9):
            delta.drifts.append(JobDrift(
                job_id=job_id, field="wall", old=wall_a, new=wall_b,
                delta=round(wall_b - wall_a, 6)))
    return delta


# ------------------------------------------------------------------ #
# Chrome / Perfetto export

_SCHEDULER_TID = 0


def _span_worker(span: dict, by_id: dict[int, dict]) -> int:
    """The worker index a span belongs to: its own ``worker`` attribute,
    or the nearest ancestor's; the scheduler track (-1) otherwise."""
    seen = set()
    current: dict | None = span
    while current is not None and current["span_id"] not in seen:
        seen.add(current["span_id"])
        worker = current["attrs"].get("worker")
        if isinstance(worker, int) and worker >= 0:
            return worker
        parent = current["parent_id"]
        current = by_id.get(parent) if parent is not None else None
    return -1


def run_to_chrome(run: LedgerRun, stream) -> int:
    """Write one run as Chrome trace-event JSON with per-worker tracks.

    Returns the number of span slices written. One process (``pid 0``)
    named after the run, a scheduler track for the sweep root and
    store-hit jobs, and one track per worker. Still-open spans (an
    aborted sweep) become B events that close() terminates.
    """
    sink = ChromeTraceSink(stream)
    sink.register_process(0, f"repro farm {run.run_id}", 0)
    sink.register_track(0, _SCHEDULER_TID, "scheduler", 0)
    by_id = {span["span_id"]: span for span in run.spans}
    workers = sorted({w for span in run.spans
                      if (w := _span_worker(span, by_id)) >= 0})
    for worker in workers:
        sink.register_track(0, worker + 1, f"worker {worker}", worker + 1)
    written = 0
    for span in run.spans:
        worker = _span_worker(span, by_id)
        tid = _SCHEDULER_TID if worker < 0 else worker + 1
        ts = int(round(span["t0"] * 1e6))
        args = {"span_id": span["span_id"], "status": span["status"]}
        args.update({k: v for k, v in sorted(span["attrs"].items())
                     if isinstance(v, (str, int, float, bool))})
        if span["t1"] is None:
            sink.emit_begin(span["name"], span["cat"], ts, 0, tid, args)
        else:
            dur = max(1, int(round((span["t1"] - span["t0"]) * 1e6)))
            sink.emit_slice(span["name"], span["cat"], ts, dur, 0, tid,
                            args)
        written += 1
    sink.close()
    return written
