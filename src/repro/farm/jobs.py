"""Typed farm jobs: what one experiment cell needs, and how to run it.

The grid of one sweep is a set of :class:`Cell` requests (an *analysis*
of one benchmark build, or a *simulation* of one build on one machine
flavour). :func:`plan_jobs` lowers cells onto a dependency graph of four
job kinds::

    build(name, software)                 -> build manifest (program CRC)
      trace(name, software)               -> functional trace artifact
        coltrace(name, software)          -> columnar decode (derived)
          analysis(name, software)        -> repro.metrics/1 snapshot
        sim(name, software, machine)      -> repro.metrics/1 snapshot

One functional capture (the trace) drives every timing replay -- the
decoupled access/execute split that makes the sweep embarrassingly
parallel. Execution is *store-idempotent*: every ``ensure_*`` function
first consults the :class:`~repro.farm.store.ArtifactStore` and only
computes on a miss, so the same functions serve the in-process API
(:mod:`repro.farm.api`), the worker pool, and warm re-runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler import CompilerOptions, FacSoftwareOptions
from repro.farm.fingerprint import (
    FARM_SCHEMA,
    config_digest,
    fingerprint,
    source_digest,
)
from repro.farm.snapshots import analysis_to_snapshot, sim_to_snapshot
from repro.farm.store import ArtifactStore
from repro.pipeline.config import MachineConfig

TRACE_PAYLOAD = "trace.fact.gz"
COLTRACE_PAYLOAD = "trace.facl"
SNAPSHOT_PAYLOAD = "snapshot.json"

#: Analyzer geometry baked into analysis artifacts (the Tables 3/4
#: configuration). Part of the analysis fingerprint, so changing it
#: invalidates exactly the analysis artifacts.
ANALYSIS_BLOCK_SIZES = (16, 32)
ANALYSIS_CACHE_SIZE = 16 * 1024


# ------------------------------------------------------------------ #
# cells and job specs

@dataclass(frozen=True, order=True)
class Cell:
    """One experiment-grid cell: an artifact some table/figure needs."""

    kind: str               # 'analysis' or 'sim'
    name: str               # benchmark name
    software: bool = False  # Section 4 software support?
    machine: str | None = None  # machine-flavour label (sim cells only)

    def __post_init__(self):
        if self.kind not in ("analysis", "sim"):
            raise ValueError(f"unknown cell kind {self.kind!r}")
        if (self.machine is None) != (self.kind == "analysis"):
            raise ValueError(f"cell {self} needs a machine iff kind=='sim'")


@dataclass(frozen=True)
class JobSpec:
    """One schedulable unit of work (picklable, sent to workers).

    ``source`` carries inline MiniC text for ad-hoc programs that are
    not in the benchmark registry (``repro serve`` submissions). When
    set, ``name`` is just a display label: fingerprints hash the source
    text itself, so two tenants submitting identical programs share
    every artifact regardless of what they called them.
    """

    job_id: str
    kind: str                       # build | trace | analysis | sim
    name: str
    software: bool
    max_instructions: int
    machine_label: str | None = None
    machine: MachineConfig | None = None
    deps: tuple[str, ...] = ()
    source: str | None = None


@dataclass
class JobGraph:
    """The lowered sweep: specs by id, plus the cell -> job mapping."""

    jobs: dict[str, JobSpec] = field(default_factory=dict)
    cell_jobs: dict[Cell, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.jobs)


def _tag(name: str, software: bool) -> str:
    return f"{name}+sw" if software else name


def plan_jobs(cells, machines: dict[str, MachineConfig],
              max_instructions: int) -> JobGraph:
    """Lower a set of :class:`Cell` requests onto a job graph.

    ``machines`` maps flavour labels (as used in sim cells) to their
    :class:`MachineConfig`; unknown labels raise ``KeyError`` here, at
    planning time, not inside a worker.
    """
    graph = JobGraph()
    builds_needed = sorted({(c.name, c.software) for c in cells})
    for name, software in builds_needed:
        tag = _tag(name, software)
        build_id = f"build:{tag}"
        trace_id = f"trace:{tag}"
        graph.jobs[build_id] = JobSpec(
            job_id=build_id, kind="build", name=name, software=software,
            max_instructions=max_instructions)
        graph.jobs[trace_id] = JobSpec(
            job_id=trace_id, kind="trace", name=name, software=software,
            max_instructions=max_instructions, deps=(build_id,))
    for cell in sorted(set(cells)):
        tag = _tag(cell.name, cell.software)
        trace_id = f"trace:{tag}"
        if cell.kind == "analysis":
            job_id = f"analysis:{tag}"
            spec = JobSpec(job_id=job_id, kind="analysis", name=cell.name,
                           software=cell.software,
                           max_instructions=max_instructions,
                           deps=(trace_id,))
        else:
            job_id = f"sim:{tag}:{cell.machine}"
            spec = JobSpec(job_id=job_id, kind="sim", name=cell.name,
                           software=cell.software,
                           max_instructions=max_instructions,
                           machine_label=cell.machine,
                           machine=machines[cell.machine],
                           deps=(trace_id,))
        graph.jobs[job_id] = spec
        graph.cell_jobs[cell] = job_id
    return graph


# ------------------------------------------------------------------ #
# fingerprints

def benchmark_options(software: bool) -> CompilerOptions:
    """The compiler options behind a (name, software) build -- mirrors
    :func:`repro.workloads.suite.build_benchmark`."""
    options = CompilerOptions()
    if software:
        options = options.with_fac(FacSoftwareOptions.enabled())
    return options


def _content_label(name: str, source: str | None) -> str:
    """The identity component of a downstream fingerprint.

    Registered benchmarks are unambiguous by ``name``. Inline programs
    all share a name, and the program CRC alone is too weak to tell
    them apart (it hashes opcodes, not operands), so their label is the
    full source digest -- content-correct, and still shared by
    identical submissions regardless of tenant or display name.
    """
    if source is None:
        return name
    return f"<inline>:{source_digest(source)}"


def manifest_key(name: str, software: bool,
                 source: str | None = None) -> str:
    if source is None:
        from repro.workloads.suite import load_source

        source = load_source(name)
        label = name
    else:
        # Inline programs key on content alone: the same source under
        # two submission names is one artifact.
        label = "<inline>"
    return fingerprint("build", label, source_digest(source),
                       benchmark_options(software))


def trace_key(name: str, software: bool, program_crc: int,
              max_instructions: int, source: str | None = None) -> str:
    return fingerprint("trace", _content_label(name, source), program_crc,
                       benchmark_options(software), max_instructions)


def coltrace_key(name: str, software: bool, program_crc: int,
                 max_instructions: int, source: str | None = None) -> str:
    from repro.cpu.coltrace import COLTRACE_SCHEMA

    return fingerprint("coltrace", _content_label(name, source),
                       program_crc, benchmark_options(software),
                       max_instructions, COLTRACE_SCHEMA)


def analysis_key(name: str, software: bool, program_crc: int,
                 max_instructions: int, source: str | None = None) -> str:
    return fingerprint("analysis", _content_label(name, source),
                       program_crc,
                       benchmark_options(software), max_instructions,
                       list(ANALYSIS_BLOCK_SIZES), ANALYSIS_CACHE_SIZE)


def sim_key(name: str, software: bool, program_crc: int,
            machine_label: str, machine: MachineConfig,
            max_instructions: int, source: str | None = None) -> str:
    return fingerprint("sim", _content_label(name, source), program_crc,
                       benchmark_options(software), max_instructions,
                       machine_label, config_digest(machine))


def resolve_key(spec: JobSpec, store: ArtifactStore) -> str | None:
    """Compute a job's artifact key *without building anything*.

    Build keys derive from source text alone. Downstream keys need the
    program CRC from the build manifest; returns None when the manifest
    is not in the store yet (the job must then run on a worker, which
    rebuilds and re-derives the key itself).
    """
    if spec.kind == "build":
        return manifest_key(spec.name, spec.software, spec.source)
    manifest = store.get_meta(
        "build", manifest_key(spec.name, spec.software, spec.source))
    if manifest is None:
        return None
    crc = manifest["program_crc"]
    if spec.kind == "trace":
        return trace_key(spec.name, spec.software, crc,
                         spec.max_instructions, spec.source)
    if spec.kind == "analysis":
        return analysis_key(spec.name, spec.software, crc,
                            spec.max_instructions, spec.source)
    return sim_key(spec.name, spec.software, crc, spec.machine_label,
                   spec.machine, spec.max_instructions, spec.source)


def artifact_ready(spec: JobSpec, store: ArtifactStore) -> str | None:
    """The job's key when its artifact is already in the store."""
    key = resolve_key(spec, store)
    if key is None:
        return None
    if spec.kind == "trace":
        if store.has("trace", key) and \
                store.payload_path("trace", key, TRACE_PAYLOAD):
            return key
        return None
    return key if store.has(spec.kind, key) else None


# ------------------------------------------------------------------ #
# execution (idempotent against the store)

def build_program(name: str, software: bool, source: str | None = None):
    if source is not None:
        from repro.compiler import compile_and_link

        return compile_and_link(source, benchmark_options(software))
    from repro.workloads.suite import build_benchmark

    return build_benchmark(name, software_support=software)


def ensure_manifest(store: ArtifactStore, name: str, software: bool,
                    source: str | None = None) -> dict:
    """Build manifest: the program CRC under a source+options key."""
    from repro.cpu.tracefile import program_crc

    key = manifest_key(name, software, source)
    meta = store.get_meta("build", key)
    if meta is not None:
        return meta
    program = build_program(name, software, source)
    meta = {
        "schema": FARM_SCHEMA,
        "kind": "build",
        "name": name,
        "software_support": software,
        "program_crc": program_crc(program),
        "instructions_static": len(program.instructions),
    }
    store.put("build", key, meta)
    return meta


def ensure_trace(store: ArtifactStore, name: str, software: bool,
                 max_instructions: int,
                 source: str | None = None) -> tuple[str, dict]:
    """Record (or find) the functional trace of one build.

    The artifact carries the facts a trace cannot: instruction count,
    memory usage, and captured stdout -- everything downstream analyses
    and simulations need to match a live run exactly.
    """
    from repro.cpu import CPU
    from repro.cpu.tracefile import record_trace

    manifest = ensure_manifest(store, name, software, source)
    key = trace_key(name, software, manifest["program_crc"],
                    max_instructions, source)
    meta = store.get_meta("trace", key)
    if meta is not None and store.payload_path("trace", key, TRACE_PAYLOAD):
        return key, meta
    program = build_program(name, software, source)
    cpu = CPU(program)
    scratch = store.scratch(f"{name}-{key[:12]}.fact.gz")
    count = record_trace(program, str(scratch), max_instructions, cpu=cpu)
    meta = {
        "schema": FARM_SCHEMA,
        "kind": "trace",
        "name": name,
        "software_support": software,
        "program_crc": manifest["program_crc"],
        "max_instructions": max_instructions,
        "instructions": count,
        "memory_usage": cpu.memory_usage,
        "stdout": cpu.stdout(),
    }
    store.put("trace", key, meta, payloads={TRACE_PAYLOAD: scratch})
    return key, meta


def ensure_coltrace(store: ArtifactStore, name: str, software: bool,
                    max_instructions: int,
                    source: str | None = None) -> tuple[str, dict]:
    """Decode (or find) the columnar form of one build's trace.

    The ``coltrace`` artifact is a pure re-encoding of its parent
    ``trace`` (``repro.coltrace/1`` column arrays), stored so each
    trace is columnarized exactly once per sweep; the gc treats it as
    derived and evicts it before anything expensive (see
    :data:`repro.farm.store.DERIVED_KINDS`).
    """
    from repro.cpu.coltrace import (
        COLTRACE_SCHEMA,
        columns_to_bytes,
        decode_tracefile,
    )

    manifest = ensure_manifest(store, name, software, source)
    key = coltrace_key(name, software, manifest["program_crc"],
                       max_instructions, source)
    meta = store.get_meta("coltrace", key)
    if meta is not None and \
            store.payload_path("coltrace", key, COLTRACE_PAYLOAD):
        return key, meta
    tkey, tmeta = ensure_trace(store, name, software, max_instructions,
                               source)
    store.pin("trace", tkey)
    try:
        program = build_program(name, software, source)
        trace_path = store.payload_path("trace", tkey, TRACE_PAYLOAD)
        cols = decode_tracefile(program, str(trace_path))
        meta = {
            "schema": FARM_SCHEMA,
            "kind": "coltrace",
            "format": COLTRACE_SCHEMA,
            "name": name,
            "software_support": software,
            "program_crc": manifest["program_crc"],
            "max_instructions": max_instructions,
            "records": cols.count,
            "trace_key": tkey,
        }
        store.put("coltrace", key, meta,
                  payloads={COLTRACE_PAYLOAD: columns_to_bytes(cols)})
    finally:
        store.unpin("trace", tkey)
    return key, meta


def _analysis_columns(store: ArtifactStore, ckey: str, tkey: str, program):
    """The columns behind a pinned analysis cell: the stored coltrace
    payload when present, else a direct decode of the parent trace (a
    concurrent gc may have raced the payload away before the pin)."""
    from repro.cpu.coltrace import columns_from_bytes, decode_tracefile

    blob = store.get_bytes("coltrace", ckey, COLTRACE_PAYLOAD)
    if blob is not None:
        return columns_from_bytes(blob, label=f"coltrace:{ckey[:12]}")
    trace_path = store.payload_path("trace", tkey, TRACE_PAYLOAD)
    return decode_tracefile(program, str(trace_path))


def ensure_analysis(store: ArtifactStore, name: str, software: bool,
                    max_instructions: int, source: str | None = None,
                    engine: str = "columnar") -> tuple[str, dict]:
    """Compute (or find) the trace analysis snapshot of one build.

    ``engine="columnar"`` (default) goes through the ``coltrace``
    artifact and the vectorized batch analyzer; ``engine="records"``
    replays the tracefile through the scalar analyzer. Both engines
    produce byte-identical snapshots under the *same* analysis key --
    the columnar path is an implementation change, not a new cell, so
    warm stores stay valid.
    """
    from repro.analysis.prediction import analyze_trace

    manifest = ensure_manifest(store, name, software, source)
    key = analysis_key(name, software, manifest["program_crc"],
                       max_instructions, source)
    snapshot = store.get_json("analysis", key)
    if snapshot is not None:
        return key, snapshot
    tkey, tmeta = ensure_trace(store, name, software, max_instructions,
                               source)
    program = build_program(name, software, source)
    if engine == "columnar":
        from repro.analysis.batch import analyze_trace_columns

        ckey, _ = ensure_coltrace(store, name, software, max_instructions,
                                  source)
        # pin the inputs for the duration of the cell: a size-budgeted
        # gc running between jobs must not evict what we are reading
        store.pin("trace", tkey)
        store.pin("coltrace", ckey)
        try:
            cols = _analysis_columns(store, ckey, tkey, program)
            analysis = analyze_trace_columns(
                program, cols, block_sizes=ANALYSIS_BLOCK_SIZES,
                memory_usage=tmeta["memory_usage"], stdout=tmeta["stdout"],
            )
        finally:
            store.unpin("coltrace", ckey)
            store.unpin("trace", tkey)
    else:
        trace_path = store.payload_path("trace", tkey, TRACE_PAYLOAD)
        analysis = analyze_trace(
            program, str(trace_path), block_sizes=ANALYSIS_BLOCK_SIZES,
            memory_usage=tmeta["memory_usage"], stdout=tmeta["stdout"],
            engine=engine,
        )
    snapshot = analysis_to_snapshot(analysis, meta={
        "cell": "analysis",
        "name": name,
        "software_support": software,
        "max_instructions": max_instructions,
    })
    store.put_json("analysis", key, snapshot, meta={
        "schema": FARM_SCHEMA,
        "kind": "analysis",
        "name": name,
        "software_support": software,
        "program_crc": manifest["program_crc"],
        "max_instructions": max_instructions,
    })
    return key, snapshot


def ensure_sim(store: ArtifactStore, name: str, software: bool,
               machine_label: str, machine: MachineConfig,
               max_instructions: int,
               source: str | None = None) -> tuple[str, dict]:
    """Replay (or find) one timing simulation snapshot."""
    from repro.cpu.tracefile import simulate_trace

    manifest = ensure_manifest(store, name, software, source)
    key = sim_key(name, software, manifest["program_crc"], machine_label,
                  machine, max_instructions, source)
    snapshot = store.get_json("sim", key)
    if snapshot is not None:
        return key, snapshot
    tkey, tmeta = ensure_trace(store, name, software, max_instructions,
                               source)
    program = build_program(name, software, source)
    trace_path = store.payload_path("trace", tkey, TRACE_PAYLOAD)
    result = simulate_trace(program, str(trace_path), machine,
                            memory_usage=tmeta["memory_usage"])
    snapshot = sim_to_snapshot(result, meta={
        "cell": "sim",
        "name": name,
        "software_support": software,
        "machine": machine_label,
        "max_instructions": max_instructions,
    })
    store.put_json("sim", key, snapshot, meta={
        "schema": FARM_SCHEMA,
        "kind": "sim",
        "name": name,
        "software_support": software,
        "machine": machine_label,
        "program_crc": manifest["program_crc"],
        "max_instructions": max_instructions,
    })
    return key, snapshot


def execute_job(spec: JobSpec, store: ArtifactStore) -> str:
    """Run one job against the store; returns the artifact key.

    Each job re-ensures its own inputs through the store, so a worker
    can execute any job without payload plumbing -- dependencies exist
    to order the sweep and scope failures, not to carry data.
    """
    if spec.kind == "build":
        ensure_manifest(store, spec.name, spec.software, spec.source)
        return manifest_key(spec.name, spec.software, spec.source)
    if spec.kind == "trace":
        key, _ = ensure_trace(store, spec.name, spec.software,
                              spec.max_instructions, spec.source)
        return key
    if spec.kind == "analysis":
        key, _ = ensure_analysis(store, spec.name, spec.software,
                                 spec.max_instructions, spec.source)
        return key
    if spec.kind == "sim":
        key, _ = ensure_sim(store, spec.name, spec.software,
                            spec.machine_label, spec.machine,
                            spec.max_instructions, spec.source)
        return key
    raise ValueError(f"unknown job kind {spec.kind!r}")
