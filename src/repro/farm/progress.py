"""Live one-line progress display for farm sweeps.

A :class:`ProgressSink` attached to the scheduler's event bus rewrites a
single status line (``\\r``) as jobs complete::

    [farm] 37/64 done | 21 hits 15 computed 1 failed | sim:gcc:fac32

It is an event *sink* like any other (:mod:`repro.obs.sinks`): attach it
to the same bus as a ``JsonlSink`` to get a machine log and the human
line from one stream of events.
"""

from __future__ import annotations

import sys

from repro.obs.events import (
    Event,
    FarmJobCrashed,
    FarmJobFailed,
    FarmJobFinished,
    FarmJobRetry,
    FarmJobScheduled,
    FarmJobStarted,
    FarmJobTimeout,
)


class ProgressSink:
    """Renders farm lifecycle events as one self-rewriting status line."""

    def __init__(self, stream=None, enabled: bool = True):
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.total = 0
        self.done = 0
        self.hits = 0
        self.computed = 0
        self.failed = 0
        self.retries = 0
        self.last = ""
        self._dirty = False

    def handle(self, event: Event) -> None:
        if isinstance(event, FarmJobScheduled):
            self.total += 1
        elif isinstance(event, FarmJobStarted):
            self.last = event.job_id
        elif isinstance(event, FarmJobFinished):
            self.done += 1
            if event.cached:
                self.hits += 1
            else:
                self.computed += 1
            self.last = event.job_id
        elif isinstance(event, FarmJobFailed):
            self.done += 1
            self.failed += 1
            self.last = f"{event.job_id} FAILED"
        elif isinstance(event, FarmJobCrashed):
            self.last = f"{event.job_id} crashed"
        elif isinstance(event, FarmJobTimeout):
            self.last = f"{event.job_id} timed out"
        elif isinstance(event, FarmJobRetry):
            self.retries += 1
            self.last = f"{event.job_id} retry #{event.next_attempt}"
        else:
            return
        self._render()

    def _render(self) -> None:
        if not self.enabled:
            return
        retries = f" {self.retries} retries" if self.retries else ""
        line = (f"[farm] {self.done}/{self.total} done | "
                f"{self.hits} hits {self.computed} computed "
                f"{self.failed} failed{retries} | {self.last}")
        self.stream.write("\r" + line[:119].ljust(119))
        self.stream.flush()
        self._dirty = True

    def close(self) -> None:
        if self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False
