"""``repro farm top`` -- a live ANSI dashboard for a running sweep.

The scheduler publishes a ``repro.farm-live/1`` JSON status file
(``<store>/runs/live.json``, atomic replace, ~4 Hz) while a sweep runs;
this module polls and renders it, so ``repro farm top`` works from a
second terminal with no coupling to the sweep process beyond the farm
directory -- the same files-as-API contract the artifact store uses.

Rendering is a pure function (:func:`render_dashboard`) over the status
dict, so tests drive it with crafted payloads and golden substrings; the
watch loop only adds cursor-home/clear escapes and staleness detection
(a sweep that died without writing ``complete`` shows as ``STALE``).
"""

from __future__ import annotations

import json
import sys
import time

LIVE_FILENAME = "live.json"

#: Seconds without a status update before the sweep is presumed dead.
STALE_SECONDS = 5.0

_HOME_CLEAR = "\x1b[H\x1b[2J"


def live_path(store):
    return store.runs_dir() / LIVE_FILENAME


def read_live(store) -> dict | None:
    """The current live status, or None when no sweep ever published."""
    try:
        with open(live_path(store)) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def _bar(fraction: float, width: int = 24) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_dashboard(status: dict, now: float | None = None,
                     width: int = 78) -> str:
    """One dashboard frame (no escape codes; the caller owns the screen).

    ``now`` is wall-clock seconds for staleness display; defaults to
    ``time.time()``.
    """
    now = time.time() if now is None else now
    age = now - status.get("updated", now)
    total = status.get("total", 0) or 0
    done = status.get("done", 0)
    hits = status.get("hits", 0)
    computed = status.get("computed", 0)
    failed = status.get("failed", 0)
    workers = status.get("workers", {})
    queue = status.get("queue", {})
    fraction = done / total if total else 0.0

    state = "COMPLETE" if status.get("complete") else (
        "STALE" if age > STALE_SECONDS else "RUNNING")
    lines = [
        f"repro farm top -- {state}  "
        f"(pid {status.get('pid', '?')}, "
        f"elapsed {status.get('elapsed', 0.0):.1f}s, "
        f"updated {age:.1f}s ago)",
        "=" * width,
        f"progress  [{_bar(fraction)}] {done}/{total} jobs  "
        f"({100 * fraction:.0f}%)",
        f"store     {hits} hits  {computed} computed  {failed} failed  "
        f"| hit ratio {100 * status.get('hit_ratio', 0.0):.0f}%",
        f"queue     {queue.get('ready', 0)} ready  "
        f"{queue.get('waiting', 0)} waiting on deps",
        f"workers   {workers.get('busy', 0)}/{workers.get('max', 0)} busy "
        f"({workers.get('spawned', 0)} spawned)  "
        f"| utilization {100 * status.get('utilization', 0.0):.0f}%",
        "-" * width,
    ]
    running = status.get("running", [])
    if running:
        lines.append(f"{'WORKER':>6}  {'ELAPSED':>8}  {'ATT':>3}  JOB")
        for job in running:
            lines.append(
                f"{job.get('worker', '?'):>6}  "
                f"{job.get('elapsed', 0.0):>7.1f}s  "
                f"{job.get('attempt', 1):>3}  "
                f"{job.get('job_id', '?')[:width - 26]}")
    elif status.get("complete"):
        lines.append("(sweep complete)")
    else:
        lines.append("(no jobs in flight)")
    return "\n".join(lines) + "\n"


def watch(store, stream=None, interval: float = 0.5, once: bool = False,
          duration: float | None = None, clock=time.time,
          sleep=time.sleep) -> int:
    """Poll the live file and redraw until the sweep completes.

    Returns 0 on a completed sweep (or a rendered ``--once`` frame), 1
    when no live status exists or the watch timed out while the sweep
    was still incomplete. ``clock``/``sleep`` are injectable for tests.
    """
    stream = stream if stream is not None else sys.stdout
    started = clock()
    first = True
    while True:
        status = read_live(store)
        if status is None:
            if once:
                stream.write("no sweep has published live status under "
                             f"{live_path(store)}\n")
                return 1
        else:
            frame = render_dashboard(status, now=clock())
            if once:
                stream.write(frame)
                return 0
            stream.write(_HOME_CLEAR + frame)
            stream.flush()
            if status.get("complete"):
                return 0
            first = False
        if once:
            return 1
        if duration is not None and clock() - started >= duration:
            return 0 if (status and status.get("complete")) else 1
        if first and status is None:
            stream.write("waiting for a sweep to start "
                         f"({live_path(store)})...\n")
            stream.flush()
            first = False
        sleep(interval)
