"""``python -m repro farm`` -- drive experiment sweeps through the farm.

Subcommands:

* ``farm run``      -- plan the cells behind one or more figures, execute
                       the job graph across a worker pool (recording the
                       span tree and a ``repro.ledger/1`` manifest), then
                       (unless ``--no-render``) render each figure from
                       the now-warm store.
* ``farm status``   -- store location, per-kind artifact counts/bytes,
                       the last run's summary, and the ledger index
                       (``--json`` emits a ``repro.farm-status/1``
                       document).
* ``farm top``      -- live ANSI dashboard of the currently running
                       sweep (running jobs, queue depth, hit ratio,
                       worker utilization), from another terminal.
* ``farm history``  -- list/inspect persisted runs and flag wall-time
                       drift against the previous run of the same sweep.
* ``farm timeline`` -- export one run's span tree as Chrome trace-event
                       JSON (Perfetto-loadable, per-worker tracks).
* ``farm gc``       -- evict artifacts (LRU under ``--max-bytes``, or
                       everything with ``--all``).
"""

from __future__ import annotations

import json
import sys

from repro.farm import ledger as ledger_mod
from repro.farm.jobs import plan_jobs
from repro.farm.progress import ProgressSink
from repro.farm.scheduler import run_graph
from repro.farm.store import ArtifactStore, default_store_root

#: figure name -> (harness module name, runner attribute).
HARNESSES = {
    "fig1": ("fig1_pipeline", "run_fig1"),
    "fig2": ("fig2_ipc", "run_fig2"),
    "fig3": ("fig3_offsets", "run_fig3"),
    "fig5": ("fig5_examples", "run_fig5"),
    "fig6": ("fig6_speedups", "run_fig6"),
    "table1": ("table1_refbehavior", "run_table1"),
    "table3": ("table3_nosupport", "run_table3"),
    "table4": ("table4_withsupport", "run_table4"),
    "table6": ("table6_bandwidth", "run_table6"),
    "signals": ("signals_report", "run_signals"),
}

#: Runners whose signature has no ``benchmarks`` parameter.
_NO_BENCHMARKS = ("fig1", "fig5")


def _split_csv(value: str | None) -> list[str] | None:
    if not value:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def parse_size(text: str) -> int:
    """Parse ``500M``-style sizes (K/M/G suffixes, powers of 1024)."""
    text = text.strip()
    multiplier = 1
    suffixes = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}
    if text and text[-1].lower() in suffixes:
        multiplier = suffixes[text[-1].lower()]
        text = text[:-1]
    return int(float(text) * multiplier)


def _store_for(args) -> ArtifactStore:
    root = getattr(args, "store", None) or default_store_root()
    return ArtifactStore(root)


def cmd_farm_run(args) -> int:
    import importlib

    from repro.farm.top import live_path
    from repro.experiments import common
    from repro.obs.events import EventBus
    from repro.obs.spans import SpanTracker

    figures = _split_csv(args.figures) or sorted(HARNESSES)
    unknown = [f for f in figures if f not in HARNESSES]
    if unknown:
        print(f"unknown figure(s) {unknown}; choose from {sorted(HARNESSES)}",
              file=sys.stderr)
        return 2
    benchmarks = _split_csv(args.suite)
    if benchmarks:
        bad = [b for b in benchmarks if b not in common.suite_names(None)]
        if bad:
            print(f"unknown benchmark(s) {bad}; see 'python -m repro suite'",
                  file=sys.stderr)
            return 2

    modules = {}
    cells = set()
    for figure in figures:
        module_name, _ = HARNESSES[figure]
        module = importlib.import_module(f"repro.experiments.{module_name}")
        modules[figure] = module
        cells |= module.farm_cells(benchmarks)

    store = _store_for(args)
    graph = plan_jobs(cells, common.MACHINES,
                      max_instructions=common.MAX_INSTRUCTIONS)
    print(f"[farm] {len(cells)} cells -> {len(graph.jobs)} jobs "
          f"(store: {store.root}, workers: {args.jobs})", file=sys.stderr)

    bus = EventBus()
    progress = ProgressSink(sys.stderr, enabled=not args.quiet)
    bus.attach(progress)
    tracker = None if args.no_spans else SpanTracker(obs=None)
    try:
        result = run_graph(graph, store, jobs=args.jobs,
                           timeout=args.timeout, retries=args.retries,
                           obs=bus, tracker=tracker,
                           heartbeat_path=live_path(store))
    finally:
        progress.close()

    summary = result.summary()
    summary["figures"] = figures
    summary["benchmarks"] = benchmarks or sorted(common.suite_names(None))
    store.write_last_run(summary)
    if tracker is not None:
        run = ledger_mod.run_from_sweep(
            args.run_id or ledger_mod.new_run_id(), graph, result, tracker,
            meta={"figures": figures,
                  "benchmarks": summary["benchmarks"],
                  "workers": args.jobs})
        ledger_path = ledger_mod.write_run(store, run)
        summary["run_id"] = run.run_id
        print(f"[farm] ledger: {ledger_path}", file=sys.stderr)
    if args.summary_json:
        with open(args.summary_json, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(f"[farm] {summary['total']} jobs: {summary['hits']} hits, "
          f"{summary['computed']} computed, {len(summary['failed'])} failed "
          f"({summary['elapsed_seconds']}s)", file=sys.stderr)
    for job_id in summary["failed"]:
        print(f"[farm] FAILED {job_id}: {summary['errors'][job_id]}",
              file=sys.stderr)

    if not args.no_render and not summary["failed"]:
        # Figures read through common.*_for, which hits the warm store.
        for figure in figures:
            _, runner_name = HARNESSES[figure]
            runner = getattr(modules[figure], runner_name)
            if figure in _NO_BENCHMARKS:
                print(runner().render())
            else:
                print(runner(benchmarks).render())
            print()
    return 1 if summary["failed"] else 0


def _run_index(store) -> list[dict]:
    """Ledger index rows for ``farm status --json`` / ``farm history``."""
    rows = []
    for run in ledger_mod.list_runs(store):
        rows.append({
            "run_id": run.run_id,
            "sweep_key": run.sweep_key,
            "created": run.created,
            "jobs": len(run.jobs),
            "failed": len(run.summary.get("failed", [])),
            "elapsed_seconds": run.summary.get("elapsed_seconds", 0.0),
        })
    return rows


def cmd_farm_status(args) -> int:
    store = _store_for(args)
    stats = store.stats()
    if args.json:
        payload = {
            "schema": ledger_mod.FARM_STATUS_SCHEMA_VERSION,
            "store": stats["root"],
            "stats": stats,
            "last_run": store.read_last_run(),
            "runs": _run_index(store),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"store: {stats['root']}")
    if not stats["kinds"]:
        print("  (empty)")
    for kind, bucket in sorted(stats["kinds"].items()):
        print(f"  {kind:10s} {bucket['count']:5d} artifacts  "
              f"{bucket['bytes'] / 1024:10.1f} KiB")
    total = stats["total"]
    print(f"  {'total':10s} {total['count']:5d} artifacts  "
          f"{total['bytes'] / 1024:10.1f} KiB")
    last = store.read_last_run()
    if last:
        print(f"last run: {last.get('total', '?')} jobs, "
              f"{last.get('hits', '?')} hits, "
              f"{last.get('computed', '?')} computed, "
              f"{len(last.get('failed', []))} failed "
              f"({last.get('elapsed_seconds', '?')}s)")
    runs = _run_index(store)
    if runs:
        print(f"ledger: {len(runs)} run(s), latest {runs[-1]['run_id']}")
    return 0


def cmd_farm_top(args) -> int:
    from repro.farm.top import watch

    return watch(_store_for(args), interval=args.interval, once=args.once,
                 duration=args.duration)


def _render_drift(delta) -> str:
    lines = [f"compare {delta.old_id} -> {delta.new_id}"]
    if not delta.same_sweep:
        lines.append("  DIFFERENT SWEEPS (sweep keys do not match); "
                     "job-level comparison is best-effort")
    lines.append(f"  elapsed {delta.elapsed_old:.3f}s -> "
                 f"{delta.elapsed_new:.3f}s")
    if not delta.drifts:
        lines.append("  zero drift")
    for drift in delta.drifts:
        if drift.field == "wall":
            lines.append(f"  DRIFT {drift.job_id}: wall {drift.old:.3f}s "
                         f"-> {drift.new:.3f}s ({drift.delta:+.3f}s)")
        else:
            lines.append(f"  DRIFT {drift.job_id}: {drift.field} "
                         f"{drift.old} -> {drift.new}")
    return "\n".join(lines)


def _drift_json(delta) -> dict:
    return {
        "old": delta.old_id,
        "new": delta.new_id,
        "same_sweep": delta.same_sweep,
        "elapsed_old": delta.elapsed_old,
        "elapsed_new": delta.elapsed_new,
        "drifts": [
            {"job_id": d.job_id, "field": d.field, "old": d.old,
             "new": d.new, "delta": d.delta}
            for d in delta.drifts
        ],
    }


def cmd_farm_history(args) -> int:
    store = _store_for(args)
    runs = ledger_mod.list_runs(store)

    if args.run is None and args.compare is None:
        # list mode
        if args.json:
            print(json.dumps({"schema": "repro.farm-history/1",
                              "runs": _run_index(store)},
                             indent=2, sort_keys=True))
            return 0
        if not runs:
            print("(no ledger runs; sweeps record one unless --no-spans)")
            return 0
        print(f"{'RUN':28s} {'SWEEP':10s} {'JOBS':>5} {'FAIL':>5} "
              f"{'ELAPSED':>9}")
        for run in runs:
            print(f"{run.run_id:28s} {run.sweep_key[:10]:10s} "
                  f"{len(run.jobs):>5} "
                  f"{len(run.summary.get('failed', [])):>5} "
                  f"{run.summary.get('elapsed_seconds', 0.0):>8.3f}s")
        return 0

    run = ledger_mod.find_run(store, args.run or "last")
    if run is None:
        print(f"no ledger run {args.run or 'last'!r} under {store.root}",
              file=sys.stderr)
        return 2

    if args.compare is not None:
        if args.compare == "__prev__":
            old = ledger_mod.previous_run(store, run)
            if old is None:
                print(f"no earlier run of sweep {run.sweep_key[:10]} "
                      f"to compare against", file=sys.stderr)
                return 2
        else:
            old = ledger_mod.find_run(store, args.compare)
            if old is None:
                print(f"no ledger run {args.compare!r} under {store.root}",
                      file=sys.stderr)
                return 2
        delta = ledger_mod.compare_runs(old, run)
        if args.json:
            print(json.dumps({"schema": "repro.farm-drift/1",
                              **_drift_json(delta)},
                             indent=2, sort_keys=True))
        else:
            print(_render_drift(delta))
        return 0 if delta.ok else 1

    # inspect mode
    if args.json:
        print(json.dumps({
            "schema": ledger_mod.LEDGER_SCHEMA,
            "header": run.header(),
            "jobs": run.jobs,
            "summary": run.summary,
            "spans": len(run.spans),
        }, indent=2, sort_keys=True))
        return 0
    print(f"run {run.run_id} (sweep {run.sweep_key[:10]})")
    summary = run.summary
    print(f"  {summary.get('total', len(run.jobs))} jobs: "
          f"{summary.get('hits', '?')} hits, "
          f"{summary.get('computed', '?')} computed, "
          f"{len(summary.get('failed', []))} failed  "
          f"({summary.get('elapsed_seconds', 0.0)}s wall, "
          f"{summary.get('cpu_seconds', 0.0)}s cpu)")
    problems = ledger_mod.check_spans(run)
    print(f"  spans: {len(run.spans)} "
          f"({'healthy' if not problems else '; '.join(problems)})")
    slowest = sorted(run.jobs.values(), key=lambda j: -j["wall"])[:8]
    if slowest:
        print("  slowest jobs:")
        for job in slowest:
            rss = job["max_rss"] / (1024 * 1024)
            print(f"    {job['wall']:>8.3f}s  cpu {job['cpu']:>7.3f}s  "
                  f"rss {rss:>6.1f}M  [{job['status']}] {job['job_id']}")
    return 0


def cmd_farm_timeline(args) -> int:
    store = _store_for(args)
    run = ledger_mod.find_run(store, args.run)
    if run is None:
        print(f"no ledger run {args.run!r} under {store.root}",
              file=sys.stderr)
        return 2
    if args.chrome:
        with open(args.chrome, "w") as handle:
            written = ledger_mod.run_to_chrome(run, handle)
        print(f"[farm] {written} spans -> {args.chrome} "
              f"(load in https://ui.perfetto.dev)", file=sys.stderr)
        return 0
    # text mode: the span tree, depth-indented
    by_parent: dict[int | None, list[dict]] = {}
    for span in run.spans:
        by_parent.setdefault(span["parent_id"], []).append(span)

    def emit(span, depth):
        dur = "   open  " if span["t1"] is None else \
            f"{span['t1'] - span['t0']:>8.3f}s"
        print(f"{dur}  {'  ' * depth}{span['name']}")
        for child in sorted(by_parent.get(span["span_id"], []),
                            key=lambda s: s["t0"]):
            emit(child, depth + 1)

    print(f"run {run.run_id} (sweep {run.sweep_key[:10]})")
    for root in sorted(by_parent.get(None, []), key=lambda s: s["t0"]):
        emit(root, 0)
    return 0


def cmd_farm_gc(args) -> int:
    store = _store_for(args)
    budget = args.max_bytes if args.max_bytes is not None else args.max_size
    if not args.all and budget is None:
        print("farm gc: pass --max-bytes SIZE or --all", file=sys.stderr)
        return 2
    if args.all:
        evicted, freed = store.gc(clear=True)
    else:
        evicted, freed = store.gc(max_bytes=parse_size(budget))
    print(f"[farm] evicted {evicted} artifacts, freed {freed / 1024:.1f} KiB")
    return 0


def add_farm_parser(sub) -> None:
    """Register the ``farm`` subcommand on a ``__main__`` subparser set."""
    p_farm = sub.add_parser(
        "farm", help="parallel, artifact-cached experiment execution"
    )
    farm_sub = p_farm.add_subparsers(dest="farm_command", required=True)

    p_run = farm_sub.add_parser("run", help="execute an experiment sweep")
    p_run.add_argument("--jobs", "-j", type=int, default=1,
                       help="worker-pool width (default 1)")
    p_run.add_argument("--suite", default=None, metavar="NAMES",
                       help="comma-separated benchmark subset (default: all)")
    p_run.add_argument("--figures", default=None, metavar="LIST",
                       help="comma-separated figures "
                            f"(default: all of {','.join(sorted(HARNESSES))})")
    p_run.add_argument("--timeout", type=float, default=600.0,
                       help="per-job attempt timeout, seconds (default 600)")
    p_run.add_argument("--retries", type=int, default=1,
                       help="extra attempts after a crash/timeout (default 1)")
    p_run.add_argument("--store", default=None, metavar="DIR",
                       help="artifact store root (default: $REPRO_FARM_DIR "
                            "or .repro-farm/)")
    p_run.add_argument("--summary-json", default=None, metavar="FILE",
                       help="also write the run summary JSON to FILE")
    p_run.add_argument("--no-render", action="store_true",
                       help="skip rendering figures after the sweep")
    p_run.add_argument("--no-spans", action="store_true",
                       help="disable span recording and the run ledger")
    p_run.add_argument("--run-id", default=None, metavar="ID",
                       help="ledger run id (default: timestamp-pid)")
    p_run.add_argument("--quiet", action="store_true",
                       help="suppress the live progress line")
    p_run.set_defaults(func=cmd_farm_run)

    p_status = farm_sub.add_parser("status", help="store and last-run summary")
    p_status.add_argument("--store", default=None, metavar="DIR")
    p_status.add_argument("--json", action="store_true",
                          help="emit a repro.farm-status/1 document")
    p_status.set_defaults(func=cmd_farm_status)

    p_top = farm_sub.add_parser(
        "top", help="live dashboard of the running sweep")
    p_top.add_argument("--store", default=None, metavar="DIR")
    p_top.add_argument("--interval", type=float, default=0.5,
                       help="refresh interval, seconds (default 0.5)")
    p_top.add_argument("--once", action="store_true",
                       help="render one frame and exit")
    p_top.add_argument("--duration", type=float, default=None,
                       help="stop watching after this many seconds")
    p_top.set_defaults(func=cmd_farm_top)

    p_history = farm_sub.add_parser(
        "history", help="list/inspect/compare persisted sweep runs")
    p_history.add_argument("run", nargs="?", default=None,
                           help="run id to inspect (or 'last')")
    p_history.add_argument("--compare", nargs="?", const="__prev__",
                           default=None, metavar="OLD",
                           help="drift vs OLD (default: the previous run "
                                "of the same sweep); nonzero exit on drift")
    p_history.add_argument("--json", action="store_true")
    p_history.add_argument("--store", default=None, metavar="DIR")
    p_history.set_defaults(func=cmd_farm_history)

    p_timeline = farm_sub.add_parser(
        "timeline", help="export one run's span tree")
    p_timeline.add_argument("run", nargs="?", default="last",
                            help="run id (default: last)")
    p_timeline.add_argument("--chrome", default=None, metavar="FILE",
                            help="write Chrome trace-event JSON "
                                 "(Perfetto-loadable, per-worker tracks) "
                                 "instead of the text tree")
    p_timeline.add_argument("--store", default=None, metavar="DIR")
    p_timeline.set_defaults(func=cmd_farm_timeline)

    p_gc = farm_sub.add_parser("gc", help="evict artifacts")
    p_gc.add_argument("--max-bytes", default=None, metavar="SIZE",
                      help="evict LRU-first until the store fits SIZE "
                           "(K/M/G suffixes)")
    p_gc.add_argument("--max-size", default=None, metavar="SIZE",
                      help="alias for --max-bytes (historical name)")
    p_gc.add_argument("--all", action="store_true",
                      help="remove every artifact")
    p_gc.add_argument("--store", default=None, metavar="DIR")
    p_gc.set_defaults(func=cmd_farm_gc)
