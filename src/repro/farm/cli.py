"""``python -m repro farm`` -- drive experiment sweeps through the farm.

Subcommands:

* ``farm run``    -- plan the cells behind one or more figures, execute
                     the job graph across a worker pool, then (unless
                     ``--no-render``) render each figure from the now-warm
                     store.
* ``farm status`` -- store location, per-kind artifact counts/bytes, and
                     the last run's summary.
* ``farm gc``     -- evict artifacts (LRU under ``--max-size``, or
                     everything with ``--all``).
"""

from __future__ import annotations

import json
import sys

from repro.farm.jobs import plan_jobs
from repro.farm.progress import ProgressSink
from repro.farm.scheduler import run_graph
from repro.farm.store import ArtifactStore, default_store_root

#: figure name -> (harness module name, runner attribute).
HARNESSES = {
    "fig1": ("fig1_pipeline", "run_fig1"),
    "fig2": ("fig2_ipc", "run_fig2"),
    "fig3": ("fig3_offsets", "run_fig3"),
    "fig5": ("fig5_examples", "run_fig5"),
    "fig6": ("fig6_speedups", "run_fig6"),
    "table1": ("table1_refbehavior", "run_table1"),
    "table3": ("table3_nosupport", "run_table3"),
    "table4": ("table4_withsupport", "run_table4"),
    "table6": ("table6_bandwidth", "run_table6"),
    "signals": ("signals_report", "run_signals"),
}

#: Runners whose signature has no ``benchmarks`` parameter.
_NO_BENCHMARKS = ("fig1", "fig5")


def _split_csv(value: str | None) -> list[str] | None:
    if not value:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def parse_size(text: str) -> int:
    """Parse ``500M``-style sizes (K/M/G suffixes, powers of 1024)."""
    text = text.strip()
    multiplier = 1
    suffixes = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}
    if text and text[-1].lower() in suffixes:
        multiplier = suffixes[text[-1].lower()]
        text = text[:-1]
    return int(float(text) * multiplier)


def _store_for(args) -> ArtifactStore:
    root = getattr(args, "store", None) or default_store_root()
    return ArtifactStore(root)


def cmd_farm_run(args) -> int:
    import importlib

    from repro.experiments import common
    from repro.obs.events import EventBus

    figures = _split_csv(args.figures) or sorted(HARNESSES)
    unknown = [f for f in figures if f not in HARNESSES]
    if unknown:
        print(f"unknown figure(s) {unknown}; choose from {sorted(HARNESSES)}",
              file=sys.stderr)
        return 2
    benchmarks = _split_csv(args.suite)
    if benchmarks:
        bad = [b for b in benchmarks if b not in common.suite_names(None)]
        if bad:
            print(f"unknown benchmark(s) {bad}; see 'python -m repro suite'",
                  file=sys.stderr)
            return 2

    modules = {}
    cells = set()
    for figure in figures:
        module_name, _ = HARNESSES[figure]
        module = importlib.import_module(f"repro.experiments.{module_name}")
        modules[figure] = module
        cells |= module.farm_cells(benchmarks)

    store = _store_for(args)
    graph = plan_jobs(cells, common.MACHINES,
                      max_instructions=common.MAX_INSTRUCTIONS)
    print(f"[farm] {len(cells)} cells -> {len(graph.jobs)} jobs "
          f"(store: {store.root}, workers: {args.jobs})", file=sys.stderr)

    bus = EventBus()
    progress = ProgressSink(sys.stderr, enabled=not args.quiet)
    bus.attach(progress)
    try:
        result = run_graph(graph, store, jobs=args.jobs,
                           timeout=args.timeout, retries=args.retries,
                           obs=bus)
    finally:
        progress.close()

    summary = result.summary()
    summary["figures"] = figures
    summary["benchmarks"] = benchmarks or sorted(common.suite_names(None))
    store.write_last_run(summary)
    if args.summary_json:
        with open(args.summary_json, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(f"[farm] {summary['total']} jobs: {summary['hits']} hits, "
          f"{summary['computed']} computed, {len(summary['failed'])} failed "
          f"({summary['elapsed_seconds']}s)", file=sys.stderr)
    for job_id in summary["failed"]:
        print(f"[farm] FAILED {job_id}: {summary['errors'][job_id]}",
              file=sys.stderr)

    if not args.no_render and not summary["failed"]:
        # Figures read through common.*_for, which hits the warm store.
        for figure in figures:
            _, runner_name = HARNESSES[figure]
            runner = getattr(modules[figure], runner_name)
            if figure in _NO_BENCHMARKS:
                print(runner().render())
            else:
                print(runner(benchmarks).render())
            print()
    return 1 if summary["failed"] else 0


def cmd_farm_status(args) -> int:
    store = _store_for(args)
    stats = store.stats()
    if args.json:
        print(json.dumps({"stats": stats, "last_run": store.read_last_run()},
                         indent=2, sort_keys=True))
        return 0
    print(f"store: {stats['root']}")
    if not stats["kinds"]:
        print("  (empty)")
    for kind, bucket in sorted(stats["kinds"].items()):
        print(f"  {kind:10s} {bucket['count']:5d} artifacts  "
              f"{bucket['bytes'] / 1024:10.1f} KiB")
    total = stats["total"]
    print(f"  {'total':10s} {total['count']:5d} artifacts  "
          f"{total['bytes'] / 1024:10.1f} KiB")
    last = store.read_last_run()
    if last:
        print(f"last run: {last.get('total', '?')} jobs, "
              f"{last.get('hits', '?')} hits, "
              f"{last.get('computed', '?')} computed, "
              f"{len(last.get('failed', []))} failed "
              f"({last.get('elapsed_seconds', '?')}s)")
    return 0


def cmd_farm_gc(args) -> int:
    store = _store_for(args)
    if not args.all and args.max_size is None:
        print("farm gc: pass --max-size SIZE or --all", file=sys.stderr)
        return 2
    if args.all:
        evicted, freed = store.gc(clear=True)
    else:
        evicted, freed = store.gc(max_size=parse_size(args.max_size))
    print(f"[farm] evicted {evicted} artifacts, freed {freed / 1024:.1f} KiB")
    return 0


def add_farm_parser(sub) -> None:
    """Register the ``farm`` subcommand on a ``__main__`` subparser set."""
    p_farm = sub.add_parser(
        "farm", help="parallel, artifact-cached experiment execution"
    )
    farm_sub = p_farm.add_subparsers(dest="farm_command", required=True)

    p_run = farm_sub.add_parser("run", help="execute an experiment sweep")
    p_run.add_argument("--jobs", "-j", type=int, default=1,
                       help="worker-pool width (default 1)")
    p_run.add_argument("--suite", default=None, metavar="NAMES",
                       help="comma-separated benchmark subset (default: all)")
    p_run.add_argument("--figures", default=None, metavar="LIST",
                       help="comma-separated figures "
                            f"(default: all of {','.join(sorted(HARNESSES))})")
    p_run.add_argument("--timeout", type=float, default=600.0,
                       help="per-job attempt timeout, seconds (default 600)")
    p_run.add_argument("--retries", type=int, default=1,
                       help="extra attempts after a crash/timeout (default 1)")
    p_run.add_argument("--store", default=None, metavar="DIR",
                       help="artifact store root (default: $REPRO_FARM_DIR "
                            "or .repro-farm/)")
    p_run.add_argument("--summary-json", default=None, metavar="FILE",
                       help="also write the run summary JSON to FILE")
    p_run.add_argument("--no-render", action="store_true",
                       help="skip rendering figures after the sweep")
    p_run.add_argument("--quiet", action="store_true",
                       help="suppress the live progress line")
    p_run.set_defaults(func=cmd_farm_run)

    p_status = farm_sub.add_parser("status", help="store and last-run summary")
    p_status.add_argument("--store", default=None, metavar="DIR")
    p_status.add_argument("--json", action="store_true")
    p_status.set_defaults(func=cmd_farm_status)

    p_gc = farm_sub.add_parser("gc", help="evict artifacts")
    p_gc.add_argument("--max-size", default=None, metavar="SIZE",
                      help="evict LRU-first until the store fits SIZE "
                           "(K/M/G suffixes)")
    p_gc.add_argument("--all", action="store_true",
                      help="remove every artifact")
    p_gc.add_argument("--store", default=None, metavar="DIR")
    p_gc.set_defaults(func=cmd_farm_gc)
