"""The farm's execution engine: a multiprocessing worker pool with
per-job timeouts, bounded retries, and graceful degradation.

Design:

* The parent owns the job graph. A job becomes *ready* when every
  dependency has completed; ready jobs are first checked against the
  artifact store (a hit completes instantly, no worker involved), then
  dispatched to an idle worker.
* Each worker is a separate process with its own task queue; results
  come back over one shared queue. Workers are spawned lazily -- a
  fully warm re-run never forks at all.
* A worker that dies mid-job (crash, OOM kill) or exceeds the per-job
  timeout is terminated and replaced; the job is retried up to
  ``retries`` extra attempts, then failed. A job that raises a Python
  exception fails immediately (re-running deterministic code cannot
  help). A failed job fails its dependents (``upstream failed``) but
  never the sweep: every other cell still completes.
* Lifecycle events are emitted on an optional
  :class:`repro.obs.events.EventBus`: ``farm.scheduled`` /
  ``farm.started`` / ``farm.finished`` / ``farm.failed``, plus the
  distinct failure-mode events ``farm.job.crashed`` /
  ``farm.job.timeout`` / ``farm.job.retry`` with the failure reason
  attached, so downstream consumers can tell a crash-then-recovered
  from a crash-then-gave-up without string-matching error text.

Telemetry (all optional, zero cost when off):

* ``tracker`` -- a :class:`repro.obs.spans.SpanTracker`; the run is
  recorded as a span tree (sweep -> per-job spans -> worker-side
  execute/store spans shipped back over the result queue and adopted
  under the job), the substrate of the run ledger
  (:mod:`repro.farm.ledger`) and ``repro farm timeline``.
* Per-job resource accounting -- workers measure wall time, their own
  CPU time (``getrusage``), and peak RSS around every attempt; totals
  land on the :class:`JobOutcome` (and therefore the ledger).
* ``heartbeat_path`` -- the parent periodically publishes a
  ``repro.farm-live/1`` JSON status file (atomic replace) with running
  jobs, queue depth, hit ratio, and worker utilization; ``repro farm
  top`` renders it live from another terminal.

Test hooks (used by the crash/timeout regression tests): a worker whose
job id contains ``$REPRO_FARM_TEST_CRASH`` exits hard with ``os._exit``;
one matching ``$REPRO_FARM_TEST_HANG`` sleeps forever (until the
scheduler's timeout kills it).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field

from repro.farm.jobs import JobGraph, JobSpec, artifact_ready, execute_job
from repro.farm.store import ArtifactStore
from repro.obs.events import (
    FarmJobCrashed,
    FarmJobFailed,
    FarmJobFinished,
    FarmJobRetry,
    FarmJobScheduled,
    FarmJobStarted,
    FarmJobTimeout,
)
from repro.obs.spans import SpanTracker

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX host
    _resource = None

_POLL_SECONDS = 0.05

#: Schema tag of the live status file (``repro farm top`` input).
LIVE_SCHEMA = "repro.farm-live/1"


def _cpu_and_rss() -> tuple[float, int]:
    """This process's cumulative CPU seconds and peak RSS in bytes."""
    if _resource is None:  # pragma: no cover - non-POSIX host
        return 0.0, 0
    usage = _resource.getrusage(_resource.RUSAGE_SELF)
    # Linux reports ru_maxrss in KiB (macOS in bytes; close enough for
    # attribution, and the gate tests only require monotonicity).
    return usage.ru_utime + usage.ru_stime, int(usage.ru_maxrss) * 1024


@dataclass
class JobOutcome:
    """Terminal state of one job, with its resource accounting."""

    job_id: str
    kind: str
    status: str             # 'hit' | 'done' | 'failed'
    key: str | None = None
    error: str | None = None
    attempts: int = 0
    wall: float = 0.0       # seconds across all attempts (hit: store check)
    cpu: float = 0.0        # worker CPU seconds across all attempts
    max_rss: int = 0        # peak worker RSS in bytes, max over attempts
    worker: int = -1        # last worker index, -1 = never dispatched

    @property
    def ok(self) -> bool:
        return self.status in ("hit", "done")


@dataclass
class FarmRunResult:
    """Everything one sweep produced, cell by cell."""

    outcomes: dict[str, JobOutcome] = field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def hits(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.status == "hit")

    @property
    def computed(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.status == "done")

    @property
    def failed(self) -> list[JobOutcome]:
        return [o for o in self.outcomes.values() if o.status == "failed"]

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary(self) -> dict:
        """JSON-able run summary (written to ``<store>/runs/last.json``)."""
        return {
            "total": len(self.outcomes),
            "hits": self.hits,
            "computed": self.computed,
            "failed": sorted(o.job_id for o in self.failed),
            "errors": {o.job_id: o.error for o in self.failed},
            "elapsed_seconds": round(self.elapsed, 3),
            "cpu_seconds": round(sum(o.cpu for o in self.outcomes.values()),
                                 3),
            "max_rss_bytes": max(
                (o.max_rss for o in self.outcomes.values()), default=0),
        }


# ------------------------------------------------------------------ #
# worker side

def _worker_main(worker_id: int, store_root: str, task_q, result_q) -> None:
    store = ArtifactStore(store_root)
    crash = os.environ.get("REPRO_FARM_TEST_CRASH", "")
    hang = os.environ.get("REPRO_FARM_TEST_HANG", "")
    while True:
        spec = task_q.get()
        if spec is None:
            return
        if crash and crash in spec.job_id:
            os._exit(66)
        if hang and hang in spec.job_id:
            time.sleep(3600)
        tracker = SpanTracker()
        store.tracer = tracker
        wall0 = time.monotonic()
        cpu0, _ = _cpu_and_rss()
        try:
            with tracker.span(f"execute:{spec.job_id}", parent=None,
                              cat="execute", attrs={"kind": spec.kind}):
                key = execute_job(spec, store)
            status, error = "ok", None
        except BaseException as exc:  # noqa: BLE001 - reported, not raised
            status, key, error = "error", None, f"{type(exc).__name__}: {exc}"
        store.tracer = None
        cpu1, rss = _cpu_and_rss()
        usage = {
            "wall": time.monotonic() - wall0,
            "cpu": max(0.0, cpu1 - cpu0),
            "max_rss": rss,
            "spans": tracker.export(),
        }
        result_q.put((worker_id, spec.job_id, status, key, error, usage))


class _Worker:
    """One pool slot: process handle, private task queue, in-flight job."""

    def __init__(self, ctx, index: int, store_root: str, result_q):
        self.index = index
        self.task_q = ctx.Queue()
        self.process = ctx.Process(
            target=_worker_main,
            args=(index, store_root, self.task_q, result_q),
            daemon=True,
            name=f"repro-farm-{index}",
        )
        self.process.start()
        self.job: JobSpec | None = None
        self.started_at = 0.0

    @property
    def idle(self) -> bool:
        return self.job is None

    def assign(self, spec: JobSpec) -> None:
        self.job = spec
        self.started_at = time.monotonic()
        self.task_q.put(spec)

    def release(self) -> None:
        self.job = None

    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self, kill: bool = False) -> None:
        if kill and self.process.is_alive():
            self.process.terminate()
        elif self.process.is_alive():
            try:
                self.task_q.put(None)
            except (OSError, ValueError):  # pragma: no cover - queue gone
                pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - stubborn child
            self.process.kill()
            self.process.join(timeout=2.0)
        self.task_q.close()


# ------------------------------------------------------------------ #
# parent side

class _GraphRun:
    def __init__(self, graph: JobGraph, store: ArtifactStore, jobs: int,
                 timeout: float | None, retries: int, obs=None,
                 tracker: SpanTracker | None = None,
                 heartbeat_path=None, heartbeat_interval: float = 0.25):
        self.graph = graph
        self.store = store
        self.max_workers = max(1, jobs)
        self.timeout = timeout
        self.retries = max(0, retries)
        self.obs = obs
        self.tracker = tracker
        self.heartbeat_path = heartbeat_path
        self.heartbeat_interval = heartbeat_interval
        self.outcomes: dict[str, JobOutcome] = {}
        self.attempts: dict[str, int] = {}
        self.waiting: dict[str, set[str]] = {}
        self.ready: list[str] = []
        self.workers: list[_Worker] = []
        self.sweep_span: int | None = None
        self.job_spans: dict[str, int] = {}
        self.usage: dict[str, dict] = {}    # job_id -> accumulated totals
        self._start_mono = 0.0
        self._next_beat = 0.0
        self.ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        self.result_q = self.ctx.Queue()

    # ---------------- events / spans ---------------- #

    def _emit(self, event) -> None:
        if self.obs is not None:
            self.obs.emit(event)

    def _span_for(self, job_id: str) -> int | None:
        """The job's span, started on first touch (dispatch or store
        check), parented on the sweep span."""
        if self.tracker is None:
            return None
        span_id = self.job_spans.get(job_id)
        if span_id is None:
            spec = self.graph.jobs[job_id]
            span_id = self.tracker.start(
                f"job:{job_id}", parent=self.sweep_span, cat="job",
                attrs={"job_id": job_id, "kind": spec.kind})
            self.job_spans[job_id] = span_id
        return span_id

    def _charge(self, job_id: str, usage: dict | None,
                worker: int) -> None:
        """Fold one attempt's measured resources into the job's totals
        and splice the worker's spans under the job span."""
        totals = self.usage.setdefault(
            job_id, {"wall": 0.0, "cpu": 0.0, "max_rss": 0, "worker": -1})
        totals["worker"] = worker
        if usage is None:
            return
        totals["wall"] += usage.get("wall", 0.0)
        totals["cpu"] += usage.get("cpu", 0.0)
        totals["max_rss"] = max(totals["max_rss"],
                                usage.get("max_rss", 0))
        if self.tracker is not None and usage.get("spans"):
            self.tracker.adopt(usage["spans"],
                               parent=self._span_for(job_id))

    # ---------------- completion ---------------- #

    def _finish(self, spec: JobSpec, status: str, key: str | None = None,
                error: str | None = None) -> None:
        totals = self.usage.get(spec.job_id, {})
        outcome = JobOutcome(
            job_id=spec.job_id, kind=spec.kind, status=status, key=key,
            error=error, attempts=self.attempts.get(spec.job_id, 0),
            wall=totals.get("wall", 0.0), cpu=totals.get("cpu", 0.0),
            max_rss=totals.get("max_rss", 0),
            worker=totals.get("worker", -1),
        )
        self.outcomes[spec.job_id] = outcome
        if status == "failed":
            self._emit(FarmJobFailed(
                job_id=spec.job_id, job_kind=spec.kind,
                error=error or "unknown",
                attempts=self.attempts.get(spec.job_id, 0)))
        else:
            self._emit(FarmJobFinished(
                job_id=spec.job_id, job_kind=spec.kind,
                cached=(status == "hit")))
        if self.tracker is not None:
            span_id = self._span_for(spec.job_id)
            attrs = {
                "status": status,
                "cached": status == "hit",
                "attempts": outcome.attempts,
                "wall": round(outcome.wall, 6),
                "cpu": round(outcome.cpu, 6),
                "max_rss": outcome.max_rss,
                "worker": outcome.worker,
            }
            if error:
                attrs["error"] = error
            self.tracker.end(
                span_id, status="ok" if status != "failed" else "error",
                attrs=attrs)
        self._propagate(spec.job_id, failed=(status == "failed"))

    def _propagate(self, done_id: str, failed: bool) -> None:
        for job_id, deps in list(self.waiting.items()):
            if done_id not in deps:
                continue
            if failed:
                del self.waiting[job_id]
                spec = self.graph.jobs[job_id]
                self._finish(spec, "failed",
                             error=f"upstream failed: {done_id}")
            else:
                deps.discard(done_id)
                if not deps:
                    del self.waiting[job_id]
                    self.ready.append(job_id)

    # ---------------- dispatch ---------------- #

    def _try_complete_from_store(self, spec: JobSpec) -> bool:
        check_start = time.monotonic()
        try:
            key = artifact_ready(spec, self.store)
        except Exception:
            # e.g. an unknown benchmark name: let a worker run the job
            # and report the real error as that cell's failure
            return False
        if key is None:
            return False
        self._span_for(spec.job_id)
        totals = self.usage.setdefault(
            spec.job_id, {"wall": 0.0, "cpu": 0.0, "max_rss": 0,
                          "worker": -1})
        totals["wall"] += time.monotonic() - check_start
        self._finish(spec, "hit", key=key)
        return True

    def _idle_worker(self) -> _Worker | None:
        for worker in self.workers:
            if worker.idle and worker.alive():
                return worker
        for worker in self.workers:
            if worker.idle and not worker.alive():
                return self._respawn(worker)
        if len(self.workers) < self.max_workers:
            worker = _Worker(self.ctx, len(self.workers),
                             str(self.store.root), self.result_q)
            self.workers.append(worker)
            return worker
        return None

    def _respawn(self, worker: _Worker) -> _Worker:
        position = self.workers.index(worker)
        worker.stop(kill=True)
        replacement = _Worker(self.ctx, worker.index, str(self.store.root),
                              self.result_q)
        self.workers[position] = replacement
        return replacement

    def _dispatch_ready(self) -> None:
        still_ready = []
        for job_id in self.ready:
            if job_id in self.outcomes:
                continue  # a late result resolved it while queued for retry
            spec = self.graph.jobs[job_id]
            if self._try_complete_from_store(spec):
                continue
            worker = self._idle_worker()
            if worker is None:
                still_ready.append(job_id)
                continue
            self.attempts[job_id] = self.attempts.get(job_id, 0) + 1
            self._span_for(job_id)
            worker.assign(spec)
            self._emit(FarmJobStarted(
                job_id=job_id, job_kind=spec.kind, worker=worker.index,
                attempt=self.attempts[job_id]))
        self.ready = still_ready

    def _retry_or_fail(self, spec: JobSpec, reason: str) -> None:
        attempts = self.attempts.get(spec.job_id, 0)
        if attempts <= self.retries:
            self._emit(FarmJobRetry(
                job_id=spec.job_id, job_kind=spec.kind, reason=reason,
                next_attempt=attempts + 1))
            self.ready.append(spec.job_id)
        else:
            self._finish(spec, "failed", error=reason)

    # ---------------- supervision ---------------- #

    def _drain_results(self) -> None:
        import queue as queue_mod

        try:
            while True:
                worker_id, job_id, status, key, error, usage = \
                    self.result_q.get(timeout=_POLL_SECONDS)
                for worker in self.workers:
                    if worker.index == worker_id and worker.job is not None \
                            and worker.job.job_id == job_id:
                        worker.release()
                        break
                if job_id in self.outcomes:
                    continue  # late result after a kill/retry resolved it
                self._charge(job_id, usage, worker_id)
                spec = self.graph.jobs[job_id]
                if status == "ok":
                    self._finish(spec, "done", key=key)
                else:
                    self._finish(spec, "failed", error=error)
        except queue_mod.Empty:
            pass

    def _check_workers(self) -> None:
        now = time.monotonic()
        for worker in list(self.workers):
            spec = worker.job
            if spec is None:
                continue
            attempt = self.attempts.get(spec.job_id, 0)
            if not worker.alive():
                elapsed = now - worker.started_at
                worker.release()
                self._respawn(worker)
                if spec.job_id not in self.outcomes:
                    self._charge(spec.job_id,
                                 {"wall": elapsed}, worker.index)
                    reason = f"worker crashed (attempt {attempt})"
                    self._emit(FarmJobCrashed(
                        job_id=spec.job_id, job_kind=spec.kind,
                        reason=reason, attempt=attempt))
                    self._retry_or_fail(spec, reason)
            elif self.timeout and now - worker.started_at > self.timeout:
                elapsed = now - worker.started_at
                worker.release()
                self._respawn(worker)
                if spec.job_id not in self.outcomes:
                    self._charge(spec.job_id,
                                 {"wall": elapsed}, worker.index)
                    self._emit(FarmJobTimeout(
                        job_id=spec.job_id, job_kind=spec.kind,
                        timeout=self.timeout, attempt=attempt))
                    self._retry_or_fail(
                        spec, f"timed out after {self.timeout:g}s "
                        f"(attempt {attempt})")

    # ---------------- live status ---------------- #

    def _live_status(self, complete: bool) -> dict:
        now = time.monotonic()
        running = [
            {
                "job_id": worker.job.job_id,
                "kind": worker.job.kind,
                "worker": worker.index,
                "attempt": self.attempts.get(worker.job.job_id, 0),
                "elapsed": round(now - worker.started_at, 3),
            }
            for worker in self.workers if worker.job is not None
        ]
        done = len(self.outcomes)
        hits = sum(1 for o in self.outcomes.values() if o.status == "hit")
        failed = sum(1 for o in self.outcomes.values()
                     if o.status == "failed")
        busy = len(running)
        return {
            "schema": LIVE_SCHEMA,
            "pid": os.getpid(),
            "updated": time.time(),
            "complete": complete,
            "total": len(self.graph.jobs),
            "done": done,
            "hits": hits,
            "computed": done - hits - failed,
            "failed": failed,
            "hit_ratio": round(hits / done, 4) if done else 0.0,
            "queue": {"ready": len(self.ready),
                      "waiting": len(self.waiting)},
            "workers": {"max": self.max_workers,
                        "spawned": len(self.workers), "busy": busy},
            "utilization": round(busy / self.max_workers, 4),
            "running": sorted(running, key=lambda r: r["worker"]),
            "elapsed": round(now - self._start_mono, 3),
        }

    def _heartbeat(self, complete: bool = False, force: bool = False) -> None:
        if self.heartbeat_path is None:
            return
        now = time.monotonic()
        if not force and not complete and now < self._next_beat:
            return
        self._next_beat = now + self.heartbeat_interval
        status = self._live_status(complete)
        tmp = f"{self.heartbeat_path}.tmp{os.getpid()}"
        try:
            with open(tmp, "w") as handle:
                json.dump(status, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, self.heartbeat_path)
        except OSError:  # pragma: no cover - status is best-effort
            pass

    # ---------------- main loop ---------------- #

    def run(self) -> FarmRunResult:
        start = self._start_mono = time.monotonic()
        if self.tracker is not None:
            self.sweep_span = self.tracker.start(
                "sweep", cat="sweep",
                attrs={"jobs": len(self.graph.jobs),
                       "workers": self.max_workers})
        for job_id, spec in self.graph.jobs.items():
            self._emit(FarmJobScheduled(job_id=job_id, job_kind=spec.kind))
            deps = set(spec.deps)
            if deps:
                self.waiting[job_id] = deps
            else:
                self.ready.append(job_id)
        self._heartbeat(force=True)
        try:
            while len(self.outcomes) < len(self.graph.jobs):
                self._dispatch_ready()
                if len(self.outcomes) == len(self.graph.jobs):
                    break
                self._drain_results()
                self._check_workers()
                self._heartbeat()
        finally:
            for worker in self.workers:
                worker.stop(kill=any(w.job is not None
                                     for w in self.workers))
            self.result_q.close()
            complete = len(self.outcomes) == len(self.graph.jobs)
            if self.tracker is not None:
                failed = sum(1 for o in self.outcomes.values()
                             if o.status == "failed")
                self.tracker.end(
                    self.sweep_span,
                    status="ok" if complete else "aborted",
                    attrs={"done": len(self.outcomes), "failed": failed,
                           "elapsed": round(time.monotonic() - start, 6)})
            self._heartbeat(complete=True, force=True)
        return FarmRunResult(outcomes=self.outcomes,
                             elapsed=time.monotonic() - start)


def run_graph(graph: JobGraph, store: ArtifactStore, jobs: int = 1,
              timeout: float | None = None, retries: int = 1,
              obs=None, tracker: SpanTracker | None = None,
              heartbeat_path=None) -> FarmRunResult:
    """Execute a job graph; never raises for individual cell failures.

    ``jobs`` is the worker-pool width (>= 1; workers spawn lazily, so a
    fully warm run costs no forks). ``timeout`` is per job attempt, in
    seconds (None = unbounded). ``retries`` bounds *extra* attempts
    after a crash or timeout; Python-level exceptions are deterministic
    and fail immediately.

    ``tracker`` enables span recording (the ledger substrate) and
    ``heartbeat_path`` live status publication -- both default off, so
    library users and the overhead gate get the bare scheduler.
    """
    return _GraphRun(graph, store, jobs, timeout, retries, obs=obs,
                     tracker=tracker, heartbeat_path=heartbeat_path).run()
