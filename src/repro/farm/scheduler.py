"""The farm's execution engine: a multiprocessing worker pool with
per-job timeouts, bounded retries, and graceful degradation.

Design:

* The parent owns the job graph. A job becomes *ready* when every
  dependency has completed; ready jobs are first checked against the
  artifact store (a hit completes instantly, no worker involved), then
  dispatched to an idle worker.
* Each worker is a separate process with its own task queue; results
  come back over one shared queue. Workers are spawned lazily -- a
  fully warm re-run never forks at all.
* A worker that dies mid-job (crash, OOM kill) or exceeds the per-job
  timeout is terminated and replaced; the job is retried up to
  ``retries`` extra attempts, then failed. A job that raises a Python
  exception fails immediately (re-running deterministic code cannot
  help). A failed job fails its dependents (``upstream failed``) but
  never the sweep: every other cell still completes.
* Lifecycle events (``farm.scheduled`` / ``farm.started`` /
  ``farm.finished`` / ``farm.failed``) are emitted on an optional
  :class:`repro.obs.events.EventBus`.

Test hooks (used by the crash/timeout regression tests): a worker whose
job id contains ``$REPRO_FARM_TEST_CRASH`` exits hard with ``os._exit``;
one matching ``$REPRO_FARM_TEST_HANG`` sleeps forever (until the
scheduler's timeout kills it).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field

from repro.farm.jobs import JobGraph, JobSpec, artifact_ready, execute_job
from repro.farm.store import ArtifactStore
from repro.obs.events import (
    FarmJobFailed,
    FarmJobFinished,
    FarmJobScheduled,
    FarmJobStarted,
)

_POLL_SECONDS = 0.05


@dataclass
class JobOutcome:
    """Terminal state of one job."""

    job_id: str
    kind: str
    status: str             # 'hit' | 'done' | 'failed'
    key: str | None = None
    error: str | None = None
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.status in ("hit", "done")


@dataclass
class FarmRunResult:
    """Everything one sweep produced, cell by cell."""

    outcomes: dict[str, JobOutcome] = field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def hits(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.status == "hit")

    @property
    def computed(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.status == "done")

    @property
    def failed(self) -> list[JobOutcome]:
        return [o for o in self.outcomes.values() if o.status == "failed"]

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary(self) -> dict:
        """JSON-able run summary (written to ``<store>/runs/last.json``)."""
        return {
            "total": len(self.outcomes),
            "hits": self.hits,
            "computed": self.computed,
            "failed": sorted(o.job_id for o in self.failed),
            "errors": {o.job_id: o.error for o in self.failed},
            "elapsed_seconds": round(self.elapsed, 3),
        }


# ------------------------------------------------------------------ #
# worker side

def _worker_main(worker_id: int, store_root: str, task_q, result_q) -> None:
    store = ArtifactStore(store_root)
    crash = os.environ.get("REPRO_FARM_TEST_CRASH", "")
    hang = os.environ.get("REPRO_FARM_TEST_HANG", "")
    while True:
        spec = task_q.get()
        if spec is None:
            return
        if crash and crash in spec.job_id:
            os._exit(66)
        if hang and hang in spec.job_id:
            time.sleep(3600)
        try:
            key = execute_job(spec, store)
            result_q.put((worker_id, spec.job_id, "ok", key, None))
        except BaseException as exc:  # noqa: BLE001 - reported, not raised
            result_q.put((worker_id, spec.job_id, "error", None,
                          f"{type(exc).__name__}: {exc}"))


class _Worker:
    """One pool slot: process handle, private task queue, in-flight job."""

    def __init__(self, ctx, index: int, store_root: str, result_q):
        self.index = index
        self.task_q = ctx.Queue()
        self.process = ctx.Process(
            target=_worker_main,
            args=(index, store_root, self.task_q, result_q),
            daemon=True,
            name=f"repro-farm-{index}",
        )
        self.process.start()
        self.job: JobSpec | None = None
        self.started_at = 0.0

    @property
    def idle(self) -> bool:
        return self.job is None

    def assign(self, spec: JobSpec) -> None:
        self.job = spec
        self.started_at = time.monotonic()
        self.task_q.put(spec)

    def release(self) -> None:
        self.job = None

    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self, kill: bool = False) -> None:
        if kill and self.process.is_alive():
            self.process.terminate()
        elif self.process.is_alive():
            try:
                self.task_q.put(None)
            except (OSError, ValueError):  # pragma: no cover - queue gone
                pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - stubborn child
            self.process.kill()
            self.process.join(timeout=2.0)
        self.task_q.close()


# ------------------------------------------------------------------ #
# parent side

class _GraphRun:
    def __init__(self, graph: JobGraph, store: ArtifactStore, jobs: int,
                 timeout: float | None, retries: int, obs=None):
        self.graph = graph
        self.store = store
        self.max_workers = max(1, jobs)
        self.timeout = timeout
        self.retries = max(0, retries)
        self.obs = obs
        self.outcomes: dict[str, JobOutcome] = {}
        self.attempts: dict[str, int] = {}
        self.waiting: dict[str, set[str]] = {}
        self.ready: list[str] = []
        self.workers: list[_Worker] = []
        self.ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        self.result_q = self.ctx.Queue()

    # ---------------- events ---------------- #

    def _emit(self, event) -> None:
        if self.obs is not None:
            self.obs.emit(event)

    # ---------------- completion ---------------- #

    def _finish(self, spec: JobSpec, status: str, key: str | None = None,
                error: str | None = None) -> None:
        self.outcomes[spec.job_id] = JobOutcome(
            job_id=spec.job_id, kind=spec.kind, status=status, key=key,
            error=error, attempts=self.attempts.get(spec.job_id, 0),
        )
        if status == "failed":
            self._emit(FarmJobFailed(
                job_id=spec.job_id, job_kind=spec.kind,
                error=error or "unknown",
                attempts=self.attempts.get(spec.job_id, 0)))
        else:
            self._emit(FarmJobFinished(
                job_id=spec.job_id, job_kind=spec.kind,
                cached=(status == "hit")))
        self._propagate(spec.job_id, failed=(status == "failed"))

    def _propagate(self, done_id: str, failed: bool) -> None:
        for job_id, deps in list(self.waiting.items()):
            if done_id not in deps:
                continue
            if failed:
                del self.waiting[job_id]
                spec = self.graph.jobs[job_id]
                self._finish(spec, "failed",
                             error=f"upstream failed: {done_id}")
            else:
                deps.discard(done_id)
                if not deps:
                    del self.waiting[job_id]
                    self.ready.append(job_id)

    # ---------------- dispatch ---------------- #

    def _try_complete_from_store(self, spec: JobSpec) -> bool:
        try:
            key = artifact_ready(spec, self.store)
        except Exception:
            # e.g. an unknown benchmark name: let a worker run the job
            # and report the real error as that cell's failure
            return False
        if key is None:
            return False
        self._finish(spec, "hit", key=key)
        return True

    def _idle_worker(self) -> _Worker | None:
        for worker in self.workers:
            if worker.idle and worker.alive():
                return worker
        for worker in self.workers:
            if worker.idle and not worker.alive():
                return self._respawn(worker)
        if len(self.workers) < self.max_workers:
            worker = _Worker(self.ctx, len(self.workers),
                             str(self.store.root), self.result_q)
            self.workers.append(worker)
            return worker
        return None

    def _respawn(self, worker: _Worker) -> _Worker:
        position = self.workers.index(worker)
        worker.stop(kill=True)
        replacement = _Worker(self.ctx, worker.index, str(self.store.root),
                              self.result_q)
        self.workers[position] = replacement
        return replacement

    def _dispatch_ready(self) -> None:
        still_ready = []
        for job_id in self.ready:
            if job_id in self.outcomes:
                continue  # a late result resolved it while queued for retry
            spec = self.graph.jobs[job_id]
            if self._try_complete_from_store(spec):
                continue
            worker = self._idle_worker()
            if worker is None:
                still_ready.append(job_id)
                continue
            self.attempts[job_id] = self.attempts.get(job_id, 0) + 1
            worker.assign(spec)
            self._emit(FarmJobStarted(
                job_id=job_id, job_kind=spec.kind, worker=worker.index,
                attempt=self.attempts[job_id]))
        self.ready = still_ready

    def _retry_or_fail(self, spec: JobSpec, reason: str) -> None:
        if self.attempts.get(spec.job_id, 0) <= self.retries:
            self.ready.append(spec.job_id)
        else:
            self._finish(spec, "failed", error=reason)

    # ---------------- supervision ---------------- #

    def _drain_results(self) -> None:
        import queue as queue_mod

        try:
            while True:
                worker_id, job_id, status, key, error = \
                    self.result_q.get(timeout=_POLL_SECONDS)
                for worker in self.workers:
                    if worker.index == worker_id and worker.job is not None \
                            and worker.job.job_id == job_id:
                        worker.release()
                        break
                if job_id in self.outcomes:
                    continue  # late result after a kill/retry resolved it
                spec = self.graph.jobs[job_id]
                if status == "ok":
                    self._finish(spec, "done", key=key)
                else:
                    self._finish(spec, "failed", error=error)
        except queue_mod.Empty:
            pass

    def _check_workers(self) -> None:
        now = time.monotonic()
        for worker in list(self.workers):
            spec = worker.job
            if spec is None:
                continue
            if not worker.alive():
                worker.release()
                self._respawn(worker)
                if spec.job_id not in self.outcomes:
                    self._retry_or_fail(
                        spec, "worker crashed "
                        f"(attempt {self.attempts.get(spec.job_id, 0)})")
            elif self.timeout and now - worker.started_at > self.timeout:
                worker.release()
                self._respawn(worker)
                if spec.job_id not in self.outcomes:
                    self._retry_or_fail(
                        spec, f"timed out after {self.timeout:g}s "
                        f"(attempt {self.attempts.get(spec.job_id, 0)})")

    # ---------------- main loop ---------------- #

    def run(self) -> FarmRunResult:
        start = time.monotonic()
        for job_id, spec in self.graph.jobs.items():
            self._emit(FarmJobScheduled(job_id=job_id, job_kind=spec.kind))
            deps = set(spec.deps)
            if deps:
                self.waiting[job_id] = deps
            else:
                self.ready.append(job_id)
        try:
            while len(self.outcomes) < len(self.graph.jobs):
                self._dispatch_ready()
                if len(self.outcomes) == len(self.graph.jobs):
                    break
                self._drain_results()
                self._check_workers()
        finally:
            for worker in self.workers:
                worker.stop(kill=any(w.job is not None
                                     for w in self.workers))
            self.result_q.close()
        return FarmRunResult(outcomes=self.outcomes,
                             elapsed=time.monotonic() - start)


def run_graph(graph: JobGraph, store: ArtifactStore, jobs: int = 1,
              timeout: float | None = None, retries: int = 1,
              obs=None) -> FarmRunResult:
    """Execute a job graph; never raises for individual cell failures.

    ``jobs`` is the worker-pool width (>= 1; workers spawn lazily, so a
    fully warm run costs no forks). ``timeout`` is per job attempt, in
    seconds (None = unbounded). ``retries`` bounds *extra* attempts
    after a crash or timeout; Python-level exceptions are deterministic
    and fail immediately.
    """
    return _GraphRun(graph, store, jobs, timeout, retries, obs).run()
