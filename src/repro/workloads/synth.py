"""Synthetic address-stream generators.

These produce (base, offset, is_register) access streams with controlled
statistics — base alignment, offset magnitude distribution, negative
fraction — so the predictor can be characterized *analytically*, without
a compiler or simulator in the loop. The Section 4 software support is,
in these terms, a shift of the base-alignment distribution; the
generators let the benchmarks quantify exactly how much each bit of
alignment buys.

Deterministic: every generator takes a seed and uses its own xorshift
state, so results are reproducible across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.utils.bits import MASK32


class _XorShift:
    def __init__(self, seed: int):
        self._state = (seed or 1) & MASK32

    def next(self) -> int:
        x = self._state
        x ^= (x << 13) & MASK32
        x ^= x >> 17
        x ^= (x << 5) & MASK32
        self._state = x
        return x

    def below(self, bound: int) -> int:
        return self.next() % bound


@dataclass(frozen=True)
class StreamSpec:
    """Parameters of one synthetic access stream.

    ``base_align_bits``: every base value is a multiple of
    ``2**base_align_bits`` (plus ``base_jitter`` random low bits kept
    *below* the alignment when ``base_jitter`` is False).
    ``max_offset_bits``: offsets are drawn uniformly in
    ``[0, 2**max_offset_bits)``.
    ``zero_offset_pct``: percent of accesses forced to offset zero
    (strength-reduced induction loads).
    ``negative_pct``: percent of offsets negated (small negative
    constants).
    ``register_pct``: percent of accesses using register offsets.
    """

    base_align_bits: int = 3
    max_offset_bits: int = 8
    zero_offset_pct: int = 30
    negative_pct: int = 0
    register_pct: int = 0
    base_region: int = 0x10000000
    seed: int = 0xFACC


def generate(spec: StreamSpec, count: int) -> Iterator[tuple[int, int, bool]]:
    """Yield ``count`` accesses as ``(base, offset, is_register)``."""
    rng = _XorShift(spec.seed)
    align_mask = ~((1 << spec.base_align_bits) - 1) & MASK32
    for __ in range(count):
        base = (spec.base_region + rng.below(1 << 20)) & align_mask
        if rng.below(100) < spec.zero_offset_pct:
            offset = 0
        else:
            offset = rng.below(1 << spec.max_offset_bits)
            if offset and rng.below(100) < spec.negative_pct:
                offset = -offset
        is_register = rng.below(100) < spec.register_pct
        yield base, offset, is_register


def failure_rate(spec: StreamSpec, count: int = 20000,
                 cache_size: int = 16 * 1024, block_size: int = 32) -> float:
    """Fraction of the stream the predictor mispredicts."""
    from repro.fac.config import FacConfig
    from repro.fac.predictor import FastAddressCalculator

    predictor = FastAddressCalculator(
        FacConfig(cache_size=cache_size, block_size=block_size))
    failures = 0
    for base, offset, is_register in generate(spec, count):
        if not predictor.predict(base, offset, is_register).success:
            failures += 1
    return failures / count if count else 0.0


def alignment_sweep(max_offset_bits: int = 8, align_range: range = range(0, 15),
                    count: int = 20000) -> list[tuple[int, float]]:
    """Failure rate as a function of base alignment — the quantitative
    content of the paper's Section 4: once the base is aligned past the
    offset width, carry-free addition cannot fail."""
    results = []
    for bits in align_range:
        spec = StreamSpec(base_align_bits=bits,
                          max_offset_bits=max_offset_bits,
                          zero_offset_pct=0, seed=0xA11C + bits)
        results.append((bits, failure_rate(spec, count)))
    return results
