"""The 19-program benchmark suite (MiniC kernels named for the paper's
SPEC92 + Unix benchmark set)."""

from repro.workloads.suite import (
    BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    Benchmark,
    build_benchmark,
    load_source,
)
from repro.workloads.synth import StreamSpec, alignment_sweep, failure_rate, generate

__all__ = [
    "BENCHMARKS",
    "INT_BENCHMARKS",
    "FP_BENCHMARKS",
    "Benchmark",
    "build_benchmark",
    "load_source",
    "StreamSpec",
    "alignment_sweep",
    "failure_rate",
    "generate",
]
