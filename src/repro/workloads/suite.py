"""Benchmark registry and build helpers.

Each entry names a paper benchmark (Table 2) and points at the MiniC
kernel that reproduces its *addressing personality* -- the reference-type
mix and offset profile that drive fast-address-calculation behaviour.
Full SPEC92 runs are far beyond a pure-Python cycle simulator, so the
kernels are scaled to tens of thousands of dynamic instructions; see
DESIGN.md ("Substitutions") for the fidelity argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from repro.compiler import CompilerOptions, FacSoftwareOptions, compile_and_link
from repro.isa.program import Program

_PROGRAM_DIR = Path(__file__).parent / "programs"


@dataclass(frozen=True)
class Benchmark:
    """One suite entry."""

    name: str
    category: str          # 'int' or 'fp'
    description: str
    expected_output: str   # stdout of a correct run (any options)


BENCHMARKS: dict[str, Benchmark] = {}


def _register(name: str, category: str, description: str, expected: str) -> None:
    BENCHMARKS[name] = Benchmark(name, category, description, expected)


_register("compress", "int", "LZW-style adaptive compression over a generated buffer",
          "codes=718 hash=46319\n")
_register("eqntott", "int", "truth-table term comparison and insertion sort",
          "sig=12703337\n")
_register("espresso", "int", "boolean cube containment and cofactoring over bitsets",
          "covered=0 sig=14088487\n")
_register("gcc", "int", "expression-tree building/folding with an obstack allocator",
          "nodes=680 walked=680 folds=335 sig=9441728\n")
_register("sc", "int", "spreadsheet recalculation with recursive formula evaluation",
          "evals=4536 sig=9528570\n")
_register("xlisp", "int", "cons-cell list workload with mark/sweep collection",
          "allocs=1733 collected=1197 sig=8007430\n")
_register("elvis", "int", "batch editor: global search and replace on a text buffer",
          "replaced=219 words=406 sig=7568920\n")
_register("grep", "int", "DFA regular-expression matching over generated text",
          "matches=353 sig=7644874\n")
_register("perl", "int", "bytecode interpreter with value stack and hash table",
          "executed=1536 sp=31 sig=5792470\n")
_register("yacr2", "int", "channel routing with track occupancy matrices",
          "routed=96 conflicts=0 sig=6113014\n")
_register("alvinn", "fp", "back-propagation network: dense double dot products",
          "sig=397010\n")
_register("doduc", "fp", "Monte Carlo thermohydraulics with many global scalars",
          "steps=30 sig=50803\n")
_register("ear", "fp", "cochlear filter bank: cascaded IIR sections",
          "sig=15335\n")
_register("mdljdp2", "fp", "molecular dynamics, parallel coordinate arrays",
          "pairs=210 sig=93065\n")
_register("mdljsp2", "fp", "molecular dynamics, array-of-structures layout",
          "inter=944 sig=1248\n")
_register("ora", "fp", "optical ray tracing: scalar FP dependence chains",
          "rays=300 sig=49839\n")
_register("spice", "fp", "sparse Gauss-Seidel solver with index-array gathers",
          "nnz=259 sig=16058\n")
_register("su2cor", "fp", "lattice sweeps with computed neighbour indices",
          "sig=132562\n")
_register("tomcatv", "fp", "mesh relaxation with flattened 2D subscripts",
          "sig=1522\n")

INT_BENCHMARKS = tuple(n for n, b in BENCHMARKS.items() if b.category == "int")
FP_BENCHMARKS = tuple(n for n, b in BENCHMARKS.items() if b.category == "fp")


def load_source(name: str) -> str:
    """Read the MiniC source of benchmark ``name``."""
    if name not in BENCHMARKS:
        raise KeyError(f"unknown benchmark {name!r}")
    return (_PROGRAM_DIR / f"{name}.mc").read_text()


@lru_cache(maxsize=64)
def _build_cached(name: str, software_support: bool) -> Program:
    options = CompilerOptions()
    if software_support:
        options = options.with_fac(FacSoftwareOptions.enabled())
    return compile_and_link(load_source(name), options)


def build_benchmark(
    name: str,
    software_support: bool = False,
    options: CompilerOptions | None = None,
) -> Program:
    """Compile + link one benchmark.

    ``software_support`` selects the paper's Section 4 compiler/linker
    support; pass explicit ``options`` to override entirely (uncached).
    """
    if options is not None:
        return compile_and_link(load_source(name), options)
    return _build_cached(name, software_support)
