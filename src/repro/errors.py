"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class AssemblerError(ReproError):
    """Malformed assembly source (bad mnemonic, operand, or directive)."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EncodingError(ReproError):
    """An instruction cannot be encoded to (or decoded from) 32 bits."""


class LinkError(ReproError):
    """Symbol resolution or segment placement failed."""


class CompileError(ReproError):
    """MiniC front-end or code-generation failure."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        if line is not None:
            where = f"line {line}" + (f", col {col}" if col is not None else "")
            message = f"{where}: {message}"
        super().__init__(message)


class SimulationError(ReproError):
    """The functional or timing simulator hit an illegal condition."""


class MemoryFault(SimulationError):
    """Unmapped or misaligned access detected by the simulated memory."""

    def __init__(self, address: int, reason: str = "unmapped"):
        self.address = address
        self.reason = reason
        super().__init__(f"memory fault at 0x{address:08x}: {reason}")


class ConfigError(ReproError):
    """Invalid machine or cache configuration."""
