"""Cache-hierarchy substrates: caches, the store buffer, and a data TLB."""

from repro.cache.cache import Cache, CacheConfig
from repro.cache.storebuffer import StoreBuffer
from repro.cache.tlb import TLB

__all__ = ["Cache", "CacheConfig", "StoreBuffer", "TLB"]
