"""Set-associative cache model with write-back / write-allocate policy.

The model tracks tags, valid and dirty bits, and LRU state; data values
live in the simulated :class:`~repro.mem.memory.Memory` (timing and
contents are decoupled, as in trace-driven simulators). The baseline
machine of Table 5 uses 16 KB direct-mapped caches with 32-byte blocks
and a 6-cycle miss latency.

Statistics live in :mod:`repro.obs.metrics` containers (the uniform
``as_dict()``/``merge()`` protocol); pass an
:class:`~repro.obs.events.EventBus` as ``obs`` to stream per-access
:class:`~repro.obs.events.CacheAccess` events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.obs.events import CacheAccess
from repro.obs.metrics import Counter, RatioStat
from repro.utils.bits import is_pow2, log2_exact


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache."""

    size: int = 16 * 1024
    block_size: int = 32
    assoc: int = 1
    miss_latency: int = 6
    write_back: bool = True
    write_allocate: bool = True
    name: str = "cache"

    def __post_init__(self):
        if not is_pow2(self.size) or not is_pow2(self.block_size):
            raise ConfigError("cache size and block size must be powers of two")
        if not is_pow2(self.assoc) or self.assoc < 1:
            raise ConfigError("associativity must be a positive power of two")
        if self.size % (self.block_size * self.assoc) != 0:
            raise ConfigError("size must be a multiple of block_size * assoc")

    @property
    def num_sets(self) -> int:
        return self.size // (self.block_size * self.assoc)

    @property
    def offset_bits(self) -> int:
        return log2_exact(self.block_size)

    @property
    def index_bits(self) -> int:
        return log2_exact(self.num_sets)


class Cache:
    """Tag store with hit/miss and write-back accounting."""

    def __init__(self, config: CacheConfig | None = None, obs=None):
        self.config = config or CacheConfig()
        cfg = self.config
        self.obs = obs
        self._offset_bits = cfg.offset_bits
        self._index_bits = cfg.index_bits
        self._index_mask = cfg.num_sets - 1
        self._assoc = cfg.assoc
        # Per set: list of [tag, dirty] entries ordered most-recent first.
        self._sets: list[list[list]] = [[] for _ in range(cfg.num_sets)]
        self._accesses = RatioStat(f"{cfg.name}.accesses")  # hit = True
        self._writebacks = Counter(f"{cfg.name}.writebacks")
        self._reads = Counter(f"{cfg.name}.reads")
        self._writes = Counter(f"{cfg.name}.writes")

    # ------------------------------------------------------------------ #

    def _locate(self, address: int) -> tuple[int, int]:
        block = address >> self._offset_bits
        return block & self._index_mask, block >> self._index_bits

    def probe(self, address: int) -> bool:
        """Non-destructive lookup: would this access hit?"""
        index, tag = self._locate(address)
        return any(entry[0] == tag for entry in self._sets[index])

    def access(self, address: int, is_write: bool = False) -> bool:
        """Perform one access; returns True on hit.

        On a miss the block is filled (allocated on writes too, per the
        write-allocate policy); a dirty eviction increments
        ``writebacks``.
        """
        (self._writes if is_write else self._reads).incr()
        index, tag = self._locate(address)
        entries = self._sets[index]
        for position, entry in enumerate(entries):
            if entry[0] == tag:
                self._accesses.record(True)
                if is_write:
                    entry[1] = True
                if position != 0:
                    entries.insert(0, entries.pop(position))
                if self.obs is not None:
                    self.obs.emit(CacheAccess(
                        level=self.config.name, address=address,
                        is_write=is_write, hit=True,
                        evicted=False, writeback=False,
                    ))
                return True
        self._accesses.record(False)
        evicted = False
        writeback = False
        if not (is_write and not self.config.write_allocate):
            if len(entries) >= self._assoc:
                victim = entries.pop()
                evicted = True
                if victim[1]:
                    writeback = True
                    self._writebacks.incr()
            entries.insert(0, [tag, is_write and self.config.write_back])
        if self.obs is not None:
            self.obs.emit(CacheAccess(
                level=self.config.name, address=address,
                is_write=is_write, hit=False,
                evicted=evicted, writeback=writeback,
            ))
        return False

    def invalidate_all(self) -> None:
        self._sets = [[] for _ in range(self.config.num_sets)]

    # ------------------------------------------------------------------ #
    # statistics (metrics-protocol containers with legacy accessors)

    @property
    def hits(self) -> int:
        return self._accesses.hits

    @property
    def misses(self) -> int:
        return self._accesses.misses

    @property
    def writebacks(self) -> int:
        return self._writebacks.count

    @property
    def read_accesses(self) -> int:
        return self._reads.count

    @property
    def write_accesses(self) -> int:
        return self._writes.count

    @property
    def accesses(self) -> int:
        return self._accesses.total

    @property
    def miss_ratio(self) -> float:
        return self._accesses.miss_ratio

    def metrics(self) -> dict[str, object]:
        """The stat containers, keyed by metric path."""
        return {
            metric.name: metric
            for metric in (self._accesses, self._writebacks,
                           self._reads, self._writes)
        }

    def as_dict(self) -> dict:
        """Uniform protocol: every stat container, serialized."""
        return {name: metric.as_dict()
                for name, metric in sorted(self.metrics().items())}

    def merge_stats(self, other: "Cache") -> None:
        """Absorb another cache's counters (sharded-run aggregation)."""
        self._accesses.merge(other._accesses)
        self._writebacks.merge(other._writebacks)
        self._reads.merge(other._reads)
        self._writes.merge(other._writes)

    def reset_stats(self) -> None:
        self._accesses.reset()
        self._writebacks.reset()
        self._reads.reset()
        self._writes.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        cfg = self.config
        return (
            f"<Cache {cfg.name} {cfg.size >> 10}k {cfg.assoc}-way "
            f"{cfg.block_size}B miss_ratio={self.miss_ratio:.4f}>"
        )
