"""Set-associative cache model with write-back / write-allocate policy.

The model tracks tags, valid and dirty bits, and LRU state; data values
live in the simulated :class:`~repro.mem.memory.Memory` (timing and
contents are decoupled, as in trace-driven simulators). The baseline
machine of Table 5 uses 16 KB direct-mapped caches with 32-byte blocks
and a 6-cycle miss latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.utils.bits import is_pow2, log2_exact


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache."""

    size: int = 16 * 1024
    block_size: int = 32
    assoc: int = 1
    miss_latency: int = 6
    write_back: bool = True
    write_allocate: bool = True
    name: str = "cache"

    def __post_init__(self):
        if not is_pow2(self.size) or not is_pow2(self.block_size):
            raise ConfigError("cache size and block size must be powers of two")
        if not is_pow2(self.assoc) or self.assoc < 1:
            raise ConfigError("associativity must be a positive power of two")
        if self.size % (self.block_size * self.assoc) != 0:
            raise ConfigError("size must be a multiple of block_size * assoc")

    @property
    def num_sets(self) -> int:
        return self.size // (self.block_size * self.assoc)

    @property
    def offset_bits(self) -> int:
        return log2_exact(self.block_size)

    @property
    def index_bits(self) -> int:
        return log2_exact(self.num_sets)


class Cache:
    """Tag store with hit/miss and write-back accounting."""

    def __init__(self, config: CacheConfig | None = None):
        self.config = config or CacheConfig()
        cfg = self.config
        self._offset_bits = cfg.offset_bits
        self._index_mask = cfg.num_sets - 1
        self._assoc = cfg.assoc
        # Per set: list of [tag, dirty] entries ordered most-recent first.
        self._sets: list[list[list]] = [[] for _ in range(cfg.num_sets)]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.read_accesses = 0
        self.write_accesses = 0

    # ------------------------------------------------------------------ #

    def _locate(self, address: int) -> tuple[int, int]:
        block = address >> self._offset_bits
        return block & self._index_mask, block >> self.config.index_bits

    def probe(self, address: int) -> bool:
        """Non-destructive lookup: would this access hit?"""
        index, tag = self._locate(address)
        return any(entry[0] == tag for entry in self._sets[index])

    def access(self, address: int, is_write: bool = False) -> bool:
        """Perform one access; returns True on hit.

        On a miss the block is filled (allocated on writes too, per the
        write-allocate policy); a dirty eviction increments
        ``writebacks``.
        """
        if is_write:
            self.write_accesses += 1
        else:
            self.read_accesses += 1
        index, tag = self._locate(address)
        entries = self._sets[index]
        for position, entry in enumerate(entries):
            if entry[0] == tag:
                self.hits += 1
                if is_write:
                    entry[1] = True
                if position != 0:
                    entries.insert(0, entries.pop(position))
                return True
        self.misses += 1
        if is_write and not self.config.write_allocate:
            return False
        if len(entries) >= self._assoc:
            victim = entries.pop()
            if victim[1]:
                self.writebacks += 1
        entries.insert(0, [tag, is_write and self.config.write_back])
        return False

    def invalidate_all(self) -> None:
        self._sets = [[] for _ in range(self.config.num_sets)]

    # ------------------------------------------------------------------ #

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.read_accesses = 0
        self.write_accesses = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        cfg = self.config
        return (
            f"<Cache {cfg.name} {cfg.size >> 10}k {cfg.assoc}-way "
            f"{cfg.block_size}B miss_ratio={self.miss_ratio:.4f}>"
        )
