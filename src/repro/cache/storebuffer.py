"""The 16-entry non-merging store buffer of Table 5.

Stores are serviced in two cycles: the first probes the tags, and the
stored data retires to the data cache later, during cycles in which the
cache is otherwise unused. If a store executes while the buffer is full,
the pipeline stalls and the oldest entry is forcibly retired.

With fast address calculation, a store enters the buffer with its
*speculative* address; if the prediction was wrong the entry's address is
simply updated in the following cycle (Section 3.1: "the store buffer
entry can simply be reclaimed or invalidated if the effective address is
incorrect").
"""

from __future__ import annotations

from collections import deque

from repro.obs.events import StoreBufferFullStall, StoreBufferInsert
from repro.obs.metrics import Counter


class StoreBufferEntry:
    __slots__ = ("address", "ready_cycle")

    def __init__(self, address: int, ready_cycle: int):
        self.address = address
        self.ready_cycle = ready_cycle


class StoreBuffer:
    """FIFO of pending stores awaiting a free cache cycle."""

    def __init__(self, capacity: int = 16, obs=None):
        self.capacity = capacity
        self.obs = obs
        self.entries: deque[StoreBufferEntry] = deque()
        self._inserts = Counter("sb.inserts")
        self._full_stalls = Counter("sb.full_stalls")
        self._retires = Counter("sb.retires")
        self._address_fixups = Counter("sb.address_fixups")

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def insert(self, address: int, cycle: int) -> StoreBufferEntry:
        """Add a store; caller must have ensured space (or stalled)."""
        entry = StoreBufferEntry(address, cycle + 1)
        self.entries.append(entry)
        self._inserts.incr()
        if self.obs is not None:
            self.obs.emit(StoreBufferInsert(cycle=cycle,
                                            occupancy=len(self.entries)))
        return entry

    def fixup_address(self, entry: StoreBufferEntry, address: int) -> None:
        """Replace a misspeculated address (FAC replay path)."""
        entry.address = address
        self._address_fixups.incr()

    def retire_one(self, cycle: int) -> StoreBufferEntry | None:
        """Retire the oldest ready entry, if any; returns it."""
        if self.entries and self.entries[0].ready_cycle <= cycle:
            self._retires.incr()
            return self.entries.popleft()
        return None

    def note_full_stall(self, cycle: int = 0) -> None:
        self._full_stalls.incr()
        if self.obs is not None:
            self.obs.emit(StoreBufferFullStall(cycle=cycle))

    # ------------------------------------------------------------------ #
    # statistics (metrics-protocol containers with legacy accessors)

    @property
    def inserts(self) -> int:
        return self._inserts.count

    @property
    def full_stalls(self) -> int:
        return self._full_stalls.count

    @property
    def retires(self) -> int:
        return self._retires.count

    @property
    def address_fixups(self) -> int:
        return self._address_fixups.count

    def as_dict(self) -> dict:
        """Uniform metrics protocol (see :mod:`repro.obs.metrics`)."""
        counters = (self._inserts, self._full_stalls, self._retires,
                    self._address_fixups)
        return {c.name: c.as_dict() for c in counters}

    def merge_stats(self, other: "StoreBuffer") -> None:
        self._inserts.merge(other._inserts)
        self._full_stalls.merge(other._full_stalls)
        self._retires.merge(other._retires)
        self._address_fixups.merge(other._address_fixups)

    def drain_pending(self) -> int:
        """Number of entries still buffered (end-of-run accounting)."""
        return len(self.entries)
