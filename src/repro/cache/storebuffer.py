"""The 16-entry non-merging store buffer of Table 5.

Stores are serviced in two cycles: the first probes the tags, and the
stored data retires to the data cache later, during cycles in which the
cache is otherwise unused. If a store executes while the buffer is full,
the pipeline stalls and the oldest entry is forcibly retired.

With fast address calculation, a store enters the buffer with its
*speculative* address; if the prediction was wrong the entry's address is
simply updated in the following cycle (Section 3.1: "the store buffer
entry can simply be reclaimed or invalidated if the effective address is
incorrect").
"""

from __future__ import annotations

from collections import deque


class StoreBufferEntry:
    __slots__ = ("address", "ready_cycle")

    def __init__(self, address: int, ready_cycle: int):
        self.address = address
        self.ready_cycle = ready_cycle


class StoreBuffer:
    """FIFO of pending stores awaiting a free cache cycle."""

    def __init__(self, capacity: int = 16):
        self.capacity = capacity
        self.entries: deque[StoreBufferEntry] = deque()
        self.inserts = 0
        self.full_stalls = 0
        self.retires = 0
        self.address_fixups = 0

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def insert(self, address: int, cycle: int) -> StoreBufferEntry:
        """Add a store; caller must have ensured space (or stalled)."""
        entry = StoreBufferEntry(address, cycle + 1)
        self.entries.append(entry)
        self.inserts += 1
        return entry

    def fixup_address(self, entry: StoreBufferEntry, address: int) -> None:
        """Replace a misspeculated address (FAC replay path)."""
        entry.address = address
        self.address_fixups += 1

    def retire_one(self, cycle: int) -> StoreBufferEntry | None:
        """Retire the oldest ready entry, if any; returns it."""
        if self.entries and self.entries[0].ready_cycle <= cycle:
            self.retires += 1
            return self.entries.popleft()
        return None

    def note_full_stall(self) -> None:
        self.full_stalls += 1

    def drain_pending(self) -> int:
        """Number of entries still buffered (end-of-run accounting)."""
        return len(self.entries)
