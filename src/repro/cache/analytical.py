"""Analytical cache model from reuse (stack-distance) profiles.

Computes LRU reuse profiles of an address stream once and then answers
miss ratios for whole (capacity, block size, associativity) sweeps in
milliseconds -- no replay. The approach follows "A Fast Analytical
Model of Fully Associative Caches" (Gysi et al., PLDI 2019, see
PAPERS.md): a reuse profile -- the histogram of LRU stack distances --
determines the miss ratio of *every* fully-associative capacity at
once, because an access hits iff its distance is below the capacity.

Two estimators extend this to set-associative geometries:

* ``"profile"`` (the default) partitions the stream by actual set
  index and computes *per-set* stack distances -- one cached
  O(N log^2 N) pass per distinct ``(block_size, num_sets)`` family,
  after which every capacity/associativity in that family is a
  histogram fold. This is **exact**: it reproduces the reference
  :class:`~repro.cache.cache.Cache` bit for bit (the validation grid
  asserts it), just without replaying anything per geometry.
* ``"uniform"`` answers every geometry from the single
  fully-associative profile by assuming intervening blocks map to sets
  uniformly: a reuse at distance ``d`` conflicts in an ``S``-set,
  ``A``-way cache with probability ``P[Binom(d, 1/S) >= A]``. One
  profile, any geometry -- but the uniformity assumption is *wrong*
  for strided streams whose blocks alias systematically (compress's
  hash table misses 38% of a 16K direct-mapped cache where the uniform
  estimate says 7%), which is exactly what
  :class:`AnalyticalModelError` exists to catch.

:func:`validate_model` sweeps a geometry grid against replaying the
exact :class:`Cache` and raises :class:`AnalyticalModelError` beyond
the 2% absolute tolerance the acceptance gate fixes; the suite test
runs it with the default estimator (errors ~0), and the violation path
is covered by running the ``uniform`` estimator on a conflict-heavy
stream.

Stack distances themselves are exact and vectorized: an O(N log^2 N)
offline dominance count (binary-indexed decomposition, one sort plus
one batched ``searchsorted`` per bit level) rather than a per-access
balanced tree.
"""

from __future__ import annotations

# coltrace first: it owns the friendly "numpy is a declared runtime
# dependency" ImportError for environments missing numpy
import repro.cpu.coltrace  # noqa: F401

import numpy as np

from repro.cache.cache import Cache, CacheConfig

#: Block sizes of the ``repro explain --sweep`` / Figure 5 style sweep.
SWEEP_BLOCK_SIZES = (8, 16, 32, 64, 128)

#: Acceptance tolerance: absolute miss-ratio error vs the exact Cache.
DEFAULT_TOLERANCE = 0.02


class AnalyticalModelError(AssertionError):
    """The model strayed outside tolerance against the exact simulator."""

    def __init__(self, violations):
        self.violations = violations
        lines = [
            f"  cache_size={v['cache_size']} block_size={v['block_size']} "
            f"assoc={v['assoc']}: model {v['model']:.4f} "
            f"exact {v['exact']:.4f} (|err| {v['error']:.4f})"
            for v in violations
        ]
        super().__init__(
            "analytical model outside tolerance on "
            f"{len(violations)} grid point(s):\n" + "\n".join(lines))


# ------------------------------------------------------------------ #
# exact stack distances

def stack_distances(blocks: np.ndarray) -> np.ndarray:
    """Exact LRU stack distance per access of a block-id stream.

    ``out[i]`` is the number of *distinct other* blocks touched since
    the previous access to ``blocks[i]``, or -1 for a cold (first)
    access. A fully-associative LRU cache of capacity ``C`` therefore
    misses access ``i`` iff ``out[i] == -1 or out[i] >= C``.

    With ``prev[i]`` the previous occurrence of ``blocks[i]``, the
    distance is the number of first-in-window accesses between them:
    ``#{k in (prev[i], i) : prev[k] <= prev[i]}``, a 2-D dominance
    count solved offline by binary decomposition of each query index
    into aligned levels -- per level, one sort of ``prev`` keyed by
    aligned block plus one batched ``searchsorted``.
    """
    blocks = np.asarray(blocks, dtype=np.int64)
    n = len(blocks)
    out = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return out

    order = np.argsort(blocks, kind="stable")
    sorted_blocks = blocks[order]
    prev = np.full(n, -1, dtype=np.int64)
    same = sorted_blocks[1:] == sorted_blocks[:-1]
    prev[order[1:][same]] = order[:-1][same]

    queries = np.flatnonzero(prev >= 0)
    if len(queries) == 0:
        return out
    counts = np.zeros(len(queries), dtype=np.int64)
    big = np.int64(n + 2)
    position = np.arange(n, dtype=np.int64)
    for level in range(max(1, n.bit_length())):
        bit = np.int64(1) << level
        hit = (queries & bit) != 0
        if not hit.any():
            continue
        # prev values grouped by aligned level-`level` block, sorted
        # within each group; queried blocks lie strictly below the
        # query index so they are always full.
        aug = np.sort(prev + (position >> level) * big)
        qi = queries[hit]
        block_j = (qi >> level) - 1
        pos = np.searchsorted(aug, block_j * big + prev[qi], side="right")
        counts[hit] += pos - (block_j << level)
    out[queries] = counts - (prev[queries] + 1)
    return out


def exact_lru_misses(addresses: np.ndarray, *, block_size: int,
                     cache_size: int, assoc: int) -> int:
    """Exact miss count of a set-associative LRU cache, vectorized.

    A stable sort by set index makes each set's access stream
    contiguous while preserving time order, so one
    :func:`stack_distances` pass over the reordered stream yields
    *per-set* distances (blocks never alias across sets); an access
    misses iff cold or its distance reaches the associativity.
    Bit-for-bit equal to replaying :class:`~repro.cache.cache.Cache`.
    """
    if len(addresses) == 0:
        return 0
    offset_bits = (block_size - 1).bit_length()
    num_sets = cache_size // (block_size * assoc)
    block = np.asarray(addresses, dtype=np.int64) >> offset_bits
    if num_sets > 1:
        sets = block & (num_sets - 1)
        block = block[np.argsort(sets, kind="stable")]
    dist = stack_distances(block)
    return int(((dist < 0) | (dist >= assoc)).sum())


# ------------------------------------------------------------------ #
# the analytical model

def _binomial_miss_probability(distances: np.ndarray, num_sets: int,
                               assoc: int) -> np.ndarray:
    """``P[Binom(d, 1/S) >= A]`` per distance -- the probability that a
    reuse at fully-associative distance ``d`` became a conflict miss,
    under the uniform set-mapping assumption."""
    d = distances.astype(np.float64)
    p = 1.0 / num_sets
    q = 1.0 - p
    # CDF up to A-1 by the term recurrence C(d,k) p^k q^(d-k)
    term = np.power(q, d)
    cdf = term.copy()
    for k in range(assoc - 1):
        term = term * (d - k) / (k + 1) * (p / q)
        cdf += term
    miss = 1.0 - cdf
    # d < A cannot conflict; make the zero exact, not fp residue
    miss[distances < assoc] = 0.0
    return np.clip(miss, 0.0, 1.0)


class AnalyticalCacheModel:
    """Reuse-profile cache model over one effective-address stream.

    Construct once per trace (e.g. from ``TraceColumns.ea[is_mem]``).
    Profiles are computed lazily and cached per ``(block_size,
    num_sets)`` family -- within a family every capacity and
    associativity is answered by one histogram fold, so a whole sweep
    costs a handful of sort passes total.
    """

    def __init__(self, addresses):
        self._addresses = np.ascontiguousarray(addresses, dtype=np.int64)
        # (block_size, num_sets) -> (distance values, counts, cold, total)
        self._profiles: dict[tuple[int, int], tuple] = {}

    @property
    def accesses(self) -> int:
        return len(self._addresses)

    def _profile(self, block_size: int, num_sets: int = 1):
        """Stack-distance histogram of the stream partitioned into
        ``num_sets`` sets (1 = the fully-associative reuse profile)."""
        key = (block_size, num_sets)
        cached = self._profiles.get(key)
        if cached is None:
            offset_bits = (block_size - 1).bit_length()
            block = self._addresses >> offset_bits
            if num_sets > 1:
                sets = block & (num_sets - 1)
                block = block[np.argsort(sets, kind="stable")]
            dist = stack_distances(block)
            cold = int((dist < 0).sum())
            values, counts = np.unique(dist[dist >= 0], return_counts=True)
            cached = self._profiles[key] = (values, counts, cold, len(dist))
        return cached

    def miss_ratio(self, cache_size: int, block_size: int = 32,
                   assoc: int = 1, estimator: str = "profile") -> float:
        """Predicted miss ratio at one geometry.

        ``estimator="profile"`` (default) folds the exact per-set
        profile for this geometry's family. ``estimator="uniform"``
        extrapolates from the single fully-associative profile with the
        binomial set-mapping assumption -- cheaper across families but
        only as good as that assumption (see module docstring).
        """
        num_sets = cache_size // (block_size * assoc)
        if estimator == "profile":
            profile_sets = max(num_sets, 1)
            values, counts, cold, total = self._profile(block_size,
                                                        profile_sets)
            if total == 0:
                return 0.0
            conflict = int(counts[values >= assoc].sum())
            # same fp expression as exact_miss_ratio: bit-identical zeros
            return 1.0 - (total - (cold + conflict)) / total
        if estimator != "uniform":
            raise ValueError(
                f"unknown estimator {estimator!r}; "
                "choose 'profile' or 'uniform'")
        values, counts, cold, total = self._profile(block_size, 1)
        if total == 0:
            return 0.0
        if num_sets <= 1:
            capacity = cache_size // block_size
            conflict = int(counts[values >= capacity].sum())
        else:
            probs = _binomial_miss_probability(values, num_sets, assoc)
            conflict = float((counts * probs).sum())
        return 1.0 - (total - (cold + conflict)) / total

    def sweep(self, cache_size: int = 16 * 1024,
              block_sizes: tuple[int, ...] = SWEEP_BLOCK_SIZES,
              assoc: int = 1, estimator: str = "profile") -> dict[int, float]:
        """Miss ratio per block size at fixed capacity/associativity --
        the ``repro explain --sweep`` table."""
        return {bs: self.miss_ratio(cache_size, bs, assoc, estimator)
                for bs in block_sizes}


# ------------------------------------------------------------------ #
# validation against the exact simulator

#: The suite sweep grid the acceptance gate runs: every combination of
#: capacity, block size, and associativity checked per benchmark.
DEFAULT_GRID = tuple(
    (cache_size, block_size, assoc)
    for cache_size in (4 * 1024, 16 * 1024, 64 * 1024)
    for block_size in (16, 32, 64)
    for assoc in (1, 2, 4)
)


def exact_miss_ratio(addresses, *, cache_size: int, block_size: int,
                     assoc: int) -> float:
    """Miss ratio of the exact LRU computation (identical accounting to
    :class:`~repro.cache.cache.Cache`)."""
    total = len(addresses)
    if not total:
        return 0.0
    misses = exact_lru_misses(addresses, block_size=block_size,
                              cache_size=cache_size, assoc=assoc)
    return 1.0 - (total - misses) / total


def validate_model(addresses, grid=DEFAULT_GRID,
                   tolerance: float = DEFAULT_TOLERANCE,
                   estimator: str = "profile") -> list[dict]:
    """Compare the model against the exact simulator on every grid
    point. Returns the per-point report; raises
    :class:`AnalyticalModelError` if any absolute error exceeds
    ``tolerance``."""
    model = AnalyticalCacheModel(addresses)
    report = []
    for cache_size, block_size, assoc in grid:
        predicted = model.miss_ratio(cache_size, block_size, assoc,
                                     estimator=estimator)
        exact = exact_miss_ratio(addresses, cache_size=cache_size,
                                 block_size=block_size, assoc=assoc)
        report.append({
            "cache_size": cache_size,
            "block_size": block_size,
            "assoc": assoc,
            "model": predicted,
            "exact": exact,
            "error": abs(predicted - exact),
        })
    violations = [entry for entry in report if entry["error"] > tolerance]
    if violations:
        raise AnalyticalModelError(violations)
    return report


def _check_cache_oracle(addresses, *, cache_size: int, block_size: int,
                        assoc: int) -> bool:
    """Test hook: replay the real :class:`Cache` and compare with
    :func:`exact_lru_misses`."""
    cache = Cache(CacheConfig(size=cache_size, block_size=block_size,
                              assoc=assoc, name="oracle"))
    for addr in np.asarray(addresses, dtype=np.int64).tolist():
        cache.access(addr)
    vector = exact_lru_misses(addresses, block_size=block_size,
                              cache_size=cache_size, assoc=assoc)
    return cache.misses == vector
