"""A 64-entry fully-associative, randomly-replaced data TLB (4 KB pages).

Used for the Section 5.4 check that the software alignment support does
not hurt virtual-memory behaviour ("we examined TLB performance running
with a 64 entry fully associative randomly replaced data TLB with 4k
pages and found the largest absolute difference in the miss ratio to be
less than 0.1%").

Replacement uses a deterministic xorshift PRNG so runs are repeatable.
"""

from __future__ import annotations

from repro.obs.events import TlbAccess
from repro.obs.metrics import RatioStat


class TLB:
    """Fully-associative TLB with random replacement."""

    def __init__(self, entries: int = 64, page_size: int = 4096,
                 seed: int = 0x2545F491, obs=None):
        self.capacity = entries
        self.page_shift = (page_size - 1).bit_length()
        if 1 << self.page_shift != page_size:
            raise ValueError("page size must be a power of two")
        self._pages: set[int] = set()
        self._order: list[int] = []
        self._rng_state = seed or 1
        self.obs = obs
        self._accesses = RatioStat("tlb.accesses")

    def _rand(self) -> int:
        # xorshift32
        x = self._rng_state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._rng_state = x
        return x

    def access(self, address: int) -> bool:
        """Translate one address; returns True on TLB hit."""
        page = address >> self.page_shift
        if page in self._pages:
            self._accesses.record(True)
            if self.obs is not None:
                self.obs.emit(TlbAccess(address=address, hit=True))
            return True
        self._accesses.record(False)
        if len(self._order) >= self.capacity:
            victim_slot = self._rand() % self.capacity
            victim = self._order[victim_slot]
            self._pages.discard(victim)
            self._order[victim_slot] = page
        else:
            self._order.append(page)
        self._pages.add(page)
        if self.obs is not None:
            self.obs.emit(TlbAccess(address=address, hit=False))
        return False

    @property
    def hits(self) -> int:
        return self._accesses.hits

    @property
    def misses(self) -> int:
        return self._accesses.misses

    @property
    def accesses(self) -> int:
        return self._accesses.total

    @property
    def miss_ratio(self) -> float:
        return self._accesses.miss_ratio

    def as_dict(self) -> dict:
        """Uniform metrics protocol (see :mod:`repro.obs.metrics`)."""
        return {self._accesses.name: self._accesses.as_dict()}

    def merge_stats(self, other: "TLB") -> None:
        self._accesses.merge(other._accesses)

    def reset_stats(self) -> None:
        self._accesses.reset()
