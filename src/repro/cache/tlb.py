"""A 64-entry fully-associative, randomly-replaced data TLB (4 KB pages).

Used for the Section 5.4 check that the software alignment support does
not hurt virtual-memory behaviour ("we examined TLB performance running
with a 64 entry fully associative randomly replaced data TLB with 4k
pages and found the largest absolute difference in the miss ratio to be
less than 0.1%").

Replacement uses a deterministic xorshift PRNG so runs are repeatable.
"""

from __future__ import annotations


class TLB:
    """Fully-associative TLB with random replacement."""

    def __init__(self, entries: int = 64, page_size: int = 4096, seed: int = 0x2545F491):
        self.capacity = entries
        self.page_shift = (page_size - 1).bit_length()
        if 1 << self.page_shift != page_size:
            raise ValueError("page size must be a power of two")
        self._pages: set[int] = set()
        self._order: list[int] = []
        self._rng_state = seed or 1
        self.hits = 0
        self.misses = 0

    def _rand(self) -> int:
        # xorshift32
        x = self._rng_state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._rng_state = x
        return x

    def access(self, address: int) -> bool:
        """Translate one address; returns True on TLB hit."""
        page = address >> self.page_shift
        if page in self._pages:
            self.hits += 1
            return True
        self.misses += 1
        if len(self._order) >= self.capacity:
            victim_slot = self._rand() % self.capacity
            victim = self._order[victim_slot]
            self._pages.discard(victim)
            self._order[victim_slot] = page
        else:
            self._order.append(page)
        self._pages.add(page)
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
