"""Shared low-level helpers: bit manipulation and statistics containers.

Note: the :mod:`repro.utils.bits` module is accessed as a module (it has
a function also named ``bits``, which would shadow the module if it were
re-exported here).
"""

from repro.utils.bits import (
    align_down,
    align_up,
    carry_free_add,
    is_pow2,
    log2_exact,
    next_pow2,
    sext,
    to_signed32,
    to_unsigned32,
)
from repro.utils.stats import Counter, Histogram, RatioStat

__all__ = [
    "align_down",
    "align_up",
    "carry_free_add",
    "is_pow2",
    "log2_exact",
    "next_pow2",
    "sext",
    "to_signed32",
    "to_unsigned32",
    "Counter",
    "Histogram",
    "RatioStat",
]
