"""Small statistics containers shared by the simulators and analyses."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator


class Counter:
    """A named event counter with a convenient ``rate`` helper."""

    __slots__ = ("name", "count")

    def __init__(self, name: str):
        self.name = name
        self.count = 0

    def incr(self, amount: int = 1) -> None:
        self.count += amount

    def rate(self, total: int) -> float:
        """Return count / total, or 0.0 when ``total`` is zero."""
        return self.count / total if total else 0.0

    def reset(self) -> None:
        self.count = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Counter({self.name}={self.count})"


class RatioStat:
    """Hits over accesses, e.g. cache hit ratio or prediction accuracy."""

    __slots__ = ("name", "hits", "total")

    def __init__(self, name: str):
        self.name = name
        self.hits = 0
        self.total = 0

    def record(self, hit: bool) -> None:
        self.total += 1
        if hit:
            self.hits += 1

    @property
    def misses(self) -> int:
        return self.total - self.hits

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.total if self.total else 0.0

    @property
    def miss_ratio(self) -> float:
        return 1.0 - self.hit_ratio if self.total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.total = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RatioStat({self.name}: {self.hits}/{self.total})"


class Histogram:
    """Sparse integer histogram with cumulative-distribution support.

    Used for the paper's Figure 3 offset-size distributions.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._counts: dict[int, int] = defaultdict(int)

    def record(self, key: int, amount: int = 1) -> None:
        self._counts[key] += amount

    def count(self, key: int) -> int:
        return self._counts.get(key, 0)

    @property
    def total(self) -> int:
        return sum(self._counts.values())

    def keys(self) -> Iterator[int]:
        return iter(sorted(self._counts))

    def items(self) -> Iterable[tuple[int, int]]:
        return sorted(self._counts.items())

    def cumulative(self, keys: Iterable[int]) -> list[float]:
        """Fraction of samples with key <= k, for each k in ``keys``.

        ``keys`` must be given in ascending order.
        """
        total = self.total
        if total == 0:
            return [0.0 for _ in keys]
        items = sorted(self._counts.items())
        result = []
        running = 0
        idx = 0
        for k in keys:
            while idx < len(items) and items[idx][0] <= k:
                running += items[idx][1]
                idx += 1
            result.append(running / total)
        return result

    def merge(self, other: "Histogram") -> None:
        for key, amount in other._counts.items():
            self._counts[key] += amount

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Histogram({self.name}, n={self.total}, bins={len(self)})"
