"""Statistics containers -- compatibility re-export.

The canonical definitions moved to :mod:`repro.obs.metrics` when the
telemetry layer absorbed them (they gained the uniform
``as_dict()``/``merge()`` protocol and the :class:`MetricsRegistry`
there). Import from ``repro.obs.metrics`` in new code.
"""

from repro.obs.metrics import (  # noqa: F401
    Counter,
    Histogram,
    MetricsRegistry,
    RatioStat,
    safe_ratio,
)

__all__ = ["Counter", "Histogram", "MetricsRegistry", "RatioStat",
           "safe_ratio"]
