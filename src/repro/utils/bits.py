"""Bit-manipulation helpers used by the ISA, caches, and the FAC circuit.

All 32-bit arithmetic in the simulator is done on Python ints constrained
to the range [0, 2**32) (unsigned view) with explicit conversions to the
signed view where the architecture calls for it.
"""

from __future__ import annotations

MASK32 = 0xFFFFFFFF
SIGN32 = 0x80000000


def to_unsigned32(value: int) -> int:
    """Map an arbitrary Python int onto the 32-bit unsigned view."""
    return value & MASK32


def to_signed32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a two's-complement int."""
    value &= MASK32
    return value - 0x100000000 if value & SIGN32 else value


def sext(value: int, width: int) -> int:
    """Sign-extend the low ``width`` bits of ``value`` to a Python int."""
    if width <= 0:
        raise ValueError("width must be positive")
    mask = (1 << width) - 1
    value &= mask
    sign_bit = 1 << (width - 1)
    return value - (1 << width) if value & sign_bit else value


def bit(value: int, index: int) -> int:
    """Return bit ``index`` of ``value`` (0 or 1)."""
    return (value >> index) & 1


def bits(value: int, hi: int, lo: int) -> int:
    """Return the inclusive bit-field ``value[hi:lo]`` right-aligned.

    Mirrors the hardware notation used in the paper's Figure 4, e.g.
    ``bits(addr, 31, S)`` is the tag field of ``addr`` for a cache with
    set span ``2**S`` bytes.
    """
    if hi < lo:
        raise ValueError(f"invalid bit range [{hi}:{lo}]")
    return (value >> lo) & ((1 << (hi - lo + 1)) - 1)


def field_mask(hi: int, lo: int) -> int:
    """Mask with ones in the inclusive bit positions [hi:lo]."""
    if hi < lo:
        raise ValueError(f"invalid bit range [{hi}:{lo}]")
    return ((1 << (hi - lo + 1)) - 1) << lo


def carry_free_add(a: int, b: int) -> int:
    """The paper's ``carry-free addition``: a bitwise OR of the operands.

    Technically carry-free addition is XOR, but the paper (Section 3,
    footnote 1) notes an inclusive OR suffices because OR and XOR only
    differ in bit positions where both inputs are 1 -- exactly the
    positions that generate a carry, i.e. where the prediction fails
    anyway.
    """
    return (a | b) & MASK32


def is_pow2(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def next_pow2(value: int) -> int:
    """Smallest power of two >= ``value`` (``value`` must be positive)."""
    if value <= 0:
        raise ValueError("value must be positive")
    return 1 << (value - 1).bit_length()


def log2_exact(value: int) -> int:
    """log2 of an exact power of two; raises otherwise."""
    if not is_pow2(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment`` (pow2)."""
    if not is_pow2(alignment):
        raise ValueError(f"alignment {alignment} is not a power of two")
    return (value + alignment - 1) & ~(alignment - 1)


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (pow2)."""
    if not is_pow2(alignment):
        raise ValueError(f"alignment {alignment} is not a power of two")
    return value & ~(alignment - 1)
