"""Fast address calculation: the paper's primary contribution.

:class:`~repro.fac.predictor.FastAddressCalculator` is a bit-level model
of the circuit in the paper's Figure 4; :class:`~repro.fac.config.FacConfig`
selects the design points evaluated in Section 5 (block size, full tag
addition, store speculation, register+register speculation).
"""

from repro.fac.config import FacConfig
from repro.fac.predictor import FailureSignals, FastAddressCalculator, Prediction

__all__ = ["FacConfig", "FastAddressCalculator", "Prediction", "FailureSignals"]
