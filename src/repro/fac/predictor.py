"""Bit-level model of the fast address calculation circuit (Figure 4).

The circuit forms a *speculative* effective address from a base register
value and an offset while the real address is still being computed:

* block offset ``addr[B-1:0]``: a B-bit **full adder** (its carry-out is
  the ``Overflow`` signal),
* set index ``addr[S-1:B]``: **carry-free addition** -- a bitwise OR of
  the two index fields (the paper notes an inclusive OR suffices in place
  of XOR because the two differ only when prediction fails anyway),
* tag ``addr[31:S]``: either a full adder chained behind the index-portion
  carry (always correct) or the same OR trick (``full_tag_add=False``).

Small negative *constant* offsets are accommodated by inverting the
offset's index field (all-ones for a small negative constant, zeros after
inversion), so the OR returns the base's index unchanged; the block-offset
adder's missing carry-out then flags the borrow case. Register offsets
arrive too late for inversion, so any negative register offset fails
(signal ``IndexReg<31>``).

Verification is decoupled from the access path: four failure signals are
computed and their OR decides whether the access must replay with the
non-speculative address:

1. ``overflow``      -- a carry (or borrow) propagates out of the block
                        offset field,
2. ``gen_carry``     -- a carry is generated inside the set index field
                        (some bit position has both operands' bits set),
3. ``large_neg_const`` -- a negative constant offset too large in
                        magnitude to stay within the base's cache block,
4. ``neg_index_reg`` -- a register offset that is negative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fac.config import FacConfig
from repro.utils.bits import MASK32

_TAG_TOP = 32

#: Signal name -> the human-readable label used in events, diagnostics,
#: and ``repro explain`` output, in :meth:`FailureSignals.primary_reason`
#: priority order (most specific cause first).
SIGNAL_LABELS = {
    "large_neg_const": "large-negative-offset",
    "neg_index_reg": "negative-register",
    "gen_carry": "carry-into-index",
    "overflow": "block-carry-out",
    "tag_mismatch": "tag-mismatch",
}


@dataclass(frozen=True)
class FailureSignals:
    """The verification circuit's four failure conditions, plus the
    OR-tag mismatch that exists only when ``full_tag_add`` is off."""

    overflow: bool = False
    gen_carry: bool = False
    large_neg_const: bool = False
    neg_index_reg: bool = False
    tag_mismatch: bool = False

    @property
    def any(self) -> bool:
        return (
            self.overflow
            or self.gen_carry
            or self.large_neg_const
            or self.neg_index_reg
            or self.tag_mismatch
        )

    @property
    def primary_reason(self) -> str | None:
        """Human-readable name of the dominant failure cause, or None.

        Several signals can fire at once; the priority order reports the
        most *specific* cause first (the one software support targets):
        a large negative constant or negative register offset explains
        the failure outright, otherwise the carry behaviour does.
        """
        if self.large_neg_const:
            return "large-negative-offset"
        if self.neg_index_reg:
            return "negative-register"
        if self.gen_carry:
            return "carry-into-index"
        if self.overflow:
            return "block-carry-out"
        if self.tag_mismatch:
            return "tag-mismatch"
        return None


@dataclass(frozen=True)
class Prediction:
    """Outcome of one speculative address calculation."""

    predicted: int          # the address driven onto the cache port
    actual: int             # the non-speculative effective address
    success: bool           # predicted == actual (as the verifier decides)
    speculated: bool        # False when this access class is not speculated
    signals: FailureSignals


class FastAddressCalculator:
    """The predictor circuit for one cache geometry."""

    def __init__(self, config: FacConfig | None = None):
        self.config = config or FacConfig()
        b = self.config.b_bits
        s = self.config.s_bits
        self._b = b
        self._s = s
        self._block_mask = (1 << b) - 1                   # addr[B-1:0]
        self._index_mask = ((1 << s) - 1) ^ self._block_mask  # addr[S-1:B]
        self._tag_mask = (MASK32 ^ ((1 << s) - 1))        # addr[31:S]

    # ------------------------------------------------------------------ #

    def predict(self, base: int, offset: int, offset_is_reg: bool) -> Prediction:
        """Run the circuit for one access.

        ``base`` is the 32-bit base register value; ``offset`` is the
        signed constant offset, or the *signed interpretation* of the
        index register value when ``offset_is_reg``.
        """
        base &= MASK32
        actual = (base + offset) & MASK32
        ofs_bits = offset & MASK32
        b = self._b

        # --- block offset: B-bit full adder, carry-out = Overflow ------
        block_sum = (base & self._block_mask) + (ofs_bits & self._block_mask)
        carry_out = block_sum >> b
        pred_block = block_sum & self._block_mask

        neg_index_reg = offset_is_reg and offset < 0
        if offset_is_reg or offset >= 0:
            ofs_index = ofs_bits & self._index_mask
            ofs_tag = ofs_bits & self._tag_mask
            large_neg_const = False
            # positive offsets: a carry-out of the block adder propagates
            # into the index field and breaks the OR prediction.
            overflow = carry_out == 1
        else:
            # negative constant: the index (and tag) fields of the offset
            # are inverted -- all-ones becomes zero for small magnitudes.
            ofs_index = (~ofs_bits) & self._index_mask
            ofs_tag = (~ofs_bits) & self._tag_mask
            # too negative to stay within the base's block?
            large_neg_const = (offset >> b) != -1
            # for in-range negative offsets the block adder must produce a
            # carry-out (i.e. no borrow); carry_out == 0 is the failure.
            overflow = carry_out == 0

        # --- set index: carry-free (OR) addition ------------------------
        base_index = base & self._index_mask
        pred_index = base_index | ofs_index
        gen_carry = (base_index & ofs_index) != 0

        # --- tag ---------------------------------------------------------
        base_tag = base & self._tag_mask
        if self.config.full_tag_add:
            # Full addition chained behind the index carry: always equals
            # the true tag, so drive the true tag onto the comparator.
            pred_tag = actual & self._tag_mask
            tag_mismatch = False
        else:
            pred_tag = base_tag | ofs_tag
            tag_mismatch = pred_tag != (actual & self._tag_mask)

        signals = FailureSignals(
            overflow=overflow,
            gen_carry=gen_carry,
            large_neg_const=large_neg_const,
            neg_index_reg=neg_index_reg,
            tag_mismatch=tag_mismatch,
        )
        predicted = pred_tag | pred_index | pred_block
        return Prediction(
            predicted=predicted,
            actual=actual,
            success=not signals.any,
            speculated=True,
            signals=signals,
        )

    def fails(self, base: int, offset: int, offset_is_reg: bool) -> bool:
        """Allocation-free verification verdict for one access.

        Returns exactly ``not self.predict(...).success`` -- the OR of
        the failure signals -- without building the ``Prediction`` and
        ``FailureSignals`` dataclasses. This is the hot path of the
        timing model and the trace analyzer; callers that need the
        individual signals (failure accounting, observer reasons) call
        :meth:`predict` afterwards, which only happens on the rare
        mispredictions.
        """
        base &= MASK32
        ofs_bits = offset & MASK32
        block_mask = self._block_mask
        block_sum = (base & block_mask) + (ofs_bits & block_mask)
        carry_out = block_sum >> self._b

        if offset_is_reg or offset >= 0:
            if offset_is_reg and offset < 0:
                return True                      # neg_index_reg
            if carry_out == 1:
                return True                      # overflow
            ofs_index = ofs_bits & self._index_mask
        else:
            if (offset >> self._b) != -1:
                return True                      # large_neg_const
            if carry_out == 0:
                return True                      # overflow (borrow)
            ofs_bits = ~ofs_bits                 # inverted index/tag fields
            ofs_index = ofs_bits & self._index_mask

        if (base & self._index_mask) & ofs_index:
            return True                          # gen_carry
        if not self.config.full_tag_add:
            pred_tag = (base & self._tag_mask) | (ofs_bits & self._tag_mask)
            if pred_tag != ((base + offset) & MASK32 & self._tag_mask):
                return True                      # tag_mismatch
        return False

    # ------------------------------------------------------------------ #

    def should_speculate(self, offset_is_reg: bool, is_store: bool) -> bool:
        """Policy check: is this access class speculated at all?"""
        if is_store and not self.config.speculate_stores:
            return False
        if offset_is_reg and not self.config.speculate_reg_reg:
            return False
        return True

    def predict_access(
        self, base: int, offset: int, offset_is_reg: bool, is_store: bool
    ) -> Prediction:
        """Predict, or report a non-speculated access.

        Post-increment accesses should not be routed here: their effective
        address *is* the base register value, no addition is involved.
        """
        if not self.should_speculate(offset_is_reg, is_store):
            actual = (base + offset) & MASK32
            return Prediction(
                predicted=actual,
                actual=actual,
                success=False,
                speculated=False,
                signals=FailureSignals(),
            )
        return self.predict(base, offset, offset_is_reg)
