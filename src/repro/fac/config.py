"""Configuration of the fast-address-calculation hardware."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.utils.bits import is_pow2, log2_exact


@dataclass(frozen=True)
class FacConfig:
    """One design point of the predictor circuit.

    ``cache_size`` and ``block_size`` determine the address fields of
    Figure 4: with a direct-mapped cache of ``2**S`` bytes and ``2**B``-byte
    blocks, the block offset is ``addr[B-1:0]``, the set index is
    ``addr[S-1:B]``, and the tag is ``addr[31:S]``. The predictor performs
    ``B`` bits of full addition (the paper evaluates B=4 and B=5, i.e. 16-
    and 32-byte blocks), carry-free (OR) addition in the index field, and
    either full or carry-free addition in the tag field
    (``full_tag_add`` -- Section 3.1 reports the full adder is "of limited
    value", so both are modelled).

    ``speculate_stores`` and ``speculate_reg_reg`` select whether stores
    and register+register-mode accesses are speculated at all (Sections
    3.1 and 5.5).
    """

    cache_size: int = 16 * 1024
    block_size: int = 32
    full_tag_add: bool = True
    speculate_stores: bool = True
    speculate_reg_reg: bool = True

    def __post_init__(self):
        if not is_pow2(self.cache_size):
            raise ConfigError(f"cache_size {self.cache_size} not a power of two")
        if not is_pow2(self.block_size):
            raise ConfigError(f"block_size {self.block_size} not a power of two")
        if self.block_size >= self.cache_size:
            raise ConfigError("block_size must be smaller than cache_size")

    @property
    def b_bits(self) -> int:
        """B: number of block-offset bits (width of the full adder)."""
        return log2_exact(self.block_size)

    @property
    def s_bits(self) -> int:
        """S: log2 of the cache set span in bytes (index+offset width)."""
        return log2_exact(self.cache_size)

    @classmethod
    def for_cache(cls, cache, **kwargs) -> "FacConfig":
        """Derive the predictor geometry from a cache configuration.

        For a set-associative cache the set index spans fewer bits
        (``num_sets * block_size`` bytes), so less of the address needs
        carry-free addition -- associativity *helps* fast address
        calculation. ``cache`` is a
        :class:`repro.cache.cache.CacheConfig`.
        """
        return cls(cache_size=cache.num_sets * cache.block_size,
                   block_size=cache.block_size, **kwargs)
