"""Simulated memory: sparse byte-addressable store and segment layout."""

from repro.mem.layout import (
    DATA_BASE,
    HEAP_ALIGN,
    PAGE_SIZE,
    STACK_TOP,
    TEXT_BASE,
)
from repro.mem.memory import Memory

__all__ = [
    "Memory",
    "TEXT_BASE",
    "DATA_BASE",
    "STACK_TOP",
    "PAGE_SIZE",
    "HEAP_ALIGN",
]
