"""Address-space layout constants for the simulated machine.

The layout follows the MIPS convention used in the paper's examples
(Figure 5 shows ``sp = 0x7fff5b84`` and a global pointer around
``0x10000000``): text low, static data at 256 MB, heap growing up after
the data segment, stack growing down from just under 2 GB.
"""

TEXT_BASE = 0x00400000
DATA_BASE = 0x10000000
STACK_TOP = 0x7FFF8000
PAGE_SIZE = 4096
HEAP_ALIGN = 4096

# Default stack-size budget; the functional simulator faults if the stack
# pointer drops below STACK_TOP - STACK_LIMIT.
STACK_LIMIT = 8 * 1024 * 1024
