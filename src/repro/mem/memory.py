"""Sparse, paged, byte-addressable little-endian memory.

Pages are allocated lazily as 4 KB ``bytearray`` chunks. Reads from
never-written pages return zeros (matching bss semantics); a ``strict``
memory instead raises :class:`~repro.errors.MemoryFault`, which the test
suite uses to catch wild accesses.

The scalar paths memoize the last-touched ``(page_num, page)`` pair for
reads and writes separately: the interpreter's accesses cluster heavily
on one stack or data page, so the common case skips the page-dict probe
entirely and goes straight to a cached ``Struct.unpack_from``/
``pack_into`` bound method. Pages are created once and mutated in place,
never replaced, which is what makes caching the ``bytearray`` safe.
"""

from __future__ import annotations

import struct

from repro.errors import MemoryFault
from repro.mem.layout import PAGE_SIZE

_PAGE_SHIFT = 12
_PAGE_MASK = PAGE_SIZE - 1

_STRUCT_U = {1: struct.Struct("<B"), 2: struct.Struct("<H"), 4: struct.Struct("<I")}
_STRUCT_S = {1: struct.Struct("<b"), 2: struct.Struct("<h"), 4: struct.Struct("<i")}
_STRUCT_D = struct.Struct("<d")

# Bound methods hoisted out of the access paths (no per-call dict probe
# or descriptor lookup).
_UNPACK_U = {w: s.unpack_from for w, s in _STRUCT_U.items()}
_UNPACK_S = {w: s.unpack_from for w, s in _STRUCT_S.items()}
_PACK_U = {w: s.pack_into for w, s in _STRUCT_U.items()}
_UNPACK_U32 = _STRUCT_U[4].unpack_from
_PACK_U32 = _STRUCT_U[4].pack_into
_UNPACK_D = _STRUCT_D.unpack_from
_PACK_D = _STRUCT_D.pack_into


class Memory:
    """The simulated physical memory."""

    def __init__(self, strict: bool = False):
        self._pages: dict[int, bytearray] = {}
        self.strict = strict
        self.pages_touched = 0
        # last-page memoization (reads and writes tracked separately)
        self._rpage_num = -1
        self._rpage: bytearray | None = None
        self._wpage_num = -1
        self._wpage: bytearray | None = None

    # ------------------------------------------------------------------ #
    # page plumbing

    def _page_for_write(self, page_num: int) -> bytearray:
        page = self._pages.get(page_num)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_num] = page
            self.pages_touched += 1
        return page

    def _page_for_read(self, page_num: int, address: int) -> bytearray | None:
        page = self._pages.get(page_num)
        if page is None and self.strict:
            raise MemoryFault(address, "read of unmapped page")
        return page

    def is_mapped(self, address: int) -> bool:
        return (address >> _PAGE_SHIFT) in self._pages

    @property
    def mapped_bytes(self) -> int:
        """Total bytes in allocated pages (the Table 3/4 memory metric)."""
        return len(self._pages) * PAGE_SIZE

    # ------------------------------------------------------------------ #
    # bulk access

    def write_bytes(self, address: int, data: bytes) -> None:
        offset = 0
        remaining = len(data)
        while remaining:
            page_num = (address + offset) >> _PAGE_SHIFT
            in_page = (address + offset) & _PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - in_page)
            page = self._page_for_write(page_num)
            page[in_page:in_page + chunk] = data[offset:offset + chunk]
            offset += chunk
            remaining -= chunk

    def read_bytes(self, address: int, length: int) -> bytes:
        out = bytearray()
        offset = 0
        while offset < length:
            page_num = (address + offset) >> _PAGE_SHIFT
            in_page = (address + offset) & _PAGE_MASK
            chunk = min(length - offset, PAGE_SIZE - in_page)
            page = self._page_for_read(page_num, address + offset)
            if page is None:
                out += bytes(chunk)
            else:
                out += page[in_page:in_page + chunk]
            offset += chunk
        return bytes(out)

    def reserve(self, address: int, length: int) -> None:
        """Eagerly map a zeroed span (used for bss segments)."""
        first = address >> _PAGE_SHIFT
        last = (address + max(length, 1) - 1) >> _PAGE_SHIFT
        for page_num in range(first, last + 1):
            self._page_for_write(page_num)

    # ------------------------------------------------------------------ #
    # scalar access
    #
    # An aligned 1/2/4/8-byte access never crosses a 4 KB page, so after
    # the alignment check the whole value lives in one page and a single
    # unpack_from/pack_into suffices.

    def read(self, address: int, width: int, signed: bool = False) -> int:
        """Read a 1/2/4-byte integer."""
        if address & (width - 1):
            raise MemoryFault(address, f"misaligned {width}-byte read")
        page_num = address >> _PAGE_SHIFT
        if page_num == self._rpage_num:
            page = self._rpage
        else:
            page = self._pages.get(page_num)
            if page is None:
                if self.strict:
                    raise MemoryFault(address, "read of unmapped page")
                return 0
            self._rpage_num = page_num
            self._rpage = page
        unpack = _UNPACK_S[width] if signed else _UNPACK_U[width]
        return unpack(page, address & _PAGE_MASK)[0]

    def write(self, address: int, width: int, value: int) -> None:
        """Write a 1/2/4-byte integer (value is masked to the width)."""
        if address & (width - 1):
            raise MemoryFault(address, f"misaligned {width}-byte write")
        page_num = address >> _PAGE_SHIFT
        if page_num == self._wpage_num:
            page = self._wpage
        else:
            page = self._page_for_write(page_num)
            self._wpage_num = page_num
            self._wpage = page
        mask = (1 << (8 * width)) - 1
        _PACK_U[width](page, address & _PAGE_MASK, value & mask)

    def read_u32(self, address: int) -> int:
        """Aligned unsigned word read (the interpreter's ``lw`` path)."""
        if address & 3:
            raise MemoryFault(address, "misaligned 4-byte read")
        page_num = address >> _PAGE_SHIFT
        if page_num == self._rpage_num:
            page = self._rpage
        else:
            page = self._pages.get(page_num)
            if page is None:
                if self.strict:
                    raise MemoryFault(address, "read of unmapped page")
                return 0
            self._rpage_num = page_num
            self._rpage = page
        return _UNPACK_U32(page, address & _PAGE_MASK)[0]

    def write_u32(self, address: int, value: int) -> None:
        """Aligned word write (the interpreter's ``sw`` path)."""
        if address & 3:
            raise MemoryFault(address, "misaligned 4-byte write")
        page_num = address >> _PAGE_SHIFT
        if page_num == self._wpage_num:
            page = self._wpage
        else:
            page = self._page_for_write(page_num)
            self._wpage_num = page_num
            self._wpage = page
        _PACK_U32(page, address & _PAGE_MASK, value & 0xFFFFFFFF)

    def read_double(self, address: int) -> float:
        if address & 7:
            raise MemoryFault(address, "misaligned 8-byte read")
        page_num = address >> _PAGE_SHIFT
        if page_num == self._rpage_num:
            page = self._rpage
        else:
            page = self._pages.get(page_num)
            if page is None:
                if self.strict:
                    raise MemoryFault(address, "read of unmapped page")
                return 0.0
            self._rpage_num = page_num
            self._rpage = page
        return _UNPACK_D(page, address & _PAGE_MASK)[0]

    def write_double(self, address: int, value: float) -> None:
        if address & 7:
            raise MemoryFault(address, "misaligned 8-byte write")
        page_num = address >> _PAGE_SHIFT
        if page_num == self._wpage_num:
            page = self._wpage
        else:
            page = self._page_for_write(page_num)
            self._wpage_num = page_num
            self._wpage = page
        _PACK_D(page, address & _PAGE_MASK, value)

    def read_cstring(self, address: int, limit: int = 1 << 16) -> str:
        """Read a NUL-terminated string (for syscall emulation).

        Scans for the terminator one page at a time with
        ``bytearray.find`` rather than one byte per ``struct``
        round-trip; strings may span page boundaries, and an unmapped
        tail reads as zeros (i.e. terminates the string) exactly as the
        byte-at-a-time path did. At most ``limit`` bytes are consumed.
        """
        out = bytearray()
        addr = address
        remaining = limit
        while remaining > 0:
            page_num = addr >> _PAGE_SHIFT
            in_page = addr & _PAGE_MASK
            span = min(PAGE_SIZE - in_page, remaining)
            page = self._page_for_read(page_num, addr)
            if page is None:
                break  # zeros: the string terminates here
            nul = page.find(0, in_page, in_page + span)
            if nul >= 0:
                out += page[in_page:nul]
                break
            out += page[in_page:in_page + span]
            addr += span
            remaining -= span
        return out.decode("latin-1")
