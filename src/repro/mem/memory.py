"""Sparse, paged, byte-addressable little-endian memory.

Pages are allocated lazily as 4 KB ``bytearray`` chunks. Reads from
never-written pages return zeros (matching bss semantics); a ``strict``
memory instead raises :class:`~repro.errors.MemoryFault`, which the test
suite uses to catch wild accesses.
"""

from __future__ import annotations

import struct

from repro.errors import MemoryFault
from repro.mem.layout import PAGE_SIZE

_PAGE_SHIFT = 12
_PAGE_MASK = PAGE_SIZE - 1

_STRUCT_U = {1: struct.Struct("<B"), 2: struct.Struct("<H"), 4: struct.Struct("<I")}
_STRUCT_S = {1: struct.Struct("<b"), 2: struct.Struct("<h"), 4: struct.Struct("<i")}
_STRUCT_D = struct.Struct("<d")


class Memory:
    """The simulated physical memory."""

    def __init__(self, strict: bool = False):
        self._pages: dict[int, bytearray] = {}
        self.strict = strict
        self.pages_touched = 0

    # ------------------------------------------------------------------ #
    # page plumbing

    def _page_for_write(self, page_num: int) -> bytearray:
        page = self._pages.get(page_num)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_num] = page
            self.pages_touched += 1
        return page

    def _page_for_read(self, page_num: int, address: int) -> bytearray | None:
        page = self._pages.get(page_num)
        if page is None and self.strict:
            raise MemoryFault(address, "read of unmapped page")
        return page

    def is_mapped(self, address: int) -> bool:
        return (address >> _PAGE_SHIFT) in self._pages

    @property
    def mapped_bytes(self) -> int:
        """Total bytes in allocated pages (the Table 3/4 memory metric)."""
        return len(self._pages) * PAGE_SIZE

    # ------------------------------------------------------------------ #
    # bulk access

    def write_bytes(self, address: int, data: bytes) -> None:
        offset = 0
        remaining = len(data)
        while remaining:
            page_num = (address + offset) >> _PAGE_SHIFT
            in_page = (address + offset) & _PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - in_page)
            page = self._page_for_write(page_num)
            page[in_page:in_page + chunk] = data[offset:offset + chunk]
            offset += chunk
            remaining -= chunk

    def read_bytes(self, address: int, length: int) -> bytes:
        out = bytearray()
        offset = 0
        while offset < length:
            page_num = (address + offset) >> _PAGE_SHIFT
            in_page = (address + offset) & _PAGE_MASK
            chunk = min(length - offset, PAGE_SIZE - in_page)
            page = self._page_for_read(page_num, address + offset)
            if page is None:
                out += bytes(chunk)
            else:
                out += page[in_page:in_page + chunk]
            offset += chunk
        return bytes(out)

    def reserve(self, address: int, length: int) -> None:
        """Eagerly map a zeroed span (used for bss segments)."""
        first = address >> _PAGE_SHIFT
        last = (address + max(length, 1) - 1) >> _PAGE_SHIFT
        for page_num in range(first, last + 1):
            self._page_for_write(page_num)

    # ------------------------------------------------------------------ #
    # scalar access

    def read(self, address: int, width: int, signed: bool = False) -> int:
        """Read a 1/2/4-byte integer."""
        if address & (width - 1):
            raise MemoryFault(address, f"misaligned {width}-byte read")
        in_page = address & _PAGE_MASK
        page = self._page_for_read(address >> _PAGE_SHIFT, address)
        if in_page + width <= PAGE_SIZE:
            if page is None:
                return 0
            packer = _STRUCT_S[width] if signed else _STRUCT_U[width]
            return packer.unpack_from(page, in_page)[0]
        raw = self.read_bytes(address, width)
        return int.from_bytes(raw, "little", signed=signed)

    def write(self, address: int, width: int, value: int) -> None:
        """Write a 1/2/4-byte integer (value is masked to the width)."""
        if address & (width - 1):
            raise MemoryFault(address, f"misaligned {width}-byte write")
        in_page = address & _PAGE_MASK
        if in_page + width <= PAGE_SIZE:
            page = self._page_for_write(address >> _PAGE_SHIFT)
            mask = (1 << (8 * width)) - 1
            _STRUCT_U[width].pack_into(page, in_page, value & mask)
            return
        mask = (1 << (8 * width)) - 1
        self.write_bytes(address, (value & mask).to_bytes(width, "little"))

    def read_double(self, address: int) -> float:
        if address & 7:
            raise MemoryFault(address, "misaligned 8-byte read")
        raw = self.read_bytes(address, 8)
        return _STRUCT_D.unpack(raw)[0]

    def write_double(self, address: int, value: float) -> None:
        if address & 7:
            raise MemoryFault(address, "misaligned 8-byte write")
        self.write_bytes(address, _STRUCT_D.pack(value))

    def read_cstring(self, address: int, limit: int = 1 << 16) -> str:
        """Read a NUL-terminated string (for syscall emulation)."""
        out = bytearray()
        for i in range(limit):
            byte = self.read(address + i, 1)
            if byte == 0:
                break
            out.append(byte)
        return out.decode("latin-1")
