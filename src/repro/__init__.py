"""repro: a full-stack reproduction of *Streamlining Data Cache Access
with Fast Address Calculation* (Austin, Pnevmatikatos & Sohi, ISCA 1995).

The package provides, bottom-up:

* :mod:`repro.isa` -- the paper's extended-MIPS instruction set with an
  assembler and disassembler,
* :mod:`repro.mem` / :mod:`repro.linker` -- memory image and linker (with
  the paper's global-pointer alignment support),
* :mod:`repro.compiler` -- a MiniC optimizing compiler implementing the
  paper's software support (Section 4),
* :mod:`repro.cpu` -- the functional simulator,
* :mod:`repro.cache` -- cache, store buffer, and TLB models,
* :mod:`repro.fac` -- the fast-address-calculation predictor circuit,
* :mod:`repro.pipeline` -- the 4-way in-order superscalar timing model
  of Table 5,
* :mod:`repro.workloads` -- the 19-program benchmark suite,
* :mod:`repro.analysis` / :mod:`repro.experiments` -- reference-behaviour
  analyses and one harness per paper table/figure.

Quickstart::

    from repro import compile_and_link, CPU, FacConfig, FastAddressCalculator

    program = compile_and_link("int main() { return 0; }")
    cpu = CPU(program)
    cpu.run()
"""

from repro.cache import Cache, CacheConfig, StoreBuffer, TLB
from repro.compiler import CompilerOptions, FacSoftwareOptions, compile_and_link, compile_source
from repro.cpu import CPU, TraceRecord
from repro.fac import FacConfig, FastAddressCalculator, Prediction
from repro.isa import Instruction, Op, assemble, disassemble
from repro.linker import LinkOptions, link
from repro.pipeline import MachineConfig, PipelineSimulator, SimResult

__version__ = "1.0.0"

__all__ = [
    "Cache",
    "CacheConfig",
    "StoreBuffer",
    "TLB",
    "CompilerOptions",
    "FacSoftwareOptions",
    "compile_and_link",
    "compile_source",
    "CPU",
    "TraceRecord",
    "FacConfig",
    "FastAddressCalculator",
    "Prediction",
    "Instruction",
    "Op",
    "assemble",
    "disassemble",
    "LinkOptions",
    "link",
    "MachineConfig",
    "PipelineSimulator",
    "SimResult",
    "__version__",
]
