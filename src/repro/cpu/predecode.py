"""Predecode + threaded-dispatch execution engine.

The legacy :meth:`CPU.step` re-decodes every instruction on every
execution: a ~60-arm ``if/elif`` chain of ``Enum.__eq__`` tests plus
``inst.info`` attribute chases. This module moves all of that work to
*program load time*: one pass over ``Program.instructions`` compiles
each static instruction into a closure with its operand fields
(``rs``/``rt``/``rd``/``imm``/``target``), its :class:`OpInfo`
properties, and the architectural containers (register file list,
memory bound-methods) captured as locals. Executing an instruction is
then one list index plus one call into straight-line arithmetic.

Handlers communicate control flow through their return value -- the
*text index* of the next instruction, or a negative sentinel:

* ``HALT``      -- an exit syscall retired (``state.pc`` already set),
* ``OFF_TEXT``  -- control transferred outside the text segment
                   (``state.pc`` holds the errant target).

Plain and memory handlers return the precomputed ``index + 1``;
control-flow handlers return the predecoded target index, so the
driving loop (:meth:`CPU.run_trace`) never touches ``state.pc`` except
at entry and exit.

Two closures are compiled per instruction: a *run* variant that only
mutates architectural state, and a *trace* variant that additionally
returns the same :class:`~repro.cpu.executor.TraceRecord` the legacy
``step()`` would have -- but only memory and control-flow instructions
ever need it. The ~60-70% of instructions that are neither get no
record allocated at all; streaming consumers receive their ``(pc,
inst)`` directly (see ``CPU.run_trace``).

Equivalence invariants the compilers below preserve, bit for bit:

* writes to ``$zero`` are compiled out, but their *side effects*
  (memory reads that can fault, ``int()`` conversions that can raise)
  still execute;
* the ``$sp``-minimum / stack-overflow tracking is only compiled into
  memory handlers whose base register is ``$sp`` (the legacy code
  tested ``inst.rs == Reg.SP`` per access -- same observable effect);
* an exit syscall leaves ``state.pc`` on the instruction *after* the
  syscall, exactly as the legacy loop did;
* ``jalr $0, $0`` reads the just-written link value, reproducing the
  legacy write-then-read through ``regs[0]``.

Handlers capture ``state.regs``/``state.fregs`` directly, which is why
:meth:`ArchState.reset` mutates those lists in place instead of
rebinding them.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.cpu.syscalls import handle_syscall
from repro.isa.opcodes import OP_INFO, Op, OpClass
from repro.isa.registers import Reg
from repro.mem.layout import STACK_LIMIT
from repro.utils.bits import to_signed32

MASK32 = 0xFFFFFFFF
SIGN32 = 0x80000000

# Instruction kinds, as seen by streaming trace consumers.
KIND_PLAIN = 0   # ALU / mult-div / FP / system: no TraceRecord needed
KIND_MEM = 1     # loads & stores: always fall through, carry an ea
KIND_CTRL = 2    # branches & jumps: carry the taken/next-pc outcome

#: Kind code -> short name, for dumps and diagnostics.
KIND_NAMES = {KIND_PLAIN: "plain", KIND_MEM: "mem", KIND_CTRL: "ctrl"}

# Negative sentinels returned in place of a next-instruction index.
HALT = -1
OFF_TEXT = -2

_CTRL_CLASSES = (OpClass.BRANCH, OpClass.JUMP)


class DecodedProgram:
    """Consumer-independent predecode of one linked program.

    Holds only per-instruction *classification* (kind) and the static
    ``pc`` of each text index -- the executable closure tables depend on
    a concrete :class:`~repro.cpu.executor.CPU`'s state and are built
    per-CPU by :func:`build_tables`. Cached on the
    :class:`~repro.isa.program.Program` via ``Program.predecoded()`` so
    every CPU bound to the same program shares one pass.
    """

    __slots__ = ("kinds", "pcs", "text_base", "n_insts")

    def __init__(self, program):
        insts = program.instructions
        text_base = program.text_base
        self.text_base = text_base
        self.n_insts = len(insts)
        self.pcs = [text_base + (i << 2) for i in range(len(insts))]
        kinds = bytearray(len(insts))
        for i, inst in enumerate(insts):
            info = OP_INFO[inst.op]
            if info.mem_width:
                kinds[i] = KIND_MEM
            elif info.klass in _CTRL_CLASSES:
                kinds[i] = KIND_CTRL
        self.kinds = kinds


def build_tables(cpu):
    """Compile per-CPU handler tables for ``cpu.program``.

    Returns ``(run_table, trace_table)``: parallel lists indexed by text
    index. ``trace_table[i] is run_table[i]`` for plain instructions.
    """
    from repro.cpu.executor import TraceRecord

    program = cpu.program
    insts = program.instructions
    state = cpu.state
    regs = state.regs
    fregs = state.fregs
    mem = cpu.memory
    text_base = program.text_base
    n_insts = len(insts)
    sp_value = program.sp_value

    mem_read = mem.read
    mem_write = mem.write
    read_u32 = mem.read_u32
    write_u32 = mem.write_u32
    read_double = mem.read_double
    write_double = mem.write_double

    run_table = []
    trace_table = []

    for i, inst in enumerate(insts):
        op = inst.op
        info = OP_INFO[op]
        ni = i + 1
        pc = text_base + (i << 2)
        pc4 = pc + 4
        rd = inst.rd
        rs = inst.rs
        rt = inst.rt
        imm = inst.imm
        run_h = None
        trace_h = None

        # ---------------- integer ALU ----------------
        if op is Op.ADDU or op is Op.ADD:
            if rd:
                def run_h(regs=regs, rd=rd, rs=rs, rt=rt, ni=ni):
                    regs[rd] = (regs[rs] + regs[rt]) & MASK32
                    return ni
        elif op is Op.ADDIU or op is Op.ADDI:
            if rt:
                def run_h(regs=regs, rt=rt, rs=rs, imm=imm, ni=ni):
                    regs[rt] = (regs[rs] + imm) & MASK32
                    return ni
        elif op is Op.SUBU or op is Op.SUB:
            if rd:
                def run_h(regs=regs, rd=rd, rs=rs, rt=rt, ni=ni):
                    regs[rd] = (regs[rs] - regs[rt]) & MASK32
                    return ni
        elif op is Op.AND:
            if rd:
                def run_h(regs=regs, rd=rd, rs=rs, rt=rt, ni=ni):
                    regs[rd] = regs[rs] & regs[rt]
                    return ni
        elif op is Op.OR:
            if rd:
                def run_h(regs=regs, rd=rd, rs=rs, rt=rt, ni=ni):
                    regs[rd] = regs[rs] | regs[rt]
                    return ni
        elif op is Op.XOR:
            if rd:
                def run_h(regs=regs, rd=rd, rs=rs, rt=rt, ni=ni):
                    regs[rd] = regs[rs] ^ regs[rt]
                    return ni
        elif op is Op.NOR:
            if rd:
                def run_h(regs=regs, rd=rd, rs=rs, rt=rt, ni=ni):
                    regs[rd] = ~(regs[rs] | regs[rt]) & MASK32
                    return ni
        elif op is Op.SLT:
            if rd:
                def run_h(regs=regs, rd=rd, rs=rs, rt=rt, ni=ni,
                          s32=to_signed32):
                    regs[rd] = int(s32(regs[rs]) < s32(regs[rt]))
                    return ni
        elif op is Op.SLTU:
            if rd:
                def run_h(regs=regs, rd=rd, rs=rs, rt=rt, ni=ni):
                    regs[rd] = int(regs[rs] < regs[rt])
                    return ni
        elif op is Op.SLTI:
            if rt:
                def run_h(regs=regs, rt=rt, rs=rs, imm=imm, ni=ni,
                          s32=to_signed32):
                    regs[rt] = int(s32(regs[rs]) < imm)
                    return ni
        elif op is Op.SLTIU:
            if rt:
                uimm = imm & MASK32
                def run_h(regs=regs, rt=rt, rs=rs, uimm=uimm, ni=ni):
                    regs[rt] = int(regs[rs] < uimm)
                    return ni
        elif op is Op.ANDI:
            if rt:
                m = imm & 0xFFFF
                def run_h(regs=regs, rt=rt, rs=rs, m=m, ni=ni):
                    regs[rt] = regs[rs] & m
                    return ni
        elif op is Op.ORI:
            if rt:
                m = imm & 0xFFFF
                def run_h(regs=regs, rt=rt, rs=rs, m=m, ni=ni):
                    regs[rt] = regs[rs] | m
                    return ni
        elif op is Op.XORI:
            if rt:
                m = imm & 0xFFFF
                def run_h(regs=regs, rt=rt, rs=rs, m=m, ni=ni):
                    regs[rt] = regs[rs] ^ m
                    return ni
        elif op is Op.LUI:
            if rt:
                value = (imm & 0xFFFF) << 16
                def run_h(regs=regs, rt=rt, value=value, ni=ni):
                    regs[rt] = value
                    return ni
        elif op is Op.SLL:
            if rd:
                sh = imm & 31
                def run_h(regs=regs, rd=rd, rt=rt, sh=sh, ni=ni):
                    regs[rd] = (regs[rt] << sh) & MASK32
                    return ni
        elif op is Op.SRL:
            if rd:
                sh = imm & 31
                def run_h(regs=regs, rd=rd, rt=rt, sh=sh, ni=ni):
                    regs[rd] = regs[rt] >> sh
                    return ni
        elif op is Op.SRA:
            if rd:
                sh = imm & 31
                def run_h(regs=regs, rd=rd, rt=rt, sh=sh, ni=ni,
                          s32=to_signed32):
                    regs[rd] = (s32(regs[rt]) >> sh) & MASK32
                    return ni
        elif op is Op.SLLV:
            if rd:
                def run_h(regs=regs, rd=rd, rs=rs, rt=rt, ni=ni):
                    regs[rd] = (regs[rs] << (regs[rt] & 31)) & MASK32
                    return ni
        elif op is Op.SRLV:
            if rd:
                def run_h(regs=regs, rd=rd, rs=rs, rt=rt, ni=ni):
                    regs[rd] = regs[rs] >> (regs[rt] & 31)
                    return ni
        elif op is Op.SRAV:
            if rd:
                def run_h(regs=regs, rd=rd, rs=rs, rt=rt, ni=ni,
                          s32=to_signed32):
                    regs[rd] = (s32(regs[rs]) >> (regs[rt] & 31)) & MASK32
                    return ni

        # ---------------- loads and stores ----------------
        elif info.mem_width:
            run_h, trace_h = _compile_mem(
                cpu, inst, info, i, TraceRecord, state, regs, fregs,
                mem_read, mem_write, read_u32, write_u32,
                read_double, write_double, sp_value, pc,
            )

        # ---------------- branches ----------------
        elif op in (Op.BEQ, Op.BNE, Op.BLEZ, Op.BGTZ, Op.BLTZ, Op.BGEZ,
                    Op.BC1T, Op.BC1F):
            run_h, trace_h = _compile_branch(
                op, inst, i, TraceRecord, state, regs, text_base,
                n_insts, pc,
            )

        # ---------------- jumps ----------------
        elif op in (Op.J, Op.JAL, Op.JR, Op.JALR):
            run_h, trace_h = _compile_jump(
                op, inst, i, TraceRecord, state, regs, text_base,
                n_insts, pc,
            )

        # ---------------- multiply / divide ----------------
        elif op is Op.MULT:
            def run_h(regs=regs, state=state, rs=rs, rt=rt, ni=ni,
                      s32=to_signed32):
                product = s32(regs[rs]) * s32(regs[rt])
                state.lo = product & MASK32
                state.hi = (product >> 32) & MASK32
                return ni
        elif op is Op.MULTU:
            def run_h(regs=regs, state=state, rs=rs, rt=rt, ni=ni):
                product = regs[rs] * regs[rt]
                state.lo = product & MASK32
                state.hi = (product >> 32) & MASK32
                return ni
        elif op is Op.DIV:
            def run_h(regs=regs, state=state, rs=rs, rt=rt, ni=ni,
                      s32=to_signed32):
                dividend = s32(regs[rs])
                divisor = s32(regs[rt])
                if divisor == 0:
                    state.lo = 0
                    state.hi = 0
                else:
                    quotient = abs(dividend) // abs(divisor)
                    if (dividend < 0) != (divisor < 0):
                        quotient = -quotient
                    state.lo = quotient & MASK32
                    state.hi = (dividend - quotient * divisor) & MASK32
                return ni
        elif op is Op.DIVU:
            def run_h(regs=regs, state=state, rs=rs, rt=rt, ni=ni):
                divisor = regs[rt]
                if divisor == 0:
                    state.lo = 0
                    state.hi = 0
                else:
                    state.lo = regs[rs] // divisor
                    state.hi = regs[rs] % divisor
                return ni
        elif op is Op.MFHI:
            if rd:
                def run_h(regs=regs, state=state, rd=rd, ni=ni):
                    regs[rd] = state.hi
                    return ni
        elif op is Op.MFLO:
            if rd:
                def run_h(regs=regs, state=state, rd=rd, ni=ni):
                    regs[rd] = state.lo
                    return ni

        # ---------------- floating point ----------------
        elif op is Op.ADD_D:
            fd, fs, ft = inst.fd, inst.fs, inst.ft
            def run_h(fregs=fregs, fd=fd, fs=fs, ft=ft, ni=ni):
                fregs[fd] = float(fregs[fs]) + float(fregs[ft])
                return ni
        elif op is Op.SUB_D:
            fd, fs, ft = inst.fd, inst.fs, inst.ft
            def run_h(fregs=fregs, fd=fd, fs=fs, ft=ft, ni=ni):
                fregs[fd] = float(fregs[fs]) - float(fregs[ft])
                return ni
        elif op is Op.MUL_D:
            fd, fs, ft = inst.fd, inst.fs, inst.ft
            def run_h(fregs=fregs, fd=fd, fs=fs, ft=ft, ni=ni):
                fregs[fd] = float(fregs[fs]) * float(fregs[ft])
                return ni
        elif op is Op.DIV_D:
            fd, fs, ft = inst.fd, inst.fs, inst.ft
            def run_h(fregs=fregs, fd=fd, fs=fs, ft=ft, ni=ni):
                divisor = float(fregs[ft])
                if divisor == 0.0:
                    fregs[fd] = (float("inf") if float(fregs[fs]) >= 0
                                 else float("-inf"))
                else:
                    fregs[fd] = float(fregs[fs]) / divisor
                return ni
        elif op is Op.NEG_D:
            fd, fs = inst.fd, inst.fs
            def run_h(fregs=fregs, fd=fd, fs=fs, ni=ni):
                fregs[fd] = -float(fregs[fs])
                return ni
        elif op is Op.ABS_D:
            fd, fs = inst.fd, inst.fs
            def run_h(fregs=fregs, fd=fd, fs=fs, ni=ni):
                fregs[fd] = abs(float(fregs[fs]))
                return ni
        elif op is Op.MOV_D:
            fd, fs = inst.fd, inst.fs
            def run_h(fregs=fregs, fd=fd, fs=fs, ni=ni):
                fregs[fd] = fregs[fs]
                return ni
        elif op is Op.SQRT_D:
            fd, fs = inst.fd, inst.fs
            def run_h(fregs=fregs, fd=fd, fs=fs, ni=ni):
                value = float(fregs[fs])
                if value < 0:
                    raise SimulationError("sqrt.d of negative value")
                fregs[fd] = value ** 0.5
                return ni
        elif op is Op.CVT_D_W:
            fd, fs = inst.fd, inst.fs
            def run_h(fregs=fregs, fd=fd, fs=fs, ni=ni, s32=to_signed32):
                fregs[fd] = float(s32(int(fregs[fs])))
                return ni
        elif op is Op.CVT_W_D or op is Op.TRUNC_W_D:
            fd, fs = inst.fd, inst.fs
            def run_h(fregs=fregs, fd=fd, fs=fs, ni=ni):
                fregs[fd] = int(float(fregs[fs]))
                return ni
        elif op is Op.MTC1:
            fs = inst.fs
            def run_h(fregs=fregs, regs=regs, fs=fs, rt=rt, ni=ni):
                fregs[fs] = regs[rt]
                return ni
        elif op is Op.MFC1:
            fs = inst.fs
            if rd:
                def run_h(regs=regs, fregs=fregs, rd=rd, fs=fs, ni=ni):
                    regs[rd] = int(fregs[fs]) & MASK32
                    return ni
            else:
                # destination is $zero: the int() conversion still runs
                # (it can raise on inf/nan, exactly as the legacy path).
                def run_h(fregs=fregs, fs=fs, ni=ni):
                    int(fregs[fs])
                    return ni
        elif op is Op.C_EQ_D:
            fs, ft = inst.fs, inst.ft
            def run_h(fregs=fregs, state=state, fs=fs, ft=ft, ni=ni):
                state.fcc = float(fregs[fs]) == float(fregs[ft])
                return ni
        elif op is Op.C_LT_D:
            fs, ft = inst.fs, inst.ft
            def run_h(fregs=fregs, state=state, fs=fs, ft=ft, ni=ni):
                state.fcc = float(fregs[fs]) < float(fregs[ft])
                return ni
        elif op is Op.C_LE_D:
            fs, ft = inst.fs, inst.ft
            def run_h(fregs=fregs, state=state, fs=fs, ft=ft, ni=ni):
                state.fcc = float(fregs[fs]) <= float(fregs[ft])
                return ni

        # ---------------- system ----------------
        elif op is Op.SYSCALL:
            def run_h(cpu=cpu, state=state, pc=pc, pc4=pc4, ni=ni):
                # legacy step() leaves state.pc at the syscall's own pc
                # while the handler runs (obs Syscall events carry it)
                state.pc = pc
                handle_syscall(cpu)
                if cpu.halted:
                    state.pc = pc4
                    return HALT
                return ni
        elif op is Op.NOP:
            pass  # compiled to the shared fall-through below
        elif op is Op.BREAK:
            def run_h(pc=pc):
                raise SimulationError(f"break at pc 0x{pc:08x}")
        else:  # pragma: no cover - opcode table is exhaustive
            name = op.name
            def run_h(name=name):
                raise SimulationError(f"unimplemented opcode {name}")

        if run_h is None:
            # architectural no-op (nop, or a write to $zero with no
            # observable side effect): just fall through
            def run_h(ni=ni):
                return ni
        run_table.append(run_h)
        trace_table.append(trace_h if trace_h is not None else run_h)

    return run_table, trace_table


# ---------------------------------------------------------------------- #
# memory handlers


def _compile_mem(cpu, inst, info, i, TraceRecord, state, regs, fregs,
                 mem_read, mem_write, read_u32, write_u32,
                 read_double, write_double, sp_value, pc):
    """Compile one load/store into (run, trace) closures."""
    ni = i + 1
    pc4 = pc + 4
    rs = inst.rs
    rt = inst.rt
    rx = inst.rx
    ft = inst.ft
    imm = inst.imm
    mode = info.mem_mode
    width = info.mem_width
    signed = info.mem_signed
    is_load = info.is_load
    fp = info.mem_fp
    track_sp = rs == Reg.SP

    # One access closure: ea -> None (side effects only). The loaded
    # value is written to its destination inside; writes to $zero are
    # discarded but the read (and any fault it raises) still happens.
    if is_load:
        if fp:
            def access(ea, fregs=fregs, ft=ft, read_double=read_double):
                fregs[ft] = read_double(ea)
        elif width == 4:
            if rt:
                def access(ea, regs=regs, rt=rt, read_u32=read_u32):
                    # == read(ea, 4, signed=True) & MASK32
                    regs[rt] = read_u32(ea)
            else:
                def access(ea, read_u32=read_u32):
                    read_u32(ea)
        else:
            if rt:
                def access(ea, regs=regs, rt=rt, mem_read=mem_read,
                           width=width, signed=signed):
                    regs[rt] = mem_read(ea, width, signed) & MASK32
            else:
                def access(ea, mem_read=mem_read, width=width, signed=signed):
                    mem_read(ea, width, signed)
    else:
        if fp:
            def access(ea, fregs=fregs, ft=ft, write_double=write_double):
                write_double(ea, float(fregs[ft]))
        elif width == 4:
            def access(ea, regs=regs, rt=rt, write_u32=write_u32):
                write_u32(ea, regs[rt])
        else:
            def access(ea, regs=regs, rt=rt, mem_write=mem_write,
                       width=width):
                mem_write(ea, width, regs[rt])

    if track_sp:
        def check_sp(base, cpu=cpu, sp_value=sp_value):
            if base < cpu.sp_min:
                cpu.sp_min = base
                if sp_value - base > STACK_LIMIT:
                    raise SimulationError("stack overflow")
    else:
        check_sp = None

    if mode == "c":
        # lw/sw (register + constant) dominate the workload mix: give
        # them run variants that skip the access() indirection entirely.
        if not fp and width == 4 and (is_load and rt or not is_load):
            if is_load:
                if check_sp is None:
                    def run_h(regs=regs, rs=rs, rt=rt, imm=imm,
                              read_u32=read_u32, ni=ni):
                        regs[rt] = read_u32((regs[rs] + imm) & MASK32)
                        return ni
                else:
                    def run_h(regs=regs, rs=rs, rt=rt, imm=imm,
                              read_u32=read_u32, check_sp=check_sp, ni=ni):
                        base = regs[rs]
                        regs[rt] = read_u32((base + imm) & MASK32)
                        check_sp(base)
                        return ni
            else:
                if check_sp is None:
                    def run_h(regs=regs, rs=rs, rt=rt, imm=imm,
                              write_u32=write_u32, ni=ni):
                        write_u32((regs[rs] + imm) & MASK32, regs[rt])
                        return ni
                else:
                    def run_h(regs=regs, rs=rs, rt=rt, imm=imm,
                              write_u32=write_u32, check_sp=check_sp, ni=ni):
                        base = regs[rs]
                        write_u32((base + imm) & MASK32, regs[rt])
                        check_sp(base)
                        return ni
        elif check_sp is None:
            def run_h(regs=regs, rs=rs, imm=imm, access=access, ni=ni):
                access((regs[rs] + imm) & MASK32)
                return ni
        else:
            def run_h(regs=regs, rs=rs, imm=imm, access=access, ni=ni,
                      check_sp=check_sp):
                base = regs[rs]
                access((base + imm) & MASK32)
                check_sp(base)
                return ni

        if check_sp is None:
            def trace_h(regs=regs, rs=rs, imm=imm, access=access,
                        TR=TraceRecord, pc=pc, inst=inst, pc4=pc4):
                base = regs[rs]
                ea = (base + imm) & MASK32
                access(ea)
                return TR(pc, inst, ea, base, imm, None, pc4)
        else:
            def trace_h(regs=regs, rs=rs, imm=imm, access=access,
                        check_sp=check_sp, TR=TraceRecord, pc=pc,
                        inst=inst, pc4=pc4):
                base = regs[rs]
                ea = (base + imm) & MASK32
                access(ea)
                check_sp(base)
                return TR(pc, inst, ea, base, imm, None, pc4)
    elif mode == "x":
        def run_h(regs=regs, rs=rs, rx=rx, access=access, ni=ni,
                  check_sp=check_sp):
            base = regs[rs]
            access((base + regs[rx]) & MASK32)
            if check_sp is not None:
                check_sp(base)
            return ni

        def trace_h(regs=regs, rs=rs, rx=rx, access=access,
                    check_sp=check_sp, TR=TraceRecord, pc=pc, inst=inst,
                    pc4=pc4):
            base = regs[rs]
            offset = regs[rx]
            ea = (base + offset) & MASK32
            access(ea)
            if check_sp is not None:
                check_sp(base)
            return TR(pc, inst, ea, base, offset, None, pc4)
    else:  # post-increment: address is the raw base register
        postinc = rs != 0  # a $zero base is re-zeroed by the legacy loop

        def run_h(regs=regs, rs=rs, imm=imm, access=access, ni=ni,
                  check_sp=check_sp, postinc=postinc):
            base = regs[rs]
            access(base)
            if postinc:
                regs[rs] = (base + imm) & MASK32
            if check_sp is not None:
                check_sp(base)
            return ni

        def trace_h(regs=regs, rs=rs, imm=imm, access=access,
                    check_sp=check_sp, postinc=postinc, TR=TraceRecord,
                    pc=pc, inst=inst, pc4=pc4):
            base = regs[rs]
            access(base)
            if postinc:
                regs[rs] = (base + imm) & MASK32
            if check_sp is not None:
                check_sp(base)
            return TR(pc, inst, base, base, 0, None, pc4)

    return run_h, trace_h


# ---------------------------------------------------------------------- #
# control-flow handlers


def _branch_cond(op, regs, state, rs, rt):
    """Taken-condition closure for one conditional branch (build-time
    helper; the fast run variants inline these tests instead)."""
    if op is Op.BEQ:
        return lambda: regs[rs] == regs[rt]
    if op is Op.BNE:
        return lambda: regs[rs] != regs[rt]
    if op is Op.BLEZ:
        # signed <= 0 on the unsigned view: zero, or sign bit set
        return lambda: not 0 < regs[rs] < SIGN32
    if op is Op.BGTZ:
        return lambda: 0 < regs[rs] < SIGN32
    if op is Op.BLTZ:
        return lambda: regs[rs] >= SIGN32
    if op is Op.BGEZ:
        return lambda: regs[rs] < SIGN32
    if op is Op.BC1T:
        return lambda: state.fcc
    return lambda: not state.fcc  # BC1F


def _compile_branch(op, inst, i, TraceRecord, state, regs, text_base,
                    n_insts, pc):
    ni = i + 1
    pc4 = pc + 4
    rs = inst.rs
    rt = inst.rt
    target = inst.target
    tidx = (target - text_base) >> 2

    if not 0 <= tidx < n_insts:
        # a static target outside the text segment: the linker never
        # produces one, so a slow generic handler is fine
        cond = _branch_cond(op, regs, state, rs, rt)

        def run_h(cond=cond, state=state, target=target, ni=ni):
            if cond():
                state.pc = target
                return OFF_TEXT
            return ni

        def trace_h(cond=cond, TR=TraceRecord, pc=pc, inst=inst,
                    target=target, pc4=pc4):
            if cond():
                return TR(pc, inst, None, 0, 0, True, target)
            return TR(pc, inst, None, 0, 0, False, pc4)

        return run_h, trace_h

    if op is Op.BEQ:
        def run_h(regs=regs, rs=rs, rt=rt, tidx=tidx, ni=ni):
            return tidx if regs[rs] == regs[rt] else ni

        def trace_h(regs=regs, rs=rs, rt=rt, TR=TraceRecord, pc=pc,
                    inst=inst, target=target, pc4=pc4):
            if regs[rs] == regs[rt]:
                return TR(pc, inst, None, 0, 0, True, target)
            return TR(pc, inst, None, 0, 0, False, pc4)
    elif op is Op.BNE:
        def run_h(regs=regs, rs=rs, rt=rt, tidx=tidx, ni=ni):
            return tidx if regs[rs] != regs[rt] else ni

        def trace_h(regs=regs, rs=rs, rt=rt, TR=TraceRecord, pc=pc,
                    inst=inst, target=target, pc4=pc4):
            if regs[rs] != regs[rt]:
                return TR(pc, inst, None, 0, 0, True, target)
            return TR(pc, inst, None, 0, 0, False, pc4)
    elif op is Op.BLEZ:
        def run_h(regs=regs, rs=rs, tidx=tidx, ni=ni):
            return ni if 0 < regs[rs] < SIGN32 else tidx

        def trace_h(regs=regs, rs=rs, TR=TraceRecord, pc=pc, inst=inst,
                    target=target, pc4=pc4):
            if 0 < regs[rs] < SIGN32:
                return TR(pc, inst, None, 0, 0, False, pc4)
            return TR(pc, inst, None, 0, 0, True, target)
    elif op is Op.BGTZ:
        def run_h(regs=regs, rs=rs, tidx=tidx, ni=ni):
            return tidx if 0 < regs[rs] < SIGN32 else ni

        def trace_h(regs=regs, rs=rs, TR=TraceRecord, pc=pc, inst=inst,
                    target=target, pc4=pc4):
            if 0 < regs[rs] < SIGN32:
                return TR(pc, inst, None, 0, 0, True, target)
            return TR(pc, inst, None, 0, 0, False, pc4)
    elif op is Op.BLTZ:
        def run_h(regs=regs, rs=rs, tidx=tidx, ni=ni):
            return tidx if regs[rs] >= SIGN32 else ni

        def trace_h(regs=regs, rs=rs, TR=TraceRecord, pc=pc, inst=inst,
                    target=target, pc4=pc4):
            if regs[rs] >= SIGN32:
                return TR(pc, inst, None, 0, 0, True, target)
            return TR(pc, inst, None, 0, 0, False, pc4)
    elif op is Op.BGEZ:
        def run_h(regs=regs, rs=rs, tidx=tidx, ni=ni):
            return tidx if regs[rs] < SIGN32 else ni

        def trace_h(regs=regs, rs=rs, TR=TraceRecord, pc=pc, inst=inst,
                    target=target, pc4=pc4):
            if regs[rs] < SIGN32:
                return TR(pc, inst, None, 0, 0, True, target)
            return TR(pc, inst, None, 0, 0, False, pc4)
    elif op is Op.BC1T:
        def run_h(state=state, tidx=tidx, ni=ni):
            return tidx if state.fcc else ni

        def trace_h(state=state, TR=TraceRecord, pc=pc, inst=inst,
                    target=target, pc4=pc4):
            if state.fcc:
                return TR(pc, inst, None, 0, 0, True, target)
            return TR(pc, inst, None, 0, 0, False, pc4)
    else:  # BC1F
        def run_h(state=state, tidx=tidx, ni=ni):
            return ni if state.fcc else tidx

        def trace_h(state=state, TR=TraceRecord, pc=pc, inst=inst,
                    target=target, pc4=pc4):
            if state.fcc:
                return TR(pc, inst, None, 0, 0, False, pc4)
            return TR(pc, inst, None, 0, 0, True, target)

    return run_h, trace_h


def _compile_jump(op, inst, i, TraceRecord, state, regs, text_base,
                  n_insts, pc):
    pc4 = pc + 4
    rd = inst.rd
    rs = inst.rs
    target = inst.target
    ra = pc4 & MASK32

    if op is Op.J or op is Op.JAL:
        tidx = (target - text_base) >> 2
        valid = 0 <= tidx < n_insts
        link = op is Op.JAL
        if valid:
            if link:
                def run_h(regs=regs, tidx=tidx, ra=ra):
                    regs[31] = ra
                    return tidx
            else:
                def run_h(tidx=tidx):
                    return tidx
        else:
            def run_h(regs=regs, state=state, target=target, ra=ra,
                      link=link):
                if link:
                    regs[31] = ra
                state.pc = target
                return OFF_TEXT

        if link:
            def trace_h(regs=regs, ra=ra, TR=TraceRecord, pc=pc,
                        inst=inst, target=target):
                regs[31] = ra
                return TR(pc, inst, None, 0, 0, True, target)
        else:
            def trace_h(TR=TraceRecord, pc=pc, inst=inst, target=target):
                return TR(pc, inst, None, 0, 0, True, target)
        return run_h, trace_h

    if op is Op.JR:
        def run_h(regs=regs, state=state, rs=rs, text_base=text_base,
                  n_insts=n_insts):
            npc = regs[rs]
            idx = (npc - text_base) >> 2
            if 0 <= idx < n_insts:
                return idx
            state.pc = npc
            return OFF_TEXT

        def trace_h(regs=regs, rs=rs, TR=TraceRecord, pc=pc, inst=inst):
            return TR(pc, inst, None, 0, 0, True, regs[rs])
        return run_h, trace_h

    # JALR: link first, then read the jump target -- so jalr with
    # rd == rs (including $0, $0) reads the just-written value, exactly
    # like the legacy write-then-read through regs.
    if rd:
        def run_h(regs=regs, state=state, rd=rd, rs=rs, ra=ra,
                  text_base=text_base, n_insts=n_insts):
            regs[rd] = ra
            npc = regs[rs]
            idx = (npc - text_base) >> 2
            if 0 <= idx < n_insts:
                return idx
            state.pc = npc
            return OFF_TEXT

        def trace_h(regs=regs, rd=rd, rs=rs, ra=ra, TR=TraceRecord,
                    pc=pc, inst=inst):
            regs[rd] = ra
            return TR(pc, inst, None, 0, 0, True, regs[rs])
    else:
        # rd is $zero: the legacy loop wrote pc+4 into regs[0], read the
        # target, then re-zeroed regs[0]. With rs == 0 the target IS the
        # link value; with rs != 0 the write was invisible.
        npc_const = ra if rs == 0 else None
        if npc_const is not None:
            tidx = (npc_const - text_base) >> 2
            valid = 0 <= tidx < n_insts
            if valid:
                def run_h(tidx=tidx):
                    return tidx
            else:
                def run_h(state=state, npc=npc_const):
                    state.pc = npc
                    return OFF_TEXT

            def trace_h(TR=TraceRecord, pc=pc, inst=inst, npc=npc_const):
                return TR(pc, inst, None, 0, 0, True, npc)
        else:
            def run_h(regs=regs, state=state, rs=rs, text_base=text_base,
                      n_insts=n_insts):
                npc = regs[rs]
                idx = (npc - text_base) >> 2
                if 0 <= idx < n_insts:
                    return idx
                state.pc = npc
                return OFF_TEXT

            def trace_h(regs=regs, rs=rs, TR=TraceRecord, pc=pc,
                        inst=inst):
                return TR(pc, inst, None, 0, 0, True, regs[rs])
    return run_h, trace_h
