"""Binary trace files: record one functional execution, replay it into
many timing configurations.

The classic trace-driven workflow (which the paper's own tooling used):
the architectural simulation is the expensive part, so capture its
output once and drive every timing experiment from the file. A trace
stores only what the timing model needs per retired instruction --
``(text index, effective address, base value, offset value, branch
outcome, next pc)`` -- and is replayed against the *same* linked
program, which supplies the instruction objects. A CRC of the text
segment guards against replaying a trace into the wrong binary.

Format: gzip-compressed stream of fixed-size little-endian records after
a small header. ~19 bytes/record before compression.
"""

from __future__ import annotations

import gzip
import struct
import zlib
from typing import Iterator

from repro.cpu.executor import CPU, TraceRecord
from repro.errors import SimulationError
from repro.isa.opcodes import OP_INFO
from repro.isa.program import Program

_MAGIC = b"FACT"   # Fast Address Calculation Trace
_VERSION = 1
_HEADER = struct.Struct("<4sHHIII")   # magic, version, pad, crc, reserved, entry
# index(u32) ea(u32) base(u32) offset(i32) flags(u8) next_delta(i16)
_RECORD = struct.Struct("<IIIiBh")

_FLAG_HAS_EA = 1
_FLAG_TAKEN = 2
_FLAG_HAS_TAKEN = 4
_FLAG_FAR_TARGET = 8   # next pc stored as an extra u32

_U32 = struct.Struct("<I")


def program_crc(program: Program) -> int:
    """A cheap fingerprint of the text segment."""
    crc = zlib.crc32(struct.pack("<III", program.text_base, program.entry,
                                 len(program.instructions)))
    for inst in program.instructions[:256]:
        crc = zlib.crc32(struct.pack("<IB", inst.addr, int(inst.op) & 0xFF), crc)
    return crc & 0xFFFFFFFF


class _TraceWriter:
    """Streaming consumer (see :meth:`CPU.run_trace`) that serializes
    records as they retire.

    A plain record's bytes depend only on its pc -- ``(index, 0, 0, 0,
    flags=0, delta=1)`` -- so they are packed once per static
    instruction and reused. Writes are batched; zlib's output is
    independent of write chunking, so the compressed stream is
    byte-identical to the legacy record-at-a-time writer.
    """

    __slots__ = ("_stream", "_text_base", "_plain", "_chunks", "count")

    _FLUSH_EVERY = 4096  # records buffered between stream writes

    def __init__(self, stream, text_base: int):
        self._stream = stream
        self._text_base = text_base
        self._plain: dict[int, bytes] = {}
        self._chunks: list[bytes] = []
        self.count = 0

    def trace_plain(self, pc, inst) -> None:
        data = self._plain.get(pc)
        if data is None:
            data = self._plain[pc] = _RECORD.pack(
                (pc - self._text_base) >> 2, 0, 0, 0, 0, 1)
        chunks = self._chunks
        chunks.append(data)
        self.count += 1
        if len(chunks) >= self._FLUSH_EVERY:
            self._stream.write(b"".join(chunks))
            del chunks[:]

    def _append(self, rec) -> None:
        flags = 0
        ea = 0
        if rec.ea is not None:
            flags |= _FLAG_HAS_EA
            ea = rec.ea
        if rec.taken is not None:
            flags |= _FLAG_HAS_TAKEN
            if rec.taken:
                flags |= _FLAG_TAKEN
        delta = rec.next_pc - rec.pc
        far = not (-32768 <= delta // 4 < 32768) or delta % 4 != 0
        if far:
            flags |= _FLAG_FAR_TARGET
        chunks = self._chunks
        chunks.append(_RECORD.pack(
            (rec.pc - self._text_base) >> 2, ea, rec.base_value,
            rec.offset_value if -(2**31) <= rec.offset_value < 2**31
            else rec.offset_value - 2**32,
            flags, 0 if far else delta // 4,
        ))
        if far:
            chunks.append(_U32.pack(rec.next_pc))
        self.count += 1
        if len(chunks) >= self._FLUSH_EVERY:
            self._stream.write(b"".join(chunks))
            del chunks[:]

    trace_mem = _append
    trace_branch = _append

    def flush(self) -> None:
        if self._chunks:
            self._stream.write(b"".join(self._chunks))
            del self._chunks[:]


def record_trace(program: Program, path: str,
                 max_instructions: int = 50_000_000,
                 cpu: CPU | None = None,
                 engine: str = "predecoded") -> int:
    """Execute ``program`` and write its trace to ``path``; returns the
    number of instructions recorded.

    Pass a fresh ``cpu`` to keep the executor afterwards -- the farm
    reads ``memory_usage`` and captured stdout off it for the trace
    artifact's metadata. Both engines produce byte-identical files:
    the gzip header is written with a zero mtime and no embedded
    filename, so the bytes are a pure function of the execution."""
    if cpu is None:
        cpu = CPU(program)
    text_base = program.text_base
    with open(path, "wb") as raw, \
            gzip.GzipFile(filename="", mode="wb", fileobj=raw,
                          mtime=0) as stream:
        stream.write(_HEADER.pack(_MAGIC, _VERSION, 0, program_crc(program),
                                  0, program.entry))
        if engine == "step":
            count = 0
            budget = max_instructions
            while not cpu.halted and budget > 0:
                rec = cpu.step()
                budget -= 1
                count += 1
                flags = 0
                ea = 0
                if rec.ea is not None:
                    flags |= _FLAG_HAS_EA
                    ea = rec.ea
                if rec.taken is not None:
                    flags |= _FLAG_HAS_TAKEN
                    if rec.taken:
                        flags |= _FLAG_TAKEN
                delta = rec.next_pc - rec.pc
                far = not (-32768 <= delta // 4 < 32768) or delta % 4 != 0
                if far:
                    flags |= _FLAG_FAR_TARGET
                stream.write(_RECORD.pack(
                    (rec.pc - text_base) >> 2, ea, rec.base_value,
                    rec.offset_value if -(2**31) <= rec.offset_value < 2**31
                    else rec.offset_value - 2**32,
                    flags, 0 if far else delta // 4,
                ))
                if far:
                    stream.write(struct.pack("<I", rec.next_pc))
        else:
            writer = _TraceWriter(stream, text_base)
            cpu.run_trace(writer, max_instructions)
            writer.flush()
            count = writer.count
    return count


def _read(stream, size: int, path: str) -> bytes:
    """Read from the compressed stream, converting gzip-level corruption
    (bad magic, CRC failure, truncated member) into SimulationError."""
    try:
        return stream.read(size)
    except (OSError, EOFError) as exc:
        raise SimulationError(f"{path}: corrupt trace file ({exc})") from exc


def replay_trace(program: Program, path: str) -> Iterator[TraceRecord]:
    """Yield the recorded trace as :class:`TraceRecord` objects."""
    instructions = program.instructions
    text_base = program.text_base
    with gzip.open(path, "rb") as stream:
        header = _read(stream, _HEADER.size, path)
        if len(header) != _HEADER.size:
            raise SimulationError(f"{path}: truncated trace header")
        magic, version, __, crc, __reserved, entry = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise SimulationError(f"{path}: not a trace file")
        if version != _VERSION:
            raise SimulationError(f"{path}: unsupported trace version {version}")
        if crc != program_crc(program):
            raise SimulationError(
                f"{path}: trace was recorded against a different program"
            )
        if entry != program.entry:
            raise SimulationError(f"{path}: entry point mismatch")
        while True:
            raw = _read(stream, _RECORD.size, path)
            if not raw:
                return
            if len(raw) != _RECORD.size:
                raise SimulationError(f"{path}: truncated trace record")
            index, ea, base, offset, flags, delta = _RECORD.unpack(raw)
            pc = text_base + index * 4
            if flags & _FLAG_FAR_TARGET:
                extra = _read(stream, 4, path)
                if len(extra) != 4:
                    raise SimulationError(
                        f"{path}: truncated far-target record"
                    )
                next_pc = struct.unpack("<I", extra)[0]
            else:
                next_pc = pc + delta * 4
            taken = None
            if flags & _FLAG_HAS_TAKEN:
                taken = bool(flags & _FLAG_TAKEN)
            inst = instructions[index]
            # index-register offsets are register *values*: restore the
            # executor's unsigned view (constants stay signed)
            if offset < 0 and inst.info.mem_mode == "x":
                offset &= 0xFFFFFFFF
            yield TraceRecord(
                pc, inst,
                ea if flags & _FLAG_HAS_EA else None,
                base, offset, taken, next_pc,
            )


def replay_into(program: Program, path: str, consumer) -> int:
    """Stream a recorded trace into ``consumer``'s trace hooks.

    The consumer protocol matches :meth:`CPU.run_trace`: optional
    ``trace_plain(pc, inst)`` / ``trace_mem(rec)`` / ``trace_branch(rec)``
    methods, looked up once. No :class:`TraceRecord` is allocated for
    plain records (nor for any record whose hook is absent), and the
    stream is parsed from a buffered window instead of two reads per
    record. Returns the total number of records in the trace.
    """
    instructions = program.instructions
    text_base = program.text_base
    plain_cb = getattr(consumer, "trace_plain", None)
    mem_cb = getattr(consumer, "trace_mem", None)
    branch_cb = getattr(consumer, "trace_branch", None)
    # index-register offsets are register *values*: restore the
    # executor's unsigned view (constants stay signed)
    is_x = [OP_INFO[inst.op].mem_mode == "x" for inst in instructions]
    rec_size = _RECORD.size
    unpack = _RECORD.unpack_from
    count = 0
    with gzip.open(path, "rb") as stream:
        header = _read(stream, _HEADER.size, path)
        if len(header) != _HEADER.size:
            raise SimulationError(f"{path}: truncated trace header")
        magic, version, __, crc, __reserved, entry = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise SimulationError(f"{path}: not a trace file")
        if version != _VERSION:
            raise SimulationError(f"{path}: unsupported trace version {version}")
        if crc != program_crc(program):
            raise SimulationError(
                f"{path}: trace was recorded against a different program"
            )
        if entry != program.entry:
            raise SimulationError(f"{path}: entry point mismatch")
        buf = b""
        pos = 0
        while True:
            if len(buf) - pos < rec_size + 4:
                buf = buf[pos:] + _read(stream, 1 << 18, path)
                pos = 0
                if not buf:
                    return count
                if len(buf) < rec_size:
                    raise SimulationError(f"{path}: truncated trace record")
            index, ea, base, offset, flags, delta = unpack(buf, pos)
            pos += rec_size
            pc = text_base + index * 4
            if flags & _FLAG_FAR_TARGET:
                if len(buf) - pos < 4:
                    buf = buf[pos:] + _read(stream, 1 << 18, path)
                    pos = 0
                    if len(buf) < 4:
                        raise SimulationError(
                            f"{path}: truncated far-target record"
                        )
                next_pc = _U32.unpack_from(buf, pos)[0]
                pos += 4
            else:
                next_pc = pc + delta * 4
            count += 1
            if flags & _FLAG_HAS_EA:
                if mem_cb is not None:
                    if offset < 0 and is_x[index]:
                        offset &= 0xFFFFFFFF
                    mem_cb(TraceRecord(pc, instructions[index], ea, base,
                                       offset, None, next_pc))
            elif flags & _FLAG_HAS_TAKEN:
                if branch_cb is not None:
                    branch_cb(TraceRecord(pc, instructions[index], None,
                                          base, offset,
                                          bool(flags & _FLAG_TAKEN), next_pc))
            elif plain_cb is not None:
                plain_cb(pc, instructions[index])


def simulate_trace(program: Program, path: str, config=None,
                   memory_usage: int = 0):
    """Time a recorded trace on the pipeline model.

    ``memory_usage`` is not in the trace (it is a property of the
    functional run, not of any one record); callers that captured it at
    record time pass it through so the resulting
    :class:`~repro.pipeline.result.SimResult` matches a live
    :func:`~repro.pipeline.pipeline.simulate_program` run exactly."""
    from repro.pipeline.pipeline import PipelineSimulator

    pipe = PipelineSimulator(config)
    replay_into(program, path, pipe)
    return pipe.finalize(memory_usage=memory_usage)
