"""Columnar trace decoding: one vectorized pass over a v1 tracefile.

The record-stream format (:mod:`repro.cpu.tracefile`) is ideal for
*writing* -- the functional simulator streams records as they retire --
but every analysis that replays it pays one Python callback per record.
This module decodes a trace **once** into a structured set of numpy
column arrays (:class:`TraceColumns`): pc-index, effective address,
base value, offset, flags, and next pc. Whole-trace analyses
(:mod:`repro.analysis.batch`) then run as a handful of vectorized
passes over the columns instead of millions of interpreter callbacks.

Columns serialize to a versioned on-disk container
(:data:`COLTRACE_SCHEMA` = ``repro.coltrace/1``): a fixed header, a
JSON descriptor with sorted keys, then the raw little-endian column
buffers in descriptor order. The encoding is deterministic -- a pure
function of the trace -- so the farm can cache the artifact
content-addressed next to its parent tracefile and columnarize each
trace exactly once per sweep (see ``ensure_coltrace`` in
:mod:`repro.farm.jobs`).
"""

from __future__ import annotations

import gzip
import json
import struct
from dataclasses import dataclass, field

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - exercised only without numpy
    raise ImportError(
        "repro.cpu.coltrace requires numpy>=1.24, a declared runtime "
        "dependency of this package (see pyproject.toml / setup.cfg). "
        "Install it with `pip install -e .` from the repository root, or "
        "`pip install 'numpy>=1.24'` directly; docs/performance.md "
        "('Columnar analysis') describes what it is used for."
    ) from exc

from repro.cpu.tracefile import (
    _FLAG_FAR_TARGET,
    _FLAG_HAS_EA,
    _FLAG_HAS_TAKEN,
    _FLAG_TAKEN,
    _HEADER,
    _MAGIC,
    _RECORD,
    _VERSION,
    program_crc,
)
from repro.errors import SimulationError
from repro.isa.program import Program

#: Version tag of the on-disk columnar container. Bump when the column
#: set or encoding changes incompatibly; the farm folds it into the
#: coltrace artifact fingerprint, so a bump invalidates exactly the
#: derived columnar artifacts (never the parent tracefiles).
COLTRACE_SCHEMA = "repro.coltrace/1"

_COL_MAGIC = b"FACL"   # Fast Address Calculation coLumns
_COL_VERSION = 1
_COL_HEADER = struct.Struct("<4sHHI")   # magic, version, pad, json length

#: (name, little-endian dtype) of every stored column, in file order.
_COLUMNS = (
    ("index", "<u4"),     # text-segment word index (pc = text_base + 4*index)
    ("ea", "<u4"),        # effective address (memory records, else 0)
    ("base", "<u4"),      # base register value (memory records, else 0)
    ("offset", "<i4"),    # signed offset / index-register value as stored
    ("flags", "<u1"),     # record flags (HAS_EA / TAKEN / HAS_TAKEN)
    ("next_pc", "<u4"),   # fully resolved next pc (far targets included)
)

#: The packed 19-byte record layout of the v1 stream, as a numpy dtype.
_RECORD_DTYPE = np.dtype({
    "names": ["index", "ea", "base", "offset", "flags", "delta"],
    "formats": ["<u4", "<u4", "<u4", "<i4", "<u1", "<i2"],
    "offsets": [0, 4, 8, 12, 16, 17],
    "itemsize": _RECORD.size,
})

_U32LE = struct.Struct("<I")


@dataclass
class TraceColumns:
    """One decoded trace as column arrays (all the same length).

    ``flags`` keeps the stream's record-type bits verbatim (far-target
    bits are resolved into ``next_pc`` and cleared), so the record kind
    masks below recover exactly the three replay lanes of
    :func:`repro.cpu.tracefile.replay_into`.
    """

    text_base: int
    entry: int
    crc: int
    index: np.ndarray       # uint32
    ea: np.ndarray          # uint32
    base: np.ndarray        # uint32
    offset: np.ndarray      # int32
    flags: np.ndarray       # uint8
    next_pc: np.ndarray     # uint32
    _pc: np.ndarray | None = field(default=None, repr=False)

    @property
    def count(self) -> int:
        return len(self.index)

    def __len__(self) -> int:
        return self.count

    @property
    def pc(self) -> np.ndarray:
        """Per-record pc (uint32), derived from the index column."""
        if self._pc is None:
            self._pc = (self.text_base
                        + self.index.astype(np.int64) * 4).astype(np.uint32)
        return self._pc

    @property
    def is_mem(self) -> np.ndarray:
        """Memory-record mask (the ``trace_mem`` lane)."""
        return (self.flags & _FLAG_HAS_EA) != 0

    @property
    def is_branch(self) -> np.ndarray:
        """Branch-record mask (the ``trace_branch`` lane)."""
        return ((self.flags & _FLAG_HAS_TAKEN) != 0) & ~self.is_mem

    @property
    def taken(self) -> np.ndarray:
        return (self.flags & _FLAG_TAKEN) != 0

    def verify(self, program: Program) -> None:
        """Raise :class:`SimulationError` unless these columns were
        decoded from a trace of ``program`` (same text CRC and entry)."""
        if self.crc != program_crc(program):
            raise SimulationError(
                "columns were decoded from a trace of a different program")
        if self.entry != program.entry:
            raise SimulationError("columns entry point mismatch")


def _validate_header(header: bytes, path: str, program: Program) -> None:
    if len(header) != _HEADER.size:
        raise SimulationError(f"{path}: truncated trace header")
    magic, version, __, crc, __reserved, entry = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise SimulationError(f"{path}: not a trace file")
    if version != _VERSION:
        raise SimulationError(f"{path}: unsupported trace version {version}")
    if crc != program_crc(program):
        raise SimulationError(
            f"{path}: trace was recorded against a different program")
    if entry != program.entry:
        raise SimulationError(f"{path}: entry point mismatch")


def decode_tracefile(program: Program, path: str) -> TraceColumns:
    """Decode one v1 tracefile into :class:`TraceColumns`.

    Header validation matches :func:`repro.cpu.tracefile.replay_into`
    exactly (magic, version, program CRC, entry point). The record
    stream is reinterpreted through a packed structured dtype in one
    ``frombuffer`` per far-target segment -- far targets are the only
    variable-length element, and they are rare (indirect jumps whose
    delta does not fit 16 bits), so decode cost is dominated by the
    gzip inflate.
    """
    try:
        with gzip.open(path, "rb") as stream:
            blob = stream.read()
    except (OSError, EOFError) as exc:
        raise SimulationError(f"{path}: corrupt trace file ({exc})") from exc
    _validate_header(blob[:_HEADER.size], path, program)
    body = memoryview(blob)[_HEADER.size:]
    rec_size = _RECORD.size

    segments: list[np.ndarray] = []
    far_positions: list[int] = []   # record ordinal of each far record
    far_targets: list[int] = []     # its resolved next pc
    pos = 0
    decoded = 0
    while True:
        remaining = len(body) - pos
        n = remaining // rec_size
        if n == 0:
            if remaining:
                raise SimulationError(f"{path}: truncated trace record")
            break
        arr = np.frombuffer(body, dtype=_RECORD_DTYPE, count=n, offset=pos)
        far = np.flatnonzero(arr["flags"] & _FLAG_FAR_TARGET)
        if far.size == 0:
            segments.append(arr)
            decoded += n
            pos += n * rec_size
            continue
        # take records up to and including the first far record, then
        # consume its trailing u32 target and rescan from there
        first = int(far[0])
        segments.append(arr[:first + 1])
        pos += (first + 1) * rec_size
        if len(body) - pos < 4:
            raise SimulationError(f"{path}: truncated far-target record")
        far_positions.append(decoded + first)
        far_targets.append(_U32LE.unpack_from(body, pos)[0])
        decoded += first + 1
        pos += 4

    if segments:
        records = np.concatenate(segments) if len(segments) > 1 \
            else segments[0].copy()
    else:
        records = np.empty(0, dtype=_RECORD_DTYPE)
    index = np.ascontiguousarray(records["index"])
    flags = np.ascontiguousarray(records["flags"])
    pc = program.text_base + index.astype(np.int64) * 4
    next_pc = (pc + records["delta"].astype(np.int64) * 4).astype(np.uint32)
    if far_positions:
        next_pc[np.asarray(far_positions)] = np.asarray(far_targets,
                                                        dtype=np.uint32)
        flags = flags & np.uint8(0xFF ^ _FLAG_FAR_TARGET)
    return TraceColumns(
        text_base=program.text_base,
        entry=program.entry,
        crc=program_crc(program),
        index=index,
        ea=np.ascontiguousarray(records["ea"]),
        base=np.ascontiguousarray(records["base"]),
        offset=np.ascontiguousarray(records["offset"]),
        flags=flags,
        next_pc=next_pc,
    )


# ------------------------------------------------------------------ #
# on-disk container (repro.coltrace/1)

def columns_to_bytes(cols: TraceColumns) -> bytes:
    """Serialize columns as a deterministic ``repro.coltrace/1`` blob."""
    descriptor = {
        "schema": COLTRACE_SCHEMA,
        "text_base": cols.text_base,
        "entry": cols.entry,
        "crc": cols.crc,
        "count": cols.count,
        "columns": [list(col) for col in _COLUMNS],
    }
    encoded = json.dumps(descriptor, sort_keys=True,
                         separators=(",", ":")).encode()
    parts = [_COL_HEADER.pack(_COL_MAGIC, _COL_VERSION, 0, len(encoded)),
             encoded]
    for name, dtype in _COLUMNS:
        array = getattr(cols, name)
        parts.append(np.ascontiguousarray(array,
                                          dtype=np.dtype(dtype)).tobytes())
    return b"".join(parts)


def columns_from_bytes(data: bytes, label: str = "<bytes>") -> TraceColumns:
    """Inverse of :func:`columns_to_bytes`.

    Raises :class:`SimulationError` on any structural corruption; pair
    with :meth:`TraceColumns.verify` before analyzing against a program.
    """
    if len(data) < _COL_HEADER.size:
        raise SimulationError(f"{label}: truncated columnar trace header")
    magic, version, __, desc_len = _COL_HEADER.unpack_from(data)
    if magic != _COL_MAGIC:
        raise SimulationError(f"{label}: not a columnar trace")
    if version != _COL_VERSION:
        raise SimulationError(
            f"{label}: unsupported columnar trace version {version}")
    pos = _COL_HEADER.size
    if len(data) < pos + desc_len:
        raise SimulationError(f"{label}: truncated columnar descriptor")
    try:
        descriptor = json.loads(data[pos:pos + desc_len])
    except ValueError as exc:
        raise SimulationError(
            f"{label}: corrupt columnar descriptor ({exc})") from exc
    if descriptor.get("schema") != COLTRACE_SCHEMA:
        raise SimulationError(
            f"{label}: unsupported columnar schema "
            f"{descriptor.get('schema')!r}")
    pos += desc_len
    count = int(descriptor["count"])
    arrays = {}
    for entry in descriptor["columns"]:
        name, dtype_str = entry
        dtype = np.dtype(dtype_str)
        nbytes = count * dtype.itemsize
        if len(data) < pos + nbytes:
            raise SimulationError(
                f"{label}: truncated columnar payload ({name})")
        arrays[name] = np.frombuffer(data, dtype=dtype, count=count,
                                     offset=pos).copy()
        pos += nbytes
    if pos != len(data):
        raise SimulationError(f"{label}: trailing bytes in columnar trace")
    missing = [name for name, __ in _COLUMNS if name not in arrays]
    if missing:
        raise SimulationError(
            f"{label}: columnar trace missing columns {missing}")
    return TraceColumns(
        text_base=int(descriptor["text_base"]),
        entry=int(descriptor["entry"]),
        crc=int(descriptor["crc"]),
        **{name: arrays[name] for name, __ in _COLUMNS},
    )


def load_columns(program: Program, path: str) -> TraceColumns:
    """Read a ``repro.coltrace/1`` file and verify it against ``program``."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise SimulationError(f"{path}: cannot read columnar trace "
                              f"({exc})") from exc
    cols = columns_from_bytes(data, label=path)
    cols.verify(program)
    return cols
