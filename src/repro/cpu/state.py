"""Architectural register state."""

from __future__ import annotations

from repro.isa.registers import Reg


class ArchState:
    """Integer/FP register files, HI/LO, FP condition flag, and the PC.

    Integer registers hold the *unsigned* 32-bit view (Python ints in
    ``[0, 2**32)``); use :func:`repro.utils.bits.to_signed32` for the
    signed interpretation. FP registers hold Python floats, except when
    an int has been moved in raw via ``mtc1``/``trunc.w.d`` (the value is
    then a Python int until converted).
    """

    __slots__ = ("regs", "fregs", "hi", "lo", "fcc", "pc")

    def __init__(self):
        self.regs = [0] * 32
        self.fregs: list[float | int] = [0.0] * 32
        self.hi = 0
        self.lo = 0
        self.fcc = False
        self.pc = 0

    def reset(self, entry: int, gp: int, sp: int) -> None:
        # in-place: the predecoded handler closures (repro.cpu.predecode)
        # capture these list objects, so they must never be rebound
        self.regs[:] = [0] * 32
        self.fregs[:] = [0.0] * 32
        self.hi = 0
        self.lo = 0
        self.fcc = False
        self.pc = entry
        self.regs[Reg.GP] = gp
        self.regs[Reg.SP] = sp

    def snapshot(self) -> dict:
        """Return a copyable view of the state (used by tests)."""
        return {
            "regs": list(self.regs),
            "fregs": list(self.fregs),
            "hi": self.hi,
            "lo": self.lo,
            "fcc": self.fcc,
            "pc": self.pc,
        }
