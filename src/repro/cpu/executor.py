"""The functional simulator.

``CPU.step()`` executes one instruction and returns a :class:`TraceRecord`
describing what happened -- the effective address and its ingredients for
memory operations, and the control-flow outcome for branches. The timing
simulator (:mod:`repro.pipeline`) and the reference-behaviour analyses
(:mod:`repro.analysis`) are both trace-driven consumers of these records,
which keeps the architectural semantics in exactly one place.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.cpu.state import ArchState
from repro.cpu.syscalls import handle_syscall
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.isa.registers import Reg
from repro.mem.layout import STACK_LIMIT
from repro.mem.memory import Memory
from repro.utils.bits import to_signed32

MASK32 = 0xFFFFFFFF


class TraceRecord:
    """One retired instruction, as seen by trace-driven consumers."""

    __slots__ = ("pc", "inst", "ea", "base_value", "offset_value", "taken", "next_pc")

    def __init__(self, pc, inst, ea, base_value, offset_value, taken, next_pc):
        self.pc = pc
        self.inst = inst
        self.ea = ea                    # effective address or None
        self.base_value = base_value    # value of the base register
        self.offset_value = offset_value  # constant or index-register value
        self.taken = taken              # True/False for branches, None otherwise
        self.next_pc = next_pc

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        extra = f" ea=0x{self.ea:08x}" if self.ea is not None else ""
        return f"<TraceRecord pc=0x{self.pc:08x} {self.inst!r}{extra}>"


class CPU:
    """Architectural simulator bound to one linked program."""

    def __init__(self, program: Program, memory: Memory | None = None,
                 obs=None):
        self.program = program
        self.memory = memory or Memory()
        # Optional EventBus (repro.obs); used for Syscall events.
        self.obs = obs
        self.state = ArchState()
        self.output: list[str] = []
        self.halted = False
        self.exit_code = 0
        self.instructions_retired = 0
        self.heap_base = program.brk
        self.brk = program.brk
        self.heap_peak = program.brk
        self.sp_min = program.sp_value
        self._load_image()
        self.state.reset(program.entry, program.gp_value, program.sp_value)
        self._insts = program.instructions
        self._text_base = program.text_base
        # predecoded handler tables (repro.cpu.predecode), built lazily:
        # many callers only ever step()
        self._tables = None

    def _load_image(self) -> None:
        for address, payload in self.program.data_image:
            self.memory.write_bytes(address, payload)
        for address, size in self.program.bss_spans:
            self.memory.reserve(address, size)

    # ------------------------------------------------------------------ #

    def stdout(self) -> str:
        """Everything the program printed, concatenated."""
        return "".join(self.output)

    @property
    def memory_usage(self) -> int:
        """Bytes of static data + peak heap + peak stack (Table 3 metric)."""
        static = sum(len(p) for _, p in self.program.data_image)
        static += sum(size for _, size in self.program.bss_spans)
        heap = self.heap_peak - self.heap_base
        stack = self.program.sp_value - self.sp_min
        return static + heap + stack

    def run(self, max_instructions: int = 100_000_000,
            engine: str = "predecoded") -> int:
        """Run until exit or the instruction budget; returns retired count.

        ``engine`` selects the interpreter: ``"predecoded"`` (default)
        drives the threaded-dispatch tables of :mod:`repro.cpu.predecode`;
        ``"step"`` keeps the legacy per-instruction decode loop (used by
        the equivalence suite and for re-measuring baselines).
        """
        if engine == "step":
            executed = 0
            step = self.step
            budget = max_instructions
            while not self.halted and budget > 0:
                step()
                budget -= 1
                executed += 1
        else:
            executed = self.run_trace(None, max_instructions)
        if not self.halted and executed >= max_instructions > 0:
            raise SimulationError(
                f"instruction budget exhausted after {max_instructions} instructions"
            )
        return self.instructions_retired

    def _handler_tables(self):
        tables = self._tables
        if tables is None:
            from repro.cpu.predecode import build_tables
            tables = self._tables = build_tables(self)
        return tables

    def run_trace(self, consumer=None, max_instructions: int = 100_000_000) -> int:
        """Drive the predecoded engine, streaming outcomes to ``consumer``.

        The consumer declares what it needs by providing any of three
        optional methods (looked up once, before the loop starts):

        * ``trace_plain(pc, inst)`` -- called after every retired
          instruction that is neither a memory op nor a branch/jump; no
          :class:`TraceRecord` is allocated for these,
        * ``trace_mem(rec)`` -- called with a full :class:`TraceRecord`
          for every load/store,
        * ``trace_branch(rec)`` -- called with a full record for every
          branch/jump.

        A record handed to a hook is identical (field for field) to what
        the legacy ``step()`` would have returned for that instruction.
        With ``consumer=None`` (or a consumer with none of the hooks)
        the loop runs architecture-only at full speed. Returns the
        number of instructions retired by this call; stops on halt or
        when ``max_instructions`` is reached, leaving ``state.pc`` ready
        for a subsequent ``step()``/``run_trace()``.
        """
        from repro.cpu.predecode import HALT, OFF_TEXT

        if self.halted:
            return 0
        run_table, trace_table = self._handler_tables()
        pre = self.program.predecoded()
        kinds = pre.kinds
        pcs = pre.pcs
        insts = self._insts
        state = self.state
        text_base = self._text_base
        n_insts = len(run_table)
        limit = max_instructions

        pc = state.pc
        index = (pc - text_base) >> 2
        if limit > 0 and not 0 <= index < n_insts:
            raise SimulationError(f"pc 0x{pc:08x} outside text segment")

        plain_cb = getattr(consumer, "trace_plain", None)
        mem_cb = getattr(consumer, "trace_mem", None)
        branch_cb = getattr(consumer, "trace_branch", None)

        n = 0
        try:
            if plain_cb is None and mem_cb is None and branch_cb is None:
                while index >= 0 and n < limit:
                    index = run_table[index]()
                    n += 1
            else:
                while index >= 0 and n < limit:
                    kind = kinds[index]
                    if kind == 0:
                        i0 = index
                        index = run_table[i0]()
                        n += 1
                        if plain_cb is not None:
                            plain_cb(pcs[i0], insts[i0])
                    elif kind == 1:
                        if mem_cb is not None:
                            rec = trace_table[index]()
                            index += 1
                            n += 1
                            mem_cb(rec)
                        else:
                            index = run_table[index]()
                            n += 1
                    else:
                        if branch_cb is not None:
                            rec = trace_table[index]()
                            n += 1
                            branch_cb(rec)
                            npc = rec.next_pc
                            idx = (npc - text_base) >> 2
                            if 0 <= idx < n_insts:
                                index = idx
                            else:
                                state.pc = npc
                                index = OFF_TEXT
                        else:
                            index = run_table[index]()
                            n += 1
        except IndexError:
            # a plain/memory handler fell off the end of the text segment
            if index >= n_insts:
                self.instructions_retired += n
                state.pc = text_base + (index << 2)
                raise SimulationError(
                    f"pc 0x{state.pc:08x} outside text segment"
                ) from None
            self.instructions_retired += n
            if 0 <= index < n_insts:
                state.pc = text_base + (index << 2)
            raise
        except BaseException:
            # faulting instruction did not retire; leave state.pc on it
            self.instructions_retired += n
            if 0 <= index < n_insts:
                state.pc = text_base + (index << 2)
            raise

        self.instructions_retired += n
        if index >= 0:
            state.pc = text_base + (index << 2)
        elif index == OFF_TEXT and n < limit:
            # the transfer retired (and was streamed); executing the
            # errant pc is what fails, exactly as a subsequent step()
            raise SimulationError(f"pc 0x{state.pc:08x} outside text segment")
        # on HALT the syscall handler placed state.pc after the syscall
        return n

    def step(self) -> TraceRecord:
        """Execute one instruction and return its trace record."""
        state = self.state
        pc = state.pc
        index = (pc - self._text_base) >> 2
        if index < 0:
            raise SimulationError(f"pc 0x{pc:08x} outside text segment")
        try:
            inst = self._insts[index]
        except IndexError:
            raise SimulationError(f"pc 0x{pc:08x} outside text segment") from None

        regs = state.regs
        op = inst.op
        next_pc = pc + 4
        ea = None
        base_value = 0
        offset_value = 0
        taken = None

        # ---------------- integer ALU ----------------
        if op == Op.ADDU or op == Op.ADD:
            regs[inst.rd] = (regs[inst.rs] + regs[inst.rt]) & MASK32
        elif op == Op.ADDIU or op == Op.ADDI:
            regs[inst.rt] = (regs[inst.rs] + inst.imm) & MASK32
        elif op == Op.SUBU or op == Op.SUB:
            regs[inst.rd] = (regs[inst.rs] - regs[inst.rt]) & MASK32
        elif op == Op.AND:
            regs[inst.rd] = regs[inst.rs] & regs[inst.rt]
        elif op == Op.OR:
            regs[inst.rd] = regs[inst.rs] | regs[inst.rt]
        elif op == Op.XOR:
            regs[inst.rd] = regs[inst.rs] ^ regs[inst.rt]
        elif op == Op.NOR:
            regs[inst.rd] = ~(regs[inst.rs] | regs[inst.rt]) & MASK32
        elif op == Op.SLT:
            regs[inst.rd] = int(to_signed32(regs[inst.rs]) < to_signed32(regs[inst.rt]))
        elif op == Op.SLTU:
            regs[inst.rd] = int(regs[inst.rs] < regs[inst.rt])
        elif op == Op.SLTI:
            regs[inst.rt] = int(to_signed32(regs[inst.rs]) < inst.imm)
        elif op == Op.SLTIU:
            regs[inst.rt] = int(regs[inst.rs] < (inst.imm & MASK32))
        elif op == Op.ANDI:
            regs[inst.rt] = regs[inst.rs] & (inst.imm & 0xFFFF)
        elif op == Op.ORI:
            regs[inst.rt] = regs[inst.rs] | (inst.imm & 0xFFFF)
        elif op == Op.XORI:
            regs[inst.rt] = regs[inst.rs] ^ (inst.imm & 0xFFFF)
        elif op == Op.LUI:
            regs[inst.rt] = (inst.imm & 0xFFFF) << 16
        elif op == Op.SLL:
            regs[inst.rd] = (regs[inst.rt] << (inst.imm & 31)) & MASK32
        elif op == Op.SRL:
            regs[inst.rd] = regs[inst.rt] >> (inst.imm & 31)
        elif op == Op.SRA:
            regs[inst.rd] = (to_signed32(regs[inst.rt]) >> (inst.imm & 31)) & MASK32
        elif op == Op.SLLV:
            # operand order follows the assembler: rd = rs << rt
            regs[inst.rd] = (regs[inst.rs] << (regs[inst.rt] & 31)) & MASK32
        elif op == Op.SRLV:
            regs[inst.rd] = regs[inst.rs] >> (regs[inst.rt] & 31)
        elif op == Op.SRAV:
            regs[inst.rd] = (to_signed32(regs[inst.rs]) >> (regs[inst.rt] & 31)) & MASK32

        # ---------------- loads and stores ----------------
        elif inst.is_mem:
            info = inst.info
            base_value = regs[inst.rs]
            mode = info.mem_mode
            if mode == "c":
                offset_value = inst.imm
                ea = (base_value + inst.imm) & MASK32
            elif mode == "x":
                offset_value = regs[inst.rx]
                ea = (base_value + offset_value) & MASK32
            else:  # post-increment: address is the raw base
                offset_value = 0
                ea = base_value
            if info.is_load:
                if info.mem_fp:
                    state.fregs[inst.ft] = self.memory.read_double(ea)
                else:
                    regs[inst.rt] = self.memory.read(ea, info.mem_width, info.mem_signed) & MASK32
            else:
                if info.mem_fp:
                    self.memory.write_double(ea, float(state.fregs[inst.ft]))
                else:
                    self.memory.write(ea, info.mem_width, regs[inst.rt])
            if mode == "p":
                regs[inst.rs] = (base_value + inst.imm) & MASK32
            if inst.rs == Reg.SP and base_value < self.sp_min:
                self.sp_min = base_value
                if self.program.sp_value - self.sp_min > STACK_LIMIT:
                    raise SimulationError("stack overflow")

        # ---------------- branches ----------------
        elif op == Op.BEQ:
            taken = regs[inst.rs] == regs[inst.rt]
            if taken:
                next_pc = inst.target
        elif op == Op.BNE:
            taken = regs[inst.rs] != regs[inst.rt]
            if taken:
                next_pc = inst.target
        elif op == Op.BLEZ:
            taken = to_signed32(regs[inst.rs]) <= 0
            if taken:
                next_pc = inst.target
        elif op == Op.BGTZ:
            taken = to_signed32(regs[inst.rs]) > 0
            if taken:
                next_pc = inst.target
        elif op == Op.BLTZ:
            taken = to_signed32(regs[inst.rs]) < 0
            if taken:
                next_pc = inst.target
        elif op == Op.BGEZ:
            taken = to_signed32(regs[inst.rs]) >= 0
            if taken:
                next_pc = inst.target
        elif op == Op.BC1T:
            taken = state.fcc
            if taken:
                next_pc = inst.target
        elif op == Op.BC1F:
            taken = not state.fcc
            if taken:
                next_pc = inst.target

        # ---------------- jumps ----------------
        elif op == Op.J:
            taken = True
            next_pc = inst.target
        elif op == Op.JAL:
            taken = True
            regs[Reg.RA] = (pc + 4) & MASK32
            next_pc = inst.target
        elif op == Op.JR:
            taken = True
            next_pc = regs[inst.rs]
        elif op == Op.JALR:
            taken = True
            regs[inst.rd] = (pc + 4) & MASK32
            next_pc = regs[inst.rs]

        # ---------------- multiply / divide ----------------
        elif op == Op.MULT:
            product = to_signed32(regs[inst.rs]) * to_signed32(regs[inst.rt])
            state.lo = product & MASK32
            state.hi = (product >> 32) & MASK32
        elif op == Op.MULTU:
            product = regs[inst.rs] * regs[inst.rt]
            state.lo = product & MASK32
            state.hi = (product >> 32) & MASK32
        elif op == Op.DIV:
            dividend = to_signed32(regs[inst.rs])
            divisor = to_signed32(regs[inst.rt])
            if divisor == 0:
                state.lo = 0
                state.hi = 0
            else:
                quotient = abs(dividend) // abs(divisor)
                if (dividend < 0) != (divisor < 0):
                    quotient = -quotient
                state.lo = quotient & MASK32
                state.hi = (dividend - quotient * divisor) & MASK32
        elif op == Op.DIVU:
            divisor = regs[inst.rt]
            if divisor == 0:
                state.lo = 0
                state.hi = 0
            else:
                state.lo = regs[inst.rs] // divisor
                state.hi = regs[inst.rs] % divisor
        elif op == Op.MFHI:
            regs[inst.rd] = state.hi
        elif op == Op.MFLO:
            regs[inst.rd] = state.lo

        # ---------------- floating point ----------------
        elif op == Op.ADD_D:
            state.fregs[inst.fd] = float(state.fregs[inst.fs]) + float(state.fregs[inst.ft])
        elif op == Op.SUB_D:
            state.fregs[inst.fd] = float(state.fregs[inst.fs]) - float(state.fregs[inst.ft])
        elif op == Op.MUL_D:
            state.fregs[inst.fd] = float(state.fregs[inst.fs]) * float(state.fregs[inst.ft])
        elif op == Op.DIV_D:
            divisor = float(state.fregs[inst.ft])
            if divisor == 0.0:
                state.fregs[inst.fd] = float("inf") if float(state.fregs[inst.fs]) >= 0 else float("-inf")
            else:
                state.fregs[inst.fd] = float(state.fregs[inst.fs]) / divisor
        elif op == Op.NEG_D:
            state.fregs[inst.fd] = -float(state.fregs[inst.fs])
        elif op == Op.ABS_D:
            state.fregs[inst.fd] = abs(float(state.fregs[inst.fs]))
        elif op == Op.MOV_D:
            state.fregs[inst.fd] = state.fregs[inst.fs]
        elif op == Op.SQRT_D:
            value = float(state.fregs[inst.fs])
            if value < 0:
                raise SimulationError("sqrt.d of negative value")
            state.fregs[inst.fd] = value ** 0.5
        elif op == Op.CVT_D_W:
            raw = state.fregs[inst.fs]
            state.fregs[inst.fd] = float(to_signed32(int(raw)))
        elif op == Op.CVT_W_D or op == Op.TRUNC_W_D:
            state.fregs[inst.fd] = int(float(state.fregs[inst.fs]))
        elif op == Op.MTC1:
            state.fregs[inst.fs] = regs[inst.rt]
        elif op == Op.MFC1:
            regs[inst.rd] = int(state.fregs[inst.fs]) & MASK32
        elif op == Op.C_EQ_D:
            state.fcc = float(state.fregs[inst.fs]) == float(state.fregs[inst.ft])
        elif op == Op.C_LT_D:
            state.fcc = float(state.fregs[inst.fs]) < float(state.fregs[inst.ft])
        elif op == Op.C_LE_D:
            state.fcc = float(state.fregs[inst.fs]) <= float(state.fregs[inst.ft])

        # ---------------- system ----------------
        elif op == Op.SYSCALL:
            handle_syscall(self)
        elif op == Op.NOP:
            pass
        elif op == Op.BREAK:
            raise SimulationError(f"break at pc 0x{pc:08x}")
        else:  # pragma: no cover - opcode table is exhaustive
            raise SimulationError(f"unimplemented opcode {op.name}")

        regs[0] = 0
        state.pc = next_pc
        self.instructions_retired += 1
        return TraceRecord(pc, inst, ea, base_value, offset_value, taken, next_pc)
