"""Functional (architectural) simulator for the extended-MIPS target."""

from repro.cpu.executor import CPU, TraceRecord
from repro.cpu.state import ArchState
from repro.cpu.tracefile import (
    record_trace,
    replay_into,
    replay_trace,
    simulate_trace,
)

__all__ = ["CPU", "TraceRecord", "ArchState",
           "record_trace", "replay_into", "replay_trace", "simulate_trace"]
