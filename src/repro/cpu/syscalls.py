"""System-call emulation (SPIM-style conventions).

The service number is taken from ``$v0``:

====  ==============  =========================================
 v0   name            arguments / result
====  ==============  =========================================
  1   print_int       ``$a0`` (signed)
  3   print_double    ``$f12``
  4   print_string    ``$a0`` = address of NUL-terminated string
  9   sbrk            ``$a0`` bytes; old break returned in ``$v0``
 10   exit            exit code 0
 11   print_char      low byte of ``$a0``
 17   exit2           exit code in ``$a0``
====  ==============  =========================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.isa.registers import Reg
from repro.obs.events import Syscall
from repro.utils.bits import to_signed32

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.executor import CPU

SYS_PRINT_INT = 1
SYS_PRINT_DOUBLE = 3
SYS_PRINT_STRING = 4
SYS_SBRK = 9
SYS_EXIT = 10
SYS_PRINT_CHAR = 11
SYS_EXIT2 = 17


SERVICE_NAMES = {
    SYS_PRINT_INT: "print_int",
    SYS_PRINT_DOUBLE: "print_double",
    SYS_PRINT_STRING: "print_string",
    SYS_SBRK: "sbrk",
    SYS_EXIT: "exit",
    SYS_PRINT_CHAR: "print_char",
    SYS_EXIT2: "exit2",
}


def handle_syscall(cpu: "CPU") -> None:
    """Execute the syscall selected by ``$v0`` on ``cpu``."""
    state = cpu.state
    service = state.regs[Reg.V0]
    if cpu.obs is not None:
        cpu.obs.emit(Syscall(pc=state.pc, service=service,
                             name=SERVICE_NAMES.get(service, "unknown")))
    if service == SYS_PRINT_INT:
        cpu.output.append(str(to_signed32(state.regs[Reg.A0])))
    elif service == SYS_PRINT_DOUBLE:
        cpu.output.append(repr(float(state.fregs[12])))
    elif service == SYS_PRINT_STRING:
        cpu.output.append(cpu.memory.read_cstring(state.regs[Reg.A0]))
    elif service == SYS_SBRK:
        amount = to_signed32(state.regs[Reg.A0])
        old_brk = cpu.brk
        new_brk = old_brk + amount
        if new_brk < cpu.heap_base:
            raise SimulationError("sbrk below heap base")
        cpu.brk = new_brk
        cpu.heap_peak = max(cpu.heap_peak, new_brk)
        state.regs[Reg.V0] = old_brk & 0xFFFFFFFF
    elif service == SYS_EXIT:
        cpu.halted = True
        cpu.exit_code = 0
    elif service == SYS_EXIT2:
        cpu.halted = True
        cpu.exit_code = to_signed32(state.regs[Reg.A0])
    elif service == SYS_PRINT_CHAR:
        cpu.output.append(chr(state.regs[Reg.A0] & 0xFF))
    else:
        raise SimulationError(f"unknown syscall {service}")
