"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run FILE.mc``      -- compile and run a MiniC program
* ``asm FILE.s``       -- assemble, link, and run raw assembly
* ``suite``            -- list the benchmark registry
* ``bench NAME``       -- run one benchmark and report timing/prediction
* ``lint TARGET``      -- static FAC-predictability lint of a MiniC file,
                          assembly file, or benchmark name
* ``experiment WHICH`` -- regenerate a paper table/figure
                          (table1|table3|table4|table6|fig1|fig2|fig3|fig5|fig6)
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import analyze_program, lint_program
from repro.compiler import CompilerOptions, FacSoftwareOptions, compile_and_link
from repro.cpu import CPU
from repro.fac import FacConfig
from repro.isa.assembler import assemble
from repro.linker import LinkOptions, link
from repro.pipeline import MachineConfig, simulate_program


def _options(args) -> CompilerOptions:
    if getattr(args, "software_support", False):
        return CompilerOptions(fac=FacSoftwareOptions.enabled())
    return CompilerOptions()


def cmd_run(args) -> int:
    with open(args.file) as handle:
        source = handle.read()
    program = compile_and_link(source, _options(args))
    cpu = CPU(program)
    cpu.run(args.max_instructions)
    sys.stdout.write(cpu.stdout())
    if args.stats:
        print(f"\n[{cpu.instructions_retired} instructions, "
              f"exit code {cpu.exit_code}]", file=sys.stderr)
    return cpu.exit_code


def cmd_asm(args) -> int:
    with open(args.file) as handle:
        source = handle.read()
    program = link([assemble(source, args.file)], LinkOptions())
    cpu = CPU(program)
    cpu.run(args.max_instructions)
    sys.stdout.write(cpu.stdout())
    return cpu.exit_code


def cmd_suite(args) -> int:
    from repro.workloads import BENCHMARKS

    for name, bench in BENCHMARKS.items():
        print(f"{name:10s} [{bench.category}] {bench.description}")
    return 0


def cmd_bench(args) -> int:
    from repro.workloads import BENCHMARKS, build_benchmark

    if args.name not in BENCHMARKS:
        print(f"unknown benchmark {args.name!r}; try 'python -m repro suite'",
              file=sys.stderr)
        return 2
    program = build_benchmark(args.name, software_support=args.software_support)
    analysis = analyze_program(program)
    base = simulate_program(program, MachineConfig())
    fac = simulate_program(program, MachineConfig(fac=FacConfig()))
    stats = analysis.predictions[32]
    print(f"benchmark        : {args.name} "
          f"({'with' if args.software_support else 'no'} software support)")
    print(f"output           : {analysis.stdout!r}")
    print(f"instructions     : {analysis.instructions}")
    print(f"baseline cycles  : {base.cycles} (IPC {base.ipc:.3f})")
    print(f"FAC cycles       : {fac.cycles} (speedup {base.cycles / fac.cycles:.3f})")
    print(f"prediction fail  : loads {100 * stats.load_failure_rate:.1f}%  "
          f"stores {100 * stats.store_failure_rate:.1f}%")
    print(f"extra bandwidth  : {100 * fac.bandwidth_overhead:.2f}% of refs")
    return 0


def cmd_lint(args) -> int:
    """Statically classify every memory access and report alignment lint.

    Exit status: 0 when clean, 1 when warnings were found, 2 on usage
    errors -- so the linter can gate CI like a conventional lint tool.
    """
    target = args.target
    if target.endswith(".mc"):
        with open(target) as handle:
            program = compile_and_link(handle.read(), _options(args))
    elif target.endswith(".s"):
        with open(target) as handle:
            program = link([assemble(handle.read(), target)], LinkOptions())
    else:
        from repro.workloads import BENCHMARKS, build_benchmark

        if target not in BENCHMARKS:
            print(f"unknown lint target {target!r}: expected a .mc/.s file "
                  "or a benchmark name (see 'python -m repro suite')",
                  file=sys.stderr)
            return 2
        program = build_benchmark(
            target, software_support=args.software_support
        )
    config = FacConfig(cache_size=args.cache_size, block_size=args.block_size)
    report = lint_program(program, config, name=target)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render_text())
    return 1 if report.warnings else 0


def cmd_experiment(args) -> int:
    from repro import experiments

    runners = {
        "fig1": experiments.run_fig1,
        "table1": experiments.run_table1,
        "table3": experiments.run_table3,
        "table4": experiments.run_table4,
        "table6": experiments.run_table6,
        "fig2": experiments.run_fig2,
        "fig3": lambda: experiments.run_fig3(),
        "fig5": experiments.run_fig5,
        "fig6": experiments.run_fig6,
        "signals": experiments.run_signals,
    }
    runner = runners.get(args.which)
    if runner is None:
        print(f"unknown experiment {args.which!r}; choose from "
              f"{sorted(runners)}", file=sys.stderr)
        return 2
    print(runner().render())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fast Address Calculation (ISCA 1995) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="compile and run a MiniC file")
    p_run.add_argument("file")
    p_run.add_argument("--software-support", action="store_true",
                       help="compile with the paper's Section 4 support")
    p_run.add_argument("--stats", action="store_true")
    p_run.add_argument("--max-instructions", type=int, default=100_000_000)
    p_run.set_defaults(func=cmd_run)

    p_asm = sub.add_parser("asm", help="assemble and run an assembly file")
    p_asm.add_argument("file")
    p_asm.add_argument("--max-instructions", type=int, default=100_000_000)
    p_asm.set_defaults(func=cmd_asm)

    p_suite = sub.add_parser("suite", help="list the benchmark suite")
    p_suite.set_defaults(func=cmd_suite)

    p_bench = sub.add_parser("bench", help="run one benchmark with timing")
    p_bench.add_argument("name")
    p_bench.add_argument("--software-support", action="store_true")
    p_bench.set_defaults(func=cmd_bench)

    p_lint = sub.add_parser(
        "lint", help="static FAC-predictability lint (repro.analysis.static_fac)"
    )
    p_lint.add_argument("target", help="MiniC file, assembly file, or "
                                       "benchmark name")
    p_lint.add_argument("--json", action="store_true",
                        help="emit the machine-readable report "
                             "(schema: repro.analysis.reporting.LINT_SCHEMA)")
    p_lint.add_argument("--software-support", action="store_true",
                        help="compile with the paper's Section 4 support")
    p_lint.add_argument("--cache-size", type=int, default=16 * 1024)
    p_lint.add_argument("--block-size", type=int, default=32)
    p_lint.set_defaults(func=cmd_lint)

    p_exp = sub.add_parser("experiment", help="regenerate a table/figure")
    p_exp.add_argument("which")
    p_exp.set_defaults(func=cmd_experiment)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
