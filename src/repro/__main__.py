"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run FILE.mc``      -- compile and run a MiniC program
* ``asm FILE.s``       -- assemble, link, and run raw assembly
* ``suite``            -- list the benchmark registry
* ``bench NAME``       -- run one benchmark and report timing/prediction
* ``lint TARGET``      -- static FAC-predictability lint of a MiniC file,
                          assembly file, or benchmark name
* ``profile TARGET``   -- source-level FAC profile: hottest loads/stores
                          with prediction rate, miss rate, replay cycles
* ``trace TARGET``     -- structured event trace (Chrome/Perfetto JSON or
                          JSON Lines)
* ``experiment WHICH`` -- regenerate a paper table/figure
                          (table1|table3|table4|table6|fig1|fig2|fig3|fig5|fig6)
* ``farm ...``         -- parallel, artifact-cached experiment sweeps
                          (``farm run``, ``farm status``, ``farm gc``)
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import analyze_program, lint_program
from repro.compiler import CompilerOptions, FacSoftwareOptions, compile_and_link
from repro.cpu import CPU
from repro.fac import FacConfig
from repro.isa.assembler import assemble
from repro.linker import LinkOptions, link
from repro.pipeline import MachineConfig, simulate_program


def _options(args) -> CompilerOptions:
    if getattr(args, "software_support", False):
        return CompilerOptions(fac=FacSoftwareOptions.enabled())
    return CompilerOptions()


def cmd_run(args) -> int:
    with open(args.file) as handle:
        source = handle.read()
    program = compile_and_link(source, _options(args))
    cpu = CPU(program)
    cpu.run(args.max_instructions)
    sys.stdout.write(cpu.stdout())
    if args.stats:
        print(f"\n[{cpu.instructions_retired} instructions, "
              f"exit code {cpu.exit_code}]", file=sys.stderr)
    return cpu.exit_code


def cmd_asm(args) -> int:
    with open(args.file) as handle:
        source = handle.read()
    program = link([assemble(source, args.file)], LinkOptions())
    cpu = CPU(program)
    cpu.run(args.max_instructions)
    sys.stdout.write(cpu.stdout())
    return cpu.exit_code


def cmd_suite(args) -> int:
    from repro.workloads import BENCHMARKS

    for name, bench in BENCHMARKS.items():
        print(f"{name:10s} [{bench.category}] {bench.description}")
    return 0


def cmd_bench(args) -> int:
    from repro.workloads import BENCHMARKS, build_benchmark

    if args.name not in BENCHMARKS:
        print(f"unknown benchmark {args.name!r}; try 'python -m repro suite'",
              file=sys.stderr)
        return 2
    program = build_benchmark(args.name, software_support=args.software_support)
    analysis = analyze_program(program)
    base = simulate_program(program, MachineConfig())
    fac = simulate_program(program, MachineConfig(fac=FacConfig()))
    stats = analysis.predictions[32]
    print(f"benchmark        : {args.name} "
          f"({'with' if args.software_support else 'no'} software support)")
    print(f"output           : {analysis.stdout!r}")
    print(f"instructions     : {analysis.instructions}")
    print(f"baseline cycles  : {base.cycles} (IPC {base.ipc:.3f})")
    print(f"FAC cycles       : {fac.cycles} (speedup {base.cycles / fac.cycles:.3f})")
    print(f"prediction fail  : loads {100 * stats.load_failure_rate:.1f}%  "
          f"stores {100 * stats.store_failure_rate:.1f}%")
    print(f"extra bandwidth  : {100 * fac.bandwidth_overhead:.2f}% of refs")
    if args.snapshot is not None:
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        base.to_registry(registry, prefix="baseline")
        fac.to_registry(registry, prefix="fac")
        snapshot = registry.snapshot(meta={
            "benchmark": args.name,
            "software_support": bool(args.software_support),
        })
        path = args.snapshot or "BENCH_obs.json"
        with open(path, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"metrics snapshot : {path}")
    return 0


def _load_target(args):
    """Resolve a CLI target (MiniC file, assembly file, or benchmark name)
    to a linked Program; shared by lint/profile/trace. Returns None and
    prints a diagnostic when the target is unknown."""
    target = args.target
    if target.endswith(".mc"):
        with open(target) as handle:
            return compile_and_link(handle.read(), _options(args))
    if target.endswith(".s"):
        with open(target) as handle:
            return link([assemble(handle.read(), target)], LinkOptions())
    from repro.workloads import BENCHMARKS, build_benchmark

    if target not in BENCHMARKS:
        print(f"unknown target {target!r}: expected a .mc/.s file "
              "or a benchmark name (see 'python -m repro suite')",
              file=sys.stderr)
        return None
    return build_benchmark(
        target, software_support=getattr(args, "software_support", False)
    )


def cmd_lint(args) -> int:
    """Statically classify every memory access and report alignment lint.

    Exit status: 0 when clean, 1 when warnings were found, 2 on usage
    errors -- so the linter can gate CI like a conventional lint tool.
    """
    target = args.target
    program = _load_target(args)
    if program is None:
        return 2
    config = FacConfig(cache_size=args.cache_size, block_size=args.block_size)
    report = lint_program(program, config, name=target)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render_text())
    return 1 if report.warnings else 0


def cmd_profile(args) -> int:
    """Source-level FAC profile (see :mod:`repro.obs.profile`)."""
    from repro.obs.profile import profile_program

    program = _load_target(args)
    if program is None:
        return 2
    result = profile_program(
        program,
        name=args.target,
        primary_block_size=args.block_size,
        cache_size=args.cache_size,
        max_instructions=args.max_instructions,
    )
    top = args.top or None  # --top 0 means "all sites"
    if args.json:
        print(json.dumps(result.to_json(top), indent=2))
    else:
        print(result.render_text(top=top))
    return 0


def cmd_trace(args) -> int:
    """Structured event trace (see :mod:`repro.obs.trace`)."""
    from repro.obs.trace import trace_program

    program = _load_target(args)
    if program is None:
        return 2
    if args.output:
        with open(args.output, "w") as stream:
            result = trace_program(program, stream, fmt=args.format,
                                   max_instructions=args.max_instructions)
        print(f"{args.format} trace written to {args.output} "
              f"({result.instructions} instructions, {result.cycles} cycles)",
              file=sys.stderr)
    else:
        result = trace_program(program, sys.stdout, fmt=args.format,
                               max_instructions=args.max_instructions)
    return 0


def cmd_experiment(args) -> int:
    from repro import experiments

    runners = {
        "fig1": experiments.run_fig1,
        "table1": experiments.run_table1,
        "table3": experiments.run_table3,
        "table4": experiments.run_table4,
        "table6": experiments.run_table6,
        "fig2": experiments.run_fig2,
        "fig3": lambda: experiments.run_fig3(),
        "fig5": experiments.run_fig5,
        "fig6": experiments.run_fig6,
        "signals": experiments.run_signals,
    }
    runner = runners.get(args.which)
    if runner is None:
        print(f"unknown experiment {args.which!r}; choose from "
              f"{sorted(runners)}", file=sys.stderr)
        return 2
    print(runner().render())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fast Address Calculation (ISCA 1995) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="compile and run a MiniC file")
    p_run.add_argument("file")
    p_run.add_argument("--software-support", action="store_true",
                       help="compile with the paper's Section 4 support")
    p_run.add_argument("--stats", action="store_true")
    p_run.add_argument("--max-instructions", type=int, default=100_000_000)
    p_run.set_defaults(func=cmd_run)

    p_asm = sub.add_parser("asm", help="assemble and run an assembly file")
    p_asm.add_argument("file")
    p_asm.add_argument("--max-instructions", type=int, default=100_000_000)
    p_asm.set_defaults(func=cmd_asm)

    p_suite = sub.add_parser("suite", help="list the benchmark suite")
    p_suite.set_defaults(func=cmd_suite)

    p_bench = sub.add_parser("bench", help="run one benchmark with timing")
    p_bench.add_argument("name")
    p_bench.add_argument("--software-support", action="store_true")
    p_bench.add_argument("--snapshot", nargs="?", const="BENCH_obs.json",
                         default=None, metavar="FILE",
                         help="write a versioned metrics snapshot "
                              "(default FILE: BENCH_obs.json)")
    p_bench.set_defaults(func=cmd_bench)

    p_lint = sub.add_parser(
        "lint", help="static FAC-predictability lint (repro.analysis.static_fac)"
    )
    p_lint.add_argument("target", help="MiniC file, assembly file, or "
                                       "benchmark name")
    p_lint.add_argument("--json", action="store_true",
                        help="emit the machine-readable report "
                             "(schema: repro.analysis.reporting.LINT_SCHEMA)")
    p_lint.add_argument("--software-support", action="store_true",
                        help="compile with the paper's Section 4 support")
    p_lint.add_argument("--cache-size", type=int, default=16 * 1024)
    p_lint.add_argument("--block-size", type=int, default=32)
    p_lint.set_defaults(func=cmd_lint)

    p_profile = sub.add_parser(
        "profile", help="source-level FAC profile (repro.obs.profile)"
    )
    p_profile.add_argument("target", help="MiniC file, assembly file, or "
                                          "benchmark name")
    p_profile.add_argument("--json", action="store_true",
                           help="emit the machine-readable report "
                                "(schema: repro.obs.profile.PROFILE_SCHEMA)")
    p_profile.add_argument("--top", type=int, default=20,
                           help="rows to show (0 = all)")
    p_profile.add_argument("--software-support", action="store_true",
                           help="compile with the paper's Section 4 support")
    p_profile.add_argument("--cache-size", type=int, default=16 * 1024)
    p_profile.add_argument("--block-size", type=int, default=32)
    p_profile.add_argument("--max-instructions", type=int, default=50_000_000)
    p_profile.set_defaults(func=cmd_profile)

    p_trace = sub.add_parser(
        "trace", help="structured event trace (repro.obs.trace)"
    )
    p_trace.add_argument("target", help="MiniC file, assembly file, or "
                                        "benchmark name")
    p_trace.add_argument("--format", choices=["chrome", "jsonl"],
                         default="chrome",
                         help="chrome = Perfetto-loadable trace-event JSON; "
                              "jsonl = one event object per line")
    p_trace.add_argument("-o", "--output", default=None,
                         help="write to FILE instead of stdout")
    p_trace.add_argument("--software-support", action="store_true",
                         help="compile with the paper's Section 4 support")
    p_trace.add_argument("--max-instructions", type=int, default=50_000_000)
    p_trace.set_defaults(func=cmd_trace)

    p_exp = sub.add_parser("experiment", help="regenerate a table/figure")
    p_exp.add_argument("which")
    p_exp.set_defaults(func=cmd_experiment)

    from repro.farm.cli import add_farm_parser

    add_farm_parser(sub)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
