"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run FILE.mc``      -- compile and run a MiniC program
* ``asm FILE.s``       -- assemble, link, and run raw assembly
* ``suite``            -- list the benchmark registry
* ``bench NAME``       -- run one benchmark and report timing/prediction
* ``lint TARGET``      -- static FAC-predictability lint of a MiniC file,
                          assembly file, or benchmark name
* ``sanitize TARGET``  -- whole-program static sanitizer: calling
                          convention, stack discipline, data bounds, and
                          control-flow integrity (``--json``/``--sarif``)
* ``profile TARGET``   -- source-level FAC profile: hottest loads/stores
                          with prediction rate, miss rate, replay cycles
* ``trace TARGET``     -- structured event trace (Chrome/Perfetto JSON or
                          JSON Lines)
* ``pipeview TARGET``  -- pipeline flight recorder: ANSI waterfall of the
                          trailing execution window (``--around pc:X`` /
                          ``--around cycle:N`` to centre it elsewhere)
* ``explain TARGET``   -- FAC misprediction root-cause report for one or
                          all memory sites (``--pc X`` / ``--line F:N``)
* ``diff OLD NEW``     -- compare two ``repro.metrics/1`` snapshots under
                          per-metric gates; nonzero exit on violation
* ``report``           -- static HTML dashboard of a suite sweep from
                          farm artifacts
* ``experiment WHICH`` -- regenerate a paper table/figure
                          (table1|table3|table4|table6|fig1|fig2|fig3|fig5|fig6)
* ``farm ...``         -- parallel, artifact-cached experiment sweeps
                          (``farm run``, ``farm status``, ``farm top``,
                          ``farm history``, ``farm timeline``, ``farm gc``)
* ``serve``            -- simulation-as-a-service HTTP server on top of
                          the farm (``--check`` for offline health,
                          ``serve trace JOB_ID`` for one request's
                          span tree)
* ``submit``           -- submit one job to a running serve instance
                          (``--follow`` streams its SSE events)
* ``slo``              -- evaluate TOML service-level objectives over
                          ``repro.serve-metrics/1`` snapshots with
                          burn-rate math; exits 1 on breach
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import analyze_program, lint_program
from repro.compiler import CompilerOptions, FacSoftwareOptions, compile_and_link
from repro.cpu import CPU
from repro.fac import FacConfig
from repro.isa.assembler import assemble
from repro.linker import LinkOptions, link
from repro.pipeline import MachineConfig, simulate_program


def _options(args) -> CompilerOptions:
    if getattr(args, "software_support", False):
        return CompilerOptions(fac=FacSoftwareOptions.enabled())
    return CompilerOptions()


def cmd_run(args) -> int:
    with open(args.file) as handle:
        source = handle.read()
    program = compile_and_link(source, _options(args))
    cpu = CPU(program)
    cpu.run(args.max_instructions)
    sys.stdout.write(cpu.stdout())
    if args.stats:
        print(f"\n[{cpu.instructions_retired} instructions, "
              f"exit code {cpu.exit_code}]", file=sys.stderr)
    return cpu.exit_code


def cmd_asm(args) -> int:
    with open(args.file) as handle:
        source = handle.read()
    program = link([assemble(source, args.file)], LinkOptions())
    cpu = CPU(program)
    cpu.run(args.max_instructions)
    sys.stdout.write(cpu.stdout())
    return cpu.exit_code


def cmd_suite(args) -> int:
    from repro.workloads import BENCHMARKS

    for name, bench in BENCHMARKS.items():
        print(f"{name:10s} [{bench.category}] {bench.description}")
    return 0


def cmd_bench(args) -> int:
    from repro.workloads import BENCHMARKS, build_benchmark

    if args.name not in BENCHMARKS:
        print(f"unknown benchmark {args.name!r}; try 'python -m repro suite'",
              file=sys.stderr)
        return 2
    program = build_benchmark(args.name, software_support=args.software_support)
    analysis = analyze_program(program)
    base = simulate_program(program, MachineConfig())
    fac = simulate_program(program, MachineConfig(fac=FacConfig()))
    stats = analysis.predictions[32]
    print(f"benchmark        : {args.name} "
          f"({'with' if args.software_support else 'no'} software support)")
    print(f"output           : {analysis.stdout!r}")
    print(f"instructions     : {analysis.instructions}")
    print(f"baseline cycles  : {base.cycles} (IPC {base.ipc:.3f})")
    print(f"FAC cycles       : {fac.cycles} (speedup {base.cycles / fac.cycles:.3f})")
    print(f"prediction fail  : loads {100 * stats.load_failure_rate:.1f}%  "
          f"stores {100 * stats.store_failure_rate:.1f}%")
    print(f"extra bandwidth  : {100 * fac.bandwidth_overhead:.2f}% of refs")
    if args.snapshot is not None:
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        base.to_registry(registry, prefix="baseline")
        fac.to_registry(registry, prefix="fac")
        snapshot = registry.snapshot(meta={
            "benchmark": args.name,
            "software_support": bool(args.software_support),
        })
        path = args.snapshot or "BENCH_obs.json"
        with open(path, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"metrics snapshot : {path}")
    return 0


def _load_target(args):
    """Resolve a CLI target (MiniC file, assembly file, or benchmark name)
    to a linked Program; shared by lint/profile/trace. Returns None and
    prints a diagnostic when the target is unknown."""
    target = args.target
    if target.endswith(".mc"):
        with open(target) as handle:
            return compile_and_link(handle.read(), _options(args))
    if target.endswith(".s"):
        with open(target) as handle:
            return link([assemble(handle.read(), target)], LinkOptions())
    from repro.workloads import BENCHMARKS, build_benchmark

    if target not in BENCHMARKS:
        print(f"unknown target {target!r}: expected a .mc/.s file "
              "or a benchmark name (see 'python -m repro suite')",
              file=sys.stderr)
        return None
    return build_benchmark(
        target, software_support=getattr(args, "software_support", False)
    )


def _usage_error_json(schema: str, target: str) -> dict:
    """Machine-readable usage-error payload: ``--json`` consumers get the
    same schema-tagged shape on exit 2 instead of an empty stdout."""
    return {
        "schema": schema,
        "program": target,
        "error": f"unknown target {target!r}: expected a .mc/.s file "
                 "or a benchmark name",
    }


def cmd_lint(args) -> int:
    """Statically classify every memory access and report alignment lint.

    Exit status: 0 when clean, 1 when warnings were found, 2 on usage
    errors -- identical for text and ``--json`` output, so the linter
    can gate CI like a conventional lint tool.
    """
    from repro.analysis.reporting import LINT_SCHEMA_VERSION

    target = args.target
    program = _load_target(args)
    if program is None:
        if args.json:
            print(json.dumps(_usage_error_json(LINT_SCHEMA_VERSION, target),
                             indent=2))
        return 2
    config = FacConfig(cache_size=args.cache_size, block_size=args.block_size)
    report = lint_program(program, config, name=target)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render_text())
    return 1 if report.warnings else 0


def cmd_sanitize(args) -> int:
    """Whole-program static sanitizer (convention/stack/bounds/cfi).

    Exit status mirrors ``lint``: 0 clean, 1 when any finding was
    produced, 2 on usage errors.
    """
    from repro.analysis.sanitize import SANITIZE_SCHEMA_VERSION, \
        sanitize_program

    target = args.target
    program = _load_target(args)
    if program is None:
        if args.json:
            print(json.dumps(
                _usage_error_json(SANITIZE_SCHEMA_VERSION, target), indent=2))
        return 2
    report = sanitize_program(program, name=target)
    if args.sarif is not None:
        with open(args.sarif, "w") as handle:
            handle.write(report.sarif_text())
            handle.write("\n")
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render_text())
    return 0 if report.clean else 1


def cmd_profile(args) -> int:
    """Source-level FAC profile (see :mod:`repro.obs.profile`)."""
    from repro.obs.profile import profile_program

    program = _load_target(args)
    if program is None:
        return 2
    result = profile_program(
        program,
        name=args.target,
        primary_block_size=args.block_size,
        cache_size=args.cache_size,
        max_instructions=args.max_instructions,
    )
    top = args.top or None  # --top 0 means "all sites"
    if args.json:
        print(json.dumps(result.to_json(top, sort=args.sort), indent=2))
    else:
        print(result.render_text(top=top, sort=args.sort))
    return 0


def cmd_trace(args) -> int:
    """Structured event trace (see :mod:`repro.obs.trace`)."""
    from repro.obs.trace import trace_program

    program = _load_target(args)
    if program is None:
        return 2
    if args.output:
        with open(args.output, "w") as stream:
            result = trace_program(program, stream, fmt=args.format,
                                   max_instructions=args.max_instructions)
        print(f"{args.format} trace written to {args.output} "
              f"({result.instructions} instructions, {result.cycles} cycles)",
              file=sys.stderr)
    else:
        result = trace_program(program, sys.stdout, fmt=args.format,
                               max_instructions=args.max_instructions)
    return 0


def cmd_pipeview(args) -> int:
    """Flight-recorder waterfall (see :mod:`repro.obs.flight`)."""
    from repro.obs.flight import record_flight

    program = _load_target(args)
    if program is None:
        return 2
    around_pc = around_cycle = None
    if args.around:
        spec = args.around
        try:
            if spec.startswith("pc:"):
                around_pc = int(spec[3:], 0)
            elif spec.startswith("cycle:"):
                around_cycle = int(spec[6:])
            elif spec.lower().startswith("0x"):
                around_pc = int(spec, 16)
            else:
                around_cycle = int(spec)
        except ValueError:
            print(f"bad --around {spec!r}: expected pc:0xADDR, cycle:N, "
                  "a hex pc, or a decimal cycle", file=sys.stderr)
            return 2
    recorder, result = record_flight(
        program, window_cycles=args.window,
        around_pc=around_pc, around_cycle=around_cycle,
        max_instructions=args.max_instructions,
    )
    if args.chrome:
        with open(args.chrome, "w") as stream:
            recorder.to_chrome(stream)
        print(f"chrome trace written to {args.chrome}", file=sys.stderr)
    if args.dump:
        sys.stdout.write(recorder.dump())
    else:
        color = (sys.stdout.isatty() if args.color is None else args.color)
        sys.stdout.write(recorder.render(color=color))
    print(f"[{result.instructions} instructions, {result.cycles} cycles, "
          f"window {args.window} cycles]", file=sys.stderr)
    return 0


def cmd_explain(args) -> int:
    """FAC misprediction root-cause report (see :mod:`repro.obs.explain`)."""
    from repro.fac.predictor import FastAddressCalculator
    from repro.obs.explain import (
        explain_program,
        render_report,
        resolve_line,
    )

    program = _load_target(args)
    if program is None:
        return 2
    config = FacConfig(cache_size=args.cache_size, block_size=args.block_size)
    pcs = None
    if args.pc is not None:
        try:
            pcs = {int(args.pc, 0)}
        except ValueError:
            print(f"bad --pc {args.pc!r}", file=sys.stderr)
            return 2
        if args.line is not None:
            print("--pc and --line are mutually exclusive", file=sys.stderr)
            return 2
    elif args.line is not None:
        filename, sep, lineno = args.line.rpartition(":")
        if not sep or not lineno.isdigit():
            print(f"bad --line {args.line!r}: expected FILE:N",
                  file=sys.stderr)
            return 2
        matches = resolve_line(program, filename, int(lineno))
        if not matches:
            print(f"no instructions found at {args.line}", file=sys.stderr)
            return 2
        pcs = set(matches)
    report = explain_program(program, config, pcs=pcs,
                             max_instructions=args.max_instructions,
                             sweep=args.sweep)
    if pcs is not None and not report.sites:
        print("the selected instructions performed no memory accesses",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({
            "schema": "repro.explain/1",
            "program": args.target,
            "sites": [site.to_dict() for site in report.sites],
        }, indent=2))
    else:
        sys.stdout.write(render_report(report, FastAddressCalculator(config)))
    return 0 if all(site.consistent for site in report.sites) else 1


def cmd_diff(args) -> int:
    """Gate one metrics snapshot against another (see :mod:`repro.obs.diff`)."""
    from repro.obs.diff import (
        diff_snapshots,
        load_gates,
        load_snapshot,
        render_diff,
    )

    old = load_snapshot(args.old)
    new = load_snapshot(args.new)
    gates = load_gates(args.gate) if args.gate else None
    result = diff_snapshots(old, new, gates)
    sys.stdout.write(render_diff(result, show_all=args.all))
    return 0 if result.ok else 1


def cmd_report(args) -> int:
    """Static HTML dashboard of a suite sweep (see :mod:`repro.obs.report`)."""
    from repro.farm.snapshots import suite_snapshot
    from repro.obs.diff import load_snapshot
    from repro.obs.report import write_report

    if args.from_snapshot:
        snapshot = load_snapshot(args.from_snapshot)
    else:
        benchmarks = None
        if args.suite:
            benchmarks = [n.strip() for n in args.suite.split(",")
                          if n.strip()]
        machines = tuple(n.strip() for n in args.machines.split(",")
                         if n.strip())
        snapshot = suite_snapshot(benchmarks, machines=machines,
                                  software=args.software_support)
    if args.snapshot:
        with open(args.snapshot, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"sweep snapshot written to {args.snapshot}", file=sys.stderr)
    index = write_report(args.out, snapshot)
    print(f"report written to {index}", file=sys.stderr)
    return 0


def cmd_experiment(args) -> int:
    from repro import experiments

    runners = {
        "fig1": experiments.run_fig1,
        "table1": experiments.run_table1,
        "table3": experiments.run_table3,
        "table4": experiments.run_table4,
        "table6": experiments.run_table6,
        "fig2": experiments.run_fig2,
        "fig3": lambda: experiments.run_fig3(),
        "fig5": experiments.run_fig5,
        "fig6": experiments.run_fig6,
        "signals": experiments.run_signals,
    }
    runner = runners.get(args.which)
    if runner is None:
        print(f"unknown experiment {args.which!r}; choose from "
              f"{sorted(runners)}", file=sys.stderr)
        return 2
    print(runner().render())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fast Address Calculation (ISCA 1995) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="compile and run a MiniC file")
    p_run.add_argument("file")
    p_run.add_argument("--software-support", action="store_true",
                       help="compile with the paper's Section 4 support")
    p_run.add_argument("--stats", action="store_true")
    p_run.add_argument("--max-instructions", type=int, default=100_000_000)
    p_run.set_defaults(func=cmd_run)

    p_asm = sub.add_parser("asm", help="assemble and run an assembly file")
    p_asm.add_argument("file")
    p_asm.add_argument("--max-instructions", type=int, default=100_000_000)
    p_asm.set_defaults(func=cmd_asm)

    p_suite = sub.add_parser("suite", help="list the benchmark suite")
    p_suite.set_defaults(func=cmd_suite)

    p_bench = sub.add_parser("bench", help="run one benchmark with timing")
    p_bench.add_argument("name")
    p_bench.add_argument("--software-support", action="store_true")
    p_bench.add_argument("--snapshot", nargs="?", const="BENCH_obs.json",
                         default=None, metavar="FILE",
                         help="write a versioned metrics snapshot "
                              "(default FILE: BENCH_obs.json)")
    p_bench.set_defaults(func=cmd_bench)

    p_lint = sub.add_parser(
        "lint", help="static FAC-predictability lint (repro.analysis.static_fac)"
    )
    p_lint.add_argument("target", help="MiniC file, assembly file, or "
                                       "benchmark name")
    p_lint.add_argument("--json", action="store_true",
                        help="emit the machine-readable report "
                             "(schema: repro.analysis.reporting.LINT_SCHEMA)")
    p_lint.add_argument("--software-support", action="store_true",
                        help="compile with the paper's Section 4 support")
    p_lint.add_argument("--cache-size", type=int, default=16 * 1024)
    p_lint.add_argument("--block-size", type=int, default=32)
    p_lint.set_defaults(func=cmd_lint)

    p_sanitize = sub.add_parser(
        "sanitize",
        help="whole-program static sanitizer (repro.analysis.sanitize)",
    )
    p_sanitize.add_argument("target", help="MiniC file, assembly file, or "
                            "benchmark name")
    p_sanitize.add_argument("--json", action="store_true",
                            help="emit the machine-readable report "
                            "(schema repro.sanitize/1)")
    p_sanitize.add_argument("--sarif", metavar="FILE", default=None,
                            help="also write a SARIF 2.1.0 document to FILE")
    p_sanitize.add_argument("--software-support", action="store_true",
                            help="build benchmark targets with the paper's "
                            "Section 4 software support")
    p_sanitize.set_defaults(func=cmd_sanitize)

    p_profile = sub.add_parser(
        "profile", help="source-level FAC profile (repro.obs.profile)"
    )
    p_profile.add_argument("target", help="MiniC file, assembly file, or "
                                          "benchmark name")
    p_profile.add_argument("--json", action="store_true",
                           help="emit the machine-readable report "
                                "(schema: repro.obs.profile.PROFILE_SCHEMA)")
    p_profile.add_argument("--top", type=int, default=20,
                           help="rows to show (0 = all)")
    p_profile.add_argument("--sort",
                           choices=["replays", "misses", "predict_rate"],
                           default="replays",
                           help="ranking: replay cycles (default), dcache "
                                "misses, or worst prediction rate first; "
                                "ties always break by pc")
    p_profile.add_argument("--software-support", action="store_true",
                           help="compile with the paper's Section 4 support")
    p_profile.add_argument("--cache-size", type=int, default=16 * 1024)
    p_profile.add_argument("--block-size", type=int, default=32)
    p_profile.add_argument("--max-instructions", type=int, default=50_000_000)
    p_profile.set_defaults(func=cmd_profile)

    p_trace = sub.add_parser(
        "trace", help="structured event trace (repro.obs.trace)"
    )
    p_trace.add_argument("target", help="MiniC file, assembly file, or "
                                        "benchmark name")
    p_trace.add_argument("--format", choices=["chrome", "jsonl"],
                         default="chrome",
                         help="chrome = Perfetto-loadable trace-event JSON; "
                              "jsonl = one event object per line")
    p_trace.add_argument("-o", "--output", default=None,
                         help="write to FILE instead of stdout")
    p_trace.add_argument("--software-support", action="store_true",
                         help="compile with the paper's Section 4 support")
    p_trace.add_argument("--max-instructions", type=int, default=50_000_000)
    p_trace.set_defaults(func=cmd_trace)

    p_pipeview = sub.add_parser(
        "pipeview", help="pipeline flight-recorder waterfall (repro.obs.flight)"
    )
    p_pipeview.add_argument("target", help="MiniC file, assembly file, or "
                                           "benchmark name")
    p_pipeview.add_argument("--around", default=None, metavar="PC|CYCLE",
                            help="centre the window: pc:0xADDR / a hex pc "
                                 "freezes half a window after that pc "
                                 "retires; cycle:N / a decimal freezes at "
                                 "cycle N + window/2")
    p_pipeview.add_argument("--window", type=int, default=64,
                            help="window size in cycles (default 64)")
    p_pipeview.add_argument("--dump", action="store_true",
                            help="deterministic one-line-per-instruction "
                                 "dump instead of the waterfall")
    p_pipeview.add_argument("--chrome", default=None, metavar="FILE",
                            help="also export the window as Chrome trace "
                                 "JSON with named stage tracks")
    p_pipeview.add_argument("--color", action=argparse.BooleanOptionalAction,
                            default=None,
                            help="force ANSI colour on/off (default: tty)")
    p_pipeview.add_argument("--software-support", action="store_true",
                            help="compile with the paper's Section 4 support")
    p_pipeview.add_argument("--max-instructions", type=int,
                            default=50_000_000)
    p_pipeview.set_defaults(func=cmd_pipeview)

    p_explain = sub.add_parser(
        "explain", help="FAC misprediction root-cause report (repro.obs.explain)"
    )
    p_explain.add_argument("target", help="MiniC file, assembly file, or "
                                          "benchmark name")
    p_explain.add_argument("--pc", default=None, metavar="ADDR",
                           help="explain only the site at this text address")
    p_explain.add_argument("--line", default=None, metavar="FILE:N",
                           help="explain the site(s) at this source line")
    p_explain.add_argument("--json", action="store_true",
                           help="emit the machine-readable report")
    p_explain.add_argument("--sweep", action="store_true",
                           help="predict per-site miss ratios across block "
                                "sizes 8-128 with the analytical cache model")
    p_explain.add_argument("--software-support", action="store_true",
                           help="compile with the paper's Section 4 support")
    p_explain.add_argument("--cache-size", type=int, default=16 * 1024)
    p_explain.add_argument("--block-size", type=int, default=32)
    p_explain.add_argument("--max-instructions", type=int,
                           default=50_000_000)
    p_explain.set_defaults(func=cmd_explain)

    p_diff = sub.add_parser(
        "diff", help="gate two repro.metrics/1 snapshots (repro.obs.diff)"
    )
    p_diff.add_argument("old", help="baseline snapshot JSON")
    p_diff.add_argument("new", help="candidate snapshot JSON")
    p_diff.add_argument("--gate", default=None, metavar="GATES.toml",
                        help="per-metric thresholds; without it any change "
                             "at all is a violation")
    p_diff.add_argument("--all", action="store_true",
                        help="list unchanged metrics too")
    p_diff.set_defaults(func=cmd_diff)

    p_report = sub.add_parser(
        "report", help="static HTML dashboard of a suite sweep "
                       "(repro.obs.report)"
    )
    p_report.add_argument("--suite", default=None, metavar="A,B,...",
                          help="benchmarks to sweep (default: $REPRO_SUITE "
                               "or all)")
    p_report.add_argument("--machines", default="base,fac32",
                          metavar="M,N,...",
                          help="machine flavours (default base,fac32)")
    p_report.add_argument("--out", default="report", metavar="DIR",
                          help="output directory (default ./report)")
    p_report.add_argument("--snapshot", default=None, metavar="FILE",
                          help="also write the sweep snapshot JSON here "
                               "(the input for a later 'repro diff')")
    p_report.add_argument("--from-snapshot", default=None, metavar="FILE",
                          help="render an existing sweep snapshot instead "
                               "of computing one")
    p_report.add_argument("--software-support", action="store_true",
                          help="build the suite with Section 4 support")
    p_report.set_defaults(func=cmd_report)

    p_exp = sub.add_parser("experiment", help="regenerate a table/figure")
    p_exp.add_argument("which")
    p_exp.set_defaults(func=cmd_experiment)

    from repro.farm.cli import add_farm_parser
    from repro.serve.cli import add_serve_parser, add_slo_parser

    add_farm_parser(sub)
    add_serve_parser(sub)
    add_slo_parser(sub)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
