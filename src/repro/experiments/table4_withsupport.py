"""Table 4: program statistics with software support.

Per benchmark: percentage change (relative to the unsupported build) in
instruction count, baseline cycles, loads, stores, and memory usage;
absolute change in I/D-cache miss ratios; TLB miss-ratio change; and
prediction failure percentages at 32-byte blocks for All accesses and
excluding register+register addressing ("No R+R").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import format_table
from repro.experiments import common


@dataclass
class Table4Row:
    name: str
    insts_change: float        # percent
    cycles_change: float       # percent
    loads_change: float        # percent
    stores_change: float       # percent
    icache_miss_delta: float   # absolute
    dcache_miss_delta: float   # absolute
    memory_change: float       # percent
    tlb_miss_delta: float      # absolute
    fail_load_all: float
    fail_load_norr: float
    fail_store_all: float
    fail_store_norr: float


@dataclass
class Table4Result:
    rows: list[Table4Row] = field(default_factory=list)

    def render(self) -> str:
        headers = ["benchmark", "insts%", "cycles%", "loads%", "stores%",
                   "di$miss", "dd$miss", "mem%", "dtlb",
                   "L-all%", "L-noRR%", "S-all%", "S-noRR%"]
        table_rows = [
            [r.name,
             f"{r.insts_change:+.1f}", f"{r.cycles_change:+.1f}",
             f"{r.loads_change:+.1f}", f"{r.stores_change:+.1f}",
             f"{r.icache_miss_delta:+.4f}", f"{r.dcache_miss_delta:+.4f}",
             f"{r.memory_change:+.1f}", f"{r.tlb_miss_delta:+.4f}",
             f"{r.fail_load_all:.1f}", f"{r.fail_load_norr:.1f}",
             f"{r.fail_store_all:.1f}", f"{r.fail_store_norr:.1f}"]
            for r in self.rows
        ]
        return format_table(
            headers, table_rows,
            title="Table 4: program statistics with software support "
                  "(changes vs. Table 3; failure % at 32-byte blocks)")


def _pct(new: float, old: float) -> float:
    return 100.0 * (new - old) / old if old else 0.0


def farm_cells(benchmarks=None) -> set:
    """Table 4 compares the supported and unsupported builds."""
    from repro.farm import Cell

    cells = set()
    for name in common.suite_names(benchmarks):
        for software in (False, True):
            cells.add(Cell("analysis", name, software))
            cells.add(Cell("sim", name, software, "base"))
    return cells


def run_table4(benchmarks=None) -> Table4Result:
    names = common.suite_names(benchmarks)
    result = Table4Result()
    for name in names:
        base = common.analysis_for(name, False)
        opt = common.analysis_for(name, True)
        base_sim = common.sim_for(name, False, "base")
        opt_sim = common.sim_for(name, True, "base")
        b32 = base.predictions[32]
        o32 = opt.predictions[32]
        result.rows.append(Table4Row(
            name=name,
            insts_change=_pct(opt.instructions, base.instructions),
            cycles_change=_pct(opt_sim.cycles, base_sim.cycles),
            loads_change=_pct(o32.loads, b32.loads),
            stores_change=_pct(o32.stores, b32.stores),
            icache_miss_delta=opt.icache_miss_ratio - base.icache_miss_ratio,
            dcache_miss_delta=opt.dcache_miss_ratio - base.dcache_miss_ratio,
            memory_change=_pct(opt.memory_usage, base.memory_usage),
            tlb_miss_delta=opt.tlb_miss_ratio - base.tlb_miss_ratio,
            fail_load_all=100.0 * o32.load_failure_rate,
            fail_load_norr=100.0 * o32.norr_load_failure_rate,
            fail_store_all=100.0 * o32.store_failure_rate,
            fail_store_norr=100.0 * o32.norr_store_failure_rate,
        ))
    return result
