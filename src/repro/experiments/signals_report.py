"""Diagnostic: which verification signal causes each program's
mispredictions?

Not a table in the paper, but the paper's Section 2/3 arguments predict
the mix: ``GenCarry`` (colliding index bits, the unaligned-base case)
should dominate; ``Overflow`` (carries out of the block offset) comes
second; negative offsets (``LargeNegConst``, ``IndexReg<31>``) should be
nearly absent ("negative offsets occur infrequently ... about 3.2% of
all loads" for gcc). This harness checks that reading of the paper
against the whole suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import format_table
from repro.experiments import common

SIGNALS = ("overflow", "gen_carry", "large_neg_const", "neg_index_reg")


@dataclass
class SignalsResult:
    # benchmark -> signal -> % of memory references that raised it
    rates: dict[str, dict[str, float]] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["benchmark"] + [s for s in SIGNALS]
        rows = [
            [name] + [f"{self.rates[name][s]:.2f}" for s in SIGNALS]
            for name in self.rates
        ]
        return format_table(
            headers, rows,
            title="Failure-signal mix (% of references raising each signal, "
                  "no software support, 32-byte blocks)")

    def dominant(self, name: str) -> str:
        return max(SIGNALS, key=lambda s: self.rates[name][s])


def farm_cells(benchmarks=None, software_support: bool = False) -> set:
    """The farm cells (analyses) the signals diagnostic reads."""
    from repro.farm import Cell

    return {Cell("analysis", name, software_support)
            for name in common.suite_names(benchmarks)}


def run_signals(benchmarks=None, software_support: bool = False) -> SignalsResult:
    names = common.suite_names(benchmarks)
    result = SignalsResult()
    for name in names:
        analysis = common.analysis_for(name, software_support)
        stats = analysis.predictions[32]
        refs = stats.loads + stats.stores
        result.rates[name] = {
            signal: 100.0 * stats.signal_counts[signal] / refs if refs else 0.0
            for signal in SIGNALS
        }
    return result
