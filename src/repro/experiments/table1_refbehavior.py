"""Table 1: program reference behaviour.

Per benchmark: dynamic instructions, total references, the load/store
split, and the breakdown of loads by reference type (global-pointer,
stack-pointer, general-pointer addressing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import format_table
from repro.experiments import common


@dataclass
class Table1Row:
    name: str
    instructions: int
    refs: int
    load_pct: float
    store_pct: float
    global_pct: float
    stack_pct: float
    general_pct: float


@dataclass
class Table1Result:
    rows: list[Table1Row] = field(default_factory=list)

    def render(self) -> str:
        headers = ["benchmark", "insts", "refs", "%loads", "%stores",
                   "%global", "%stack", "%general"]
        table_rows = [
            [r.name, r.instructions, r.refs,
             f"{r.load_pct:.1f}", f"{r.store_pct:.1f}",
             f"{r.global_pct:.1f}", f"{r.stack_pct:.1f}", f"{r.general_pct:.1f}"]
            for r in self.rows
        ]
        return format_table(headers, table_rows,
                            title="Table 1: program reference behaviour "
                                  "(load breakdown by reference type)")


def farm_cells(benchmarks=None, software_support: bool = False) -> set:
    """The farm cells (analyses) Table 1 reads."""
    from repro.farm import Cell

    return {Cell("analysis", name, software_support)
            for name in common.suite_names(benchmarks)}


def run_table1(benchmarks=None, software_support: bool = False) -> Table1Result:
    names = common.suite_names(benchmarks)
    result = Table1Result()
    for name in names:
        analysis = common.analysis_for(name, software_support)
        profile = analysis.profile
        refs = profile.refs
        result.rows.append(Table1Row(
            name=name,
            instructions=analysis.instructions,
            refs=refs,
            load_pct=100.0 * profile.loads / refs if refs else 0.0,
            store_pct=100.0 * profile.stores / refs if refs else 0.0,
            global_pct=100.0 * profile.load_fraction("global"),
            stack_pct=100.0 * profile.load_fraction("stack"),
            general_pct=100.0 * profile.load_fraction("general"),
        ))
    return result
