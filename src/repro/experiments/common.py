"""Shared infrastructure for the experiment harnesses.

Runs are cached per (benchmark, compile flavour, machine flavour) so the
table/figure harnesses can share work: Figure 6 and Table 6 read the same
simulations, Tables 1/3/4 and Figure 3 read the same functional traces.

Set the ``REPRO_SUITE`` environment variable to a comma-separated subset
(e.g. ``REPRO_SUITE=compress,alvinn``) to bound harness run time.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.analysis.prediction import TraceAnalysis, analyze_program
from repro.fac.config import FacConfig
from repro.pipeline.config import MachineConfig
from repro.pipeline.pipeline import simulate_program
from repro.pipeline.result import SimResult
from repro.workloads.suite import BENCHMARKS, FP_BENCHMARKS, INT_BENCHMARKS, build_benchmark

MAX_INSTRUCTIONS = 10_000_000

# Machine flavours used across the experiments.
MACHINES: dict[str, MachineConfig] = {
    "base": MachineConfig(),
    "1cyc": MachineConfig(one_cycle_loads=True),
    "perfect": MachineConfig(perfect_dcache=True),
    "1cyc+perfect": MachineConfig(one_cycle_loads=True, perfect_dcache=True),
    "fac16": MachineConfig(fac=FacConfig(block_size=16)),
    "fac32": MachineConfig(fac=FacConfig(block_size=32)),
    "fac16norr": MachineConfig(fac=FacConfig(block_size=16, speculate_reg_reg=False)),
    "fac32norr": MachineConfig(fac=FacConfig(block_size=32, speculate_reg_reg=False)),
}


def suite_names(benchmarks=None) -> tuple[str, ...]:
    """The benchmarks to run: an explicit list, $REPRO_SUITE, or all 19."""
    if benchmarks:
        return tuple(benchmarks)
    env = os.environ.get("REPRO_SUITE", "").strip()
    if env:
        names = tuple(n.strip() for n in env.split(",") if n.strip())
        unknown = [n for n in names if n not in BENCHMARKS]
        if unknown:
            raise KeyError(f"unknown benchmarks in REPRO_SUITE: {unknown}")
        return names
    return tuple(BENCHMARKS)


@lru_cache(maxsize=128)
def analysis_for(name: str, software_support: bool) -> TraceAnalysis:
    """Cached functional-trace analysis of one benchmark build."""
    program = build_benchmark(name, software_support=software_support)
    return analyze_program(program, max_instructions=MAX_INSTRUCTIONS)


@lru_cache(maxsize=512)
def sim_for(name: str, software_support: bool, machine: str) -> SimResult:
    """Cached timing simulation of one benchmark on one machine flavour."""
    program = build_benchmark(name, software_support=software_support)
    return simulate_program(program, MACHINES[machine],
                            max_instructions=MAX_INSTRUCTIONS)


def clear_caches() -> None:
    analysis_for.cache_clear()
    sim_for.cache_clear()


def weighted_average(names, values: dict[str, float],
                     weights: dict[str, float]) -> float:
    """Run-time (cycle) weighted average, as the paper's Int/FP-Avg bars."""
    total_weight = sum(weights[n] for n in names)
    if total_weight == 0:
        return 0.0
    return sum(values[n] * weights[n] for n in names) / total_weight


def split_by_category(names) -> tuple[list[str], list[str]]:
    ints = [n for n in names if n in INT_BENCHMARKS]
    fps = [n for n in names if n in FP_BENCHMARKS]
    return ints, fps
