"""Shared infrastructure for the experiment harnesses.

Results are served through the farm artifact store
(:mod:`repro.farm.api`): one functional trace per (benchmark, compile
flavour) drives every analysis and timing replay, each cell persists as
a ``repro.metrics/1`` snapshot keyed by a deterministic fingerprint, and
warm re-runs -- including a second harness reading the same cells, or a
whole resumed sweep -- are cache hits. Only a small bounded window of
deserialized results is held in memory, so the full 19-benchmark x
8-flavour sweep no longer accumulates every ``SimResult`` and
``TraceAnalysis`` at once (the old unbounded ``lru_cache``s did).

All cells execute on the predecoded fast-dispatch engine
(:mod:`repro.cpu.predecode`): traces are captured through
:meth:`CPU.run_trace` and replayed through
:func:`repro.cpu.tracefile.replay_into`, which is bit-for-bit equivalent
to the legacy ``step()`` loop (see docs/performance.md) -- snapshots
produced before this engine existed remain valid cache hits.

Set ``REPRO_SUITE`` to a comma-separated subset (e.g.
``REPRO_SUITE=compress,alvinn``) to bound harness run time,
``REPRO_FARM_DIR`` to relocate the artifact store, and ``REPRO_FARM=off``
to disable persistence entirely. ``repro farm run`` fills the same store
in parallel; see docs/experiments.md.
"""

from __future__ import annotations

import os

from repro.analysis.prediction import TraceAnalysis
from repro.fac.config import FacConfig
from repro.farm import api as farm
from repro.pipeline.config import MachineConfig
from repro.pipeline.result import SimResult
from repro.workloads.suite import BENCHMARKS, FP_BENCHMARKS, INT_BENCHMARKS

MAX_INSTRUCTIONS = 10_000_000

# Machine flavours used across the experiments.
MACHINES: dict[str, MachineConfig] = {
    "base": MachineConfig(),
    "1cyc": MachineConfig(one_cycle_loads=True),
    "perfect": MachineConfig(perfect_dcache=True),
    "1cyc+perfect": MachineConfig(one_cycle_loads=True, perfect_dcache=True),
    "fac16": MachineConfig(fac=FacConfig(block_size=16)),
    "fac32": MachineConfig(fac=FacConfig(block_size=32)),
    "fac16norr": MachineConfig(fac=FacConfig(block_size=16, speculate_reg_reg=False)),
    "fac32norr": MachineConfig(fac=FacConfig(block_size=32, speculate_reg_reg=False)),
}


def suite_names(benchmarks=None) -> tuple[str, ...]:
    """The benchmarks to run: an explicit list, $REPRO_SUITE, or all 19."""
    if benchmarks:
        return tuple(benchmarks)
    env = os.environ.get("REPRO_SUITE", "").strip()
    if env:
        names = tuple(n.strip() for n in env.split(",") if n.strip())
        unknown = [n for n in names if n not in BENCHMARKS]
        if unknown:
            raise KeyError(f"unknown benchmarks in REPRO_SUITE: {unknown}")
        return names
    return tuple(BENCHMARKS)


def analysis_for(name: str, software_support: bool) -> TraceAnalysis:
    """Store-backed functional-trace analysis of one benchmark build."""
    return farm.analysis_for(name, software_support,
                             max_instructions=MAX_INSTRUCTIONS)


def sim_for(name: str, software_support: bool, machine: str) -> SimResult:
    """Store-backed timing simulation of one benchmark on one flavour."""
    return farm.sim_for(name, software_support, MACHINES[machine],
                        label=machine, max_instructions=MAX_INSTRUCTIONS)


def clear_caches() -> None:
    """Drop the bounded in-memory window (not the on-disk store)."""
    farm.clear_memo()


def weighted_average(names, values: dict[str, float],
                     weights: dict[str, float]) -> float:
    """Run-time (cycle) weighted average, as the paper's Int/FP-Avg bars."""
    total_weight = sum(weights[n] for n in names)
    if total_weight == 0:
        return 0.0
    return sum(values[n] * weights[n] for n in names) / total_weight


def split_by_category(names) -> tuple[list[str], list[str]]:
    ints = [n for n in names if n in INT_BENCHMARKS]
    fps = [n for n in names if n in FP_BENCHMARKS]
    return ints, fps
