"""One harness per paper table/figure.

=============  ====================================================
module         reproduces
=============  ====================================================
fig1_pipeline  Figure 1 -- the untolerated load-use stall
fig2_ipc       Figure 2 -- IPC under load-latency idealizations
table1         Table 1  -- reference behaviour by type
fig3_offsets   Figure 3 -- cumulative offset-size distributions
fig5_examples  Figure 5 -- the four worked prediction examples
table3         Table 3  -- per-program stats without software support
table4         Table 4  -- per-program stats with software support
fig6_speedups  Figure 6 -- FAC speedups across design points
table6         Table 6  -- cache-bandwidth overhead of speculation
signals_report diagnostic: failure-signal mix per program
=============  ====================================================
"""

from repro.experiments import common
from repro.experiments.fig1_pipeline import run_fig1
from repro.experiments.fig2_ipc import run_fig2
from repro.experiments.fig3_offsets import run_fig3
from repro.experiments.fig5_examples import run_fig5
from repro.experiments.fig6_speedups import run_fig6
from repro.experiments.table1_refbehavior import run_table1
from repro.experiments.table3_nosupport import run_table3
from repro.experiments.table4_withsupport import run_table4
from repro.experiments.signals_report import run_signals
from repro.experiments.table6_bandwidth import run_table6

__all__ = [
    "common",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig5",
    "run_fig6",
    "run_table1",
    "run_table3",
    "run_table4",
    "run_table6",
    "run_signals",
]
