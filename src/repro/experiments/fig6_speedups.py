"""Figure 6: fast-address-calculation speedups.

Speedups of four design points over the baseline (no-FAC machine running
the unsupported binary): {hardware-only, hardware+software} x {16-byte,
32-byte blocks}, optionally without register+register speculation. The
paper's shape: every program speeds up; integer codes gain more than FP;
software support adds a few percent; block size matters little.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import format_table
from repro.experiments import common

# (label, software support?, machine flavour)
DESIGN_POINTS = (
    ("hw16", False, "fac16"),
    ("hw+sw16", True, "fac16"),
    ("hw32", False, "fac32"),
    ("hw+sw32", True, "fac32"),
)
DESIGN_POINTS_NORR = (
    ("hw16", False, "fac16norr"),
    ("hw+sw16", True, "fac16norr"),
    ("hw32", False, "fac32norr"),
    ("hw+sw32", True, "fac32norr"),
)


@dataclass
class Fig6Result:
    # benchmark -> design label -> speedup over baseline
    speedups: dict[str, dict[str, float]] = field(default_factory=dict)
    int_avg: dict[str, float] = field(default_factory=dict)
    fp_avg: dict[str, float] = field(default_factory=dict)
    labels: tuple = ()

    def render(self) -> str:
        headers = ["benchmark"] + list(self.labels)
        rows = [[name] + [self.speedups[name][label] for label in self.labels]
                for name in self.speedups]
        if self.int_avg:
            rows.append(["Int-Avg"] + [self.int_avg[label] for label in self.labels])
        if self.fp_avg:
            rows.append(["FP-Avg"] + [self.fp_avg[label] for label in self.labels])
        return format_table(headers, rows,
                            title="Figure 6: speedup over baseline execution time")


def farm_cells(benchmarks=None, reg_reg_speculation: bool = True) -> set:
    """Figure 6 reads the baseline plus four FAC design points."""
    from repro.farm import Cell

    points = DESIGN_POINTS if reg_reg_speculation else DESIGN_POINTS_NORR
    cells = set()
    for name in common.suite_names(benchmarks):
        cells.add(Cell("sim", name, False, "base"))
        for _, software, machine in points:
            cells.add(Cell("sim", name, software, machine))
    return cells


def run_fig6(benchmarks=None, reg_reg_speculation: bool = True) -> Fig6Result:
    names = common.suite_names(benchmarks)
    points = DESIGN_POINTS if reg_reg_speculation else DESIGN_POINTS_NORR
    result = Fig6Result(labels=tuple(label for label, _, _ in points))
    weights: dict[str, float] = {}
    per_label: dict[str, dict[str, float]] = {label: {} for label, _, _ in points}
    for name in names:
        baseline = common.sim_for(name, False, "base")
        weights[name] = float(baseline.cycles)
        result.speedups[name] = {}
        for label, software, machine in points:
            sim = common.sim_for(name, software, machine)
            speedup = baseline.cycles / sim.cycles if sim.cycles else 0.0
            result.speedups[name][label] = speedup
            per_label[label][name] = speedup
    ints, fps = common.split_by_category(names)
    if ints:
        result.int_avg = {
            label: common.weighted_average(ints, per_label[label], weights)
            for label, _, _ in points
        }
    if fps:
        result.fp_avg = {
            label: common.weighted_average(fps, per_label[label], weights)
            for label, _, _ in points
        }
    return result
