"""Figure 3: cumulative load-offset size distributions.

For the paper's four representative programs (gcc, sc, doduc, spice):
the cumulative fraction of loads whose offset fits in k bits, separately
for global-pointer, stack-pointer, and general-pointer accesses. The
expected shape: general-pointer offsets concentrate at zero/small sizes;
global- and stack-pointer offsets are large (they are partial addresses
and frame offsets).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import format_series
from repro.experiments import common

DEFAULT_PROGRAMS = ("gcc", "sc", "doduc", "spice")
BUCKET_LABELS = ["Neg"] + [str(b) for b in range(16)] + ["More"]


@dataclass
class Fig3Result:
    # program -> ref class -> cumulative fractions over BUCKET_LABELS
    curves: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    def render(self) -> str:
        lines = ["Figure 3: cumulative load-offset distributions "
                 "(fraction of loads with offset <= bucket)"]
        for program, classes in self.curves.items():
            lines.append(f"-- {program} --")
            for ref_class, values in classes.items():
                lines.append(format_series(
                    f"  {ref_class:8s}", BUCKET_LABELS, values, "{:.2f}"
                ))
        return "\n".join(lines)

    def final_fraction(self, program: str, ref_class: str, bucket: int) -> float:
        """Cumulative fraction at offset-size ``bucket`` bits."""
        return self.curves[program][ref_class][1 + bucket]


def farm_cells(benchmarks=None, software_support: bool = False) -> set:
    """The farm cells (analyses) Figure 3 reads."""
    from repro.farm import Cell

    return {Cell("analysis", name, software_support)
            for name in (benchmarks or DEFAULT_PROGRAMS)}


def run_fig3(benchmarks=None, software_support: bool = False) -> Fig3Result:
    names = benchmarks or DEFAULT_PROGRAMS
    result = Fig3Result()
    for name in names:
        analysis = common.analysis_for(name, software_support)
        profile = analysis.profile
        result.curves[name] = {
            ref_class: profile.cumulative_offsets(ref_class)
            for ref_class in ("global", "stack", "general")
        }
    return result
