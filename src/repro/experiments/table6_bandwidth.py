"""Table 6: memory bandwidth overhead of address speculation.

Failed speculative cache accesses (each one costs an extra cache access
for the MEM-stage replay) as a percentage of total memory references,
for {hardware-only, software support} x {R+R speculation, no R+R}.
The paper's shape: large overheads without software support (tens of
percent for the worst programs), cut dramatically by software support,
and bounded near 1% once register+register speculation is disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import format_table
from repro.experiments import common

COLUMNS = (
    ("hw/rr", False, "fac32"),
    ("sw/rr", True, "fac32"),
    ("hw/norr", False, "fac32norr"),
    ("sw/norr", True, "fac32norr"),
)


@dataclass
class Table6Result:
    # benchmark -> column label -> overhead percent
    overhead: dict[str, dict[str, float]] = field(default_factory=dict)

    def render(self) -> str:
        labels = [label for label, _, _ in COLUMNS]
        headers = ["benchmark"] + labels
        rows = [
            [name] + [f"{self.overhead[name][label]:.2f}" for label in labels]
            for name in self.overhead
        ]
        return format_table(
            headers, rows,
            title="Table 6: failed speculative accesses as % of total refs "
                  "(R+R speculation on/off x software support)")


def farm_cells(benchmarks=None) -> set:
    """Table 6 reads the R+R on/off x software on/off sims."""
    from repro.farm import Cell

    return {Cell("sim", name, software, machine)
            for name in common.suite_names(benchmarks)
            for _, software, machine in COLUMNS}


def run_table6(benchmarks=None) -> Table6Result:
    names = common.suite_names(benchmarks)
    result = Table6Result()
    for name in names:
        result.overhead[name] = {}
        for label, software, machine in COLUMNS:
            sim = common.sim_for(name, software, machine)
            result.overhead[name][label] = 100.0 * sim.bandwidth_overhead
    return result
