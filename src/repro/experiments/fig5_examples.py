"""Figure 5: the paper's four worked examples of fast address calculation.

(a) a zero-offset pointer dereference (predicts correctly),
(b) a global access through an aligned global pointer (correct),
(c) a stack access whose offset stays within the block (correct),
(d) a stack access whose carry propagates into the set index (fails).

The paper's figure uses a 16 KB direct-mapped cache with 16-byte blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fac.config import FacConfig
from repro.fac.predictor import FastAddressCalculator, Prediction


@dataclass(frozen=True)
class Example:
    label: str
    description: str
    base: int
    offset: int
    expected_success: bool


EXAMPLES = (
    Example("a", "load r3, 0(r8)      -- pointer dereference",
            0x00A0C0, 0x0, True),
    Example("b", "load r3, 24366(gp)  -- aligned global pointer",
            0x10000000, 0x5F2E, True),
    Example("c", "load r3, 102(sp)    -- small stack offset",
            0x7FFF5B84, 0x66, True),
    Example("d", "load r3, 364(sp)    -- carry into the set index",
            0x7FFF5B84, 0x16C, False),
)


@dataclass
class Fig5Result:
    predictions: dict[str, Prediction] = field(default_factory=dict)

    def render(self) -> str:
        lines = ["Figure 5: worked examples (16 KB cache, 16-byte blocks)"]
        for example in EXAMPLES:
            pred = self.predictions[example.label]
            status = "correct" if pred.success else "MISPREDICT"
            lines.append(
                f"({example.label}) {example.description}\n"
                f"    base=0x{example.base:08x} offset=0x{example.offset:x} "
                f"predicted=0x{pred.predicted:08x} actual=0x{pred.actual:08x} "
                f"-> {status}"
            )
        return "\n".join(lines)


def farm_cells(benchmarks=None) -> set:
    """Figure 5 exercises the predictor directly; no farm cells."""
    return set()


def run_fig5() -> Fig5Result:
    fac = FastAddressCalculator(FacConfig(cache_size=16 * 1024, block_size=16))
    result = Fig5Result()
    for example in EXAMPLES:
        prediction = fac.predict(example.base, example.offset, offset_is_reg=False)
        if prediction.success != example.expected_success:
            raise AssertionError(
                f"example ({example.label}) disagrees with the paper: "
                f"{prediction}"
            )
        result.predictions[example.label] = prediction
    return result
