"""Figure 2: impact of load latency on IPC.

Four machines per benchmark: Baseline (2-cycle loads, 6-cycle miss),
1-Cycle Loads, Perfect Cache (2-cycle loads, no miss penalty), and
1-Cycle + Perfect. The paper's headline observation -- reproduced here --
is that for more than half the programs, 1-cycle loads beat a perfect
cache: the address-generation cycle costs more than the cache misses do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import format_table
from repro.experiments import common

CONFIGS = ("base", "1cyc", "perfect", "1cyc+perfect")
LABELS = {
    "base": "Baseline",
    "1cyc": "1-Cycle Loads",
    "perfect": "Perfect Cache",
    "1cyc+perfect": "1-Cycle + Perfect",
}


@dataclass
class Fig2Result:
    ipc: dict[str, dict[str, float]] = field(default_factory=dict)
    int_avg: dict[str, float] = field(default_factory=dict)
    fp_avg: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["benchmark"] + [LABELS[c] for c in CONFIGS]
        rows = [
            [name] + [self.ipc[name][c] for c in CONFIGS]
            for name in self.ipc
        ]
        if self.int_avg:
            rows.append(["Int-Avg"] + [self.int_avg[c] for c in CONFIGS])
        if self.fp_avg:
            rows.append(["FP-Avg"] + [self.fp_avg[c] for c in CONFIGS])
        return format_table(headers, rows, title="Figure 2: IPC by load-latency model")


def farm_cells(benchmarks=None) -> set:
    """Figure 2 reads the four load-latency idealizations per benchmark."""
    from repro.farm import Cell

    return {Cell("sim", name, False, config)
            for name in common.suite_names(benchmarks)
            for config in CONFIGS}


def run_fig2(benchmarks=None) -> Fig2Result:
    names = common.suite_names(benchmarks)
    result = Fig2Result()
    weights: dict[str, float] = {}
    per_config: dict[str, dict[str, float]] = {c: {} for c in CONFIGS}
    for name in names:
        result.ipc[name] = {}
        for config in CONFIGS:
            sim = common.sim_for(name, False, config)
            result.ipc[name][config] = sim.ipc
            per_config[config][name] = sim.ipc
            if config == "base":
                weights[name] = float(sim.cycles)
    ints, fps = common.split_by_category(names)
    if ints:
        result.int_avg = {
            c: common.weighted_average(ints, per_config[c], weights) for c in CONFIGS
        }
    if fps:
        result.fp_avg = {
            c: common.weighted_average(fps, per_config[c], weights) for c in CONFIGS
        }
    return result
