"""Table 3: program statistics without software support.

Per benchmark: instructions, baseline cycles, loads, stores, I/D-cache
miss ratios, memory usage, and prediction failure percentages for loads
and stores at 16- and 32-byte block sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import format_table
from repro.experiments import common


@dataclass
class Table3Row:
    name: str
    instructions: int
    cycles: int
    loads: int
    stores: int
    icache_miss: float
    dcache_miss: float
    memory_usage: int
    fail_load_16: float
    fail_store_16: float
    fail_load_32: float
    fail_store_32: float


@dataclass
class Table3Result:
    rows: list[Table3Row] = field(default_factory=list)

    def render(self) -> str:
        headers = ["benchmark", "insts", "cycles", "loads", "stores",
                   "i$miss", "d$miss", "mem(k)",
                   "L16%", "S16%", "L32%", "S32%"]
        table_rows = [
            [r.name, r.instructions, r.cycles, r.loads, r.stores,
             f"{r.icache_miss:.4f}", f"{r.dcache_miss:.4f}",
             r.memory_usage // 1024,
             f"{r.fail_load_16:.1f}", f"{r.fail_store_16:.1f}",
             f"{r.fail_load_32:.1f}", f"{r.fail_store_32:.1f}"]
            for r in self.rows
        ]
        return format_table(
            headers, table_rows,
            title="Table 3: program statistics without software support "
                  "(prediction failure % by block size)")


def collect_rows(names, software_support: bool) -> list[Table3Row]:
    rows = []
    for name in names:
        analysis = common.analysis_for(name, software_support)
        sim = common.sim_for(name, software_support, "base")
        p16 = analysis.predictions[16]
        p32 = analysis.predictions[32]
        rows.append(Table3Row(
            name=name,
            instructions=analysis.instructions,
            cycles=sim.cycles,
            loads=p32.loads,
            stores=p32.stores,
            icache_miss=analysis.icache_miss_ratio,
            dcache_miss=analysis.dcache_miss_ratio,
            memory_usage=analysis.memory_usage,
            fail_load_16=100.0 * p16.load_failure_rate,
            fail_store_16=100.0 * p16.store_failure_rate,
            fail_load_32=100.0 * p32.load_failure_rate,
            fail_store_32=100.0 * p32.store_failure_rate,
        ))
    return rows


def farm_cells(benchmarks=None) -> set:
    """Table 3 reads one analysis and one baseline sim per benchmark."""
    from repro.farm import Cell

    cells = set()
    for name in common.suite_names(benchmarks):
        cells.add(Cell("analysis", name, False))
        cells.add(Cell("sim", name, False, "base"))
    return cells


def run_table3(benchmarks=None) -> Table3Result:
    names = common.suite_names(benchmarks)
    return Table3Result(rows=collect_rows(names, software_support=False))
