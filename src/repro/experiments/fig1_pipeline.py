"""Figure 1: an untolerated load latency, cycle by cycle.

The paper's opening example: a load followed by a dependent subtract.
In the traditional 5-stage pipeline the subtract stalls one cycle while
the load finishes EX (address) + MEM (cache). With fast address
calculation the cache is accessed during EX, the result is ready a
cycle earlier, and the stall disappears.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fac.config import FacConfig
from repro.isa.assembler import assemble
from repro.linker import LinkOptions, link
from repro.pipeline.config import MachineConfig
from repro.pipeline.tracer import TracedRun, trace_program

# The paper's add / load / sub sequence (registers renamed to MIPS
# conventions; the load's base depends on the add, the sub on the load).
FIGURE1_ASM = """
.text
.globl __start
__start:
    lw   $t9, %gprel(seed)($gp)      # give the base register a value
    addu $t2, $t9, $t9
    lw   $t8, 4($t2)                 # warm the cache block (Figure 1
    addu $t8, $t8, $t8               # assumes the access hits)
    addu $t2, $t9, $t9               # add  rx, ry, rz
    lw   $t3, 4($t2)                 # load rw, 4(rx)
    subu $t4, $t9, $t3               # sub  ra, rb, rw
    li   $v0, 10
    syscall
.sdata
seed: .word 0x100
"""

# indexes of the add/load/sub in the trace (after the warm-up block)
ADD, LOAD, SUB = 4, 5, 6


@dataclass
class Fig1Result:
    baseline: TracedRun
    fac: TracedRun

    @property
    def baseline_stall(self) -> int:
        """Cycles the sub stalls after the load issues (baseline)."""
        return self.baseline.issue_cycle(SUB) - self.baseline.issue_cycle(LOAD) - 1

    @property
    def fac_stall(self) -> int:
        return self.fac.issue_cycle(SUB) - self.fac.issue_cycle(LOAD) - 1

    def render(self) -> str:
        return "\n".join([
            "Figure 1: untolerated load latency",
            "",
            "traditional 5-stage pipeline (2-cycle loads):",
            self.baseline.render(first=ADD, count=3),
            "",
            "with fast address calculation (cache access in EX):",
            self.fac.render(first=ADD, count=3),
            "",
            f"load-use stall: baseline {self.baseline_stall} cycle(s), "
            f"FAC {self.fac_stall} cycle(s)",
        ])


def farm_cells(benchmarks=None) -> set:
    """Figure 1 is a worked micro-example; it needs no farm cells."""
    return set()


def run_fig1() -> Fig1Result:
    program = link([assemble(FIGURE1_ASM, "fig1")], LinkOptions(align_gp=True))
    baseline = trace_program(program, MachineConfig())
    fac = trace_program(program, MachineConfig(fac=FacConfig()))
    result = Fig1Result(baseline=baseline, fac=fac)
    if result.baseline_stall <= result.fac_stall:
        raise AssertionError(
            "Figure 1 disagrees with the paper: FAC did not remove the stall"
        )
    return result
