"""Static FAC-predictability analysis (the `repro lint` engine).

Classifies every load/store of a linked program as ALWAYS_PREDICTS,
NEVER_PREDICTS, or DATA_DEPENDENT by abstract interpretation over a
known-bits lattice, and derives alignment lint diagnostics with fix-it
hints. See docs/static_analysis.md.
"""

from repro.analysis.static_fac.classify import (
    Classification,
    Geometry,
    SIGNALS,
    Verdict,
)
from repro.analysis.static_fac.interp import (
    SiteReport,
    SoundnessReport,
    StaticAnalysis,
    analyze_static,
    check_soundness,
)
from repro.analysis.static_fac.lint import (
    Diagnostic,
    LintReport,
    lint_program,
)

__all__ = [
    "Classification",
    "Diagnostic",
    "Geometry",
    "LintReport",
    "SIGNALS",
    "SiteReport",
    "SoundnessReport",
    "StaticAnalysis",
    "Verdict",
    "analyze_static",
    "check_soundness",
    "lint_program",
]
