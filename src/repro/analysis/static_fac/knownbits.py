"""Backward-compatible alias for the known-bits lattice.

The lattice moved to :mod:`repro.analysis.absint.knownbits` when the
dataflow core was extracted into the reusable abstract-interpretation
framework; this module keeps the historical import path working.
"""

from repro.analysis.absint.knownbits import *  # noqa: F401,F403
from repro.analysis.absint.knownbits import (  # noqa: F401
    KnownBits,
    MASK32,
    TOP,
    ZERO,
)
