"""Alignment lint: diagnostics with fix-it hints on top of the verdicts.

Diagnostic codes (documented in docs/static_analysis.md):

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
FAC101    warning   gp-relative access always mispredicts (global region
                    placement makes the set-index OR carry)
FAC102    warning   absolute-addressed global always mispredicts
FAC201    warning   sp/fp-relative access may mispredict (frame layout
                    leaves the stack pointer's low bits unknown)
FAC202    warning   sp/fp-relative access always mispredicts
FAC301    warning   negative constant offset exceeds one cache block
FAC302    note      register index may be negative (inherent to reg+reg)
FAC401    note      data-dependent access the toolchain cannot align
FAC402    note      struct size is not a power of two (array strides
                    break block alignment)
FAC501    note      memory instruction in unreachable code
FAC601    warning   function violates the O32 callee-saved convention
                    (verdicts near its call sites assume less)
========  ========  =====================================================

Warnings are *actionable*: a compiler/linker policy change (the paper's
Section 4 software support) removes them. Notes are informational and do
not affect the lint exit status.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.static_fac.classify import Verdict
from repro.analysis.static_fac.interp import (
    SiteReport,
    StaticAnalysis,
    analyze_static,
)
from repro.fac.config import FacConfig
from repro.isa.disassembler import disassemble
from repro.isa.program import Program
from repro.isa.registers import Reg, reg_name
from repro.utils.bits import next_pow2

SEVERITY_WARNING = "warning"
SEVERITY_NOTE = "note"


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, anchored at a text address."""

    code: str
    severity: str
    address: int          # 0 for program-level diagnostics
    function: Optional[str]
    message: str
    hint: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "address": self.address,
            "function": self.function,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        where = f"0x{self.address:08x}" if self.address else "program"
        if self.function:
            where += f" ({self.function})"
        text = f"{self.severity}: {self.code}: {where}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class LintReport:
    """Full lint output for one program."""

    program_name: str
    analysis: StaticAnalysis
    diagnostics: list[Diagnostic]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == SEVERITY_WARNING]

    @property
    def notes(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == SEVERITY_NOTE]

    def to_json(self) -> dict:
        """Machine-readable form, matching
        :data:`repro.analysis.reporting.LINT_SCHEMA`."""
        from repro.analysis.reporting import LINT_SCHEMA_VERSION

        config = self.analysis.config
        counts = self.analysis.counts()
        return {
            "schema": LINT_SCHEMA_VERSION,
            "program": self.program_name,
            "geometry": {
                "cache_size": config.cache_size,
                "block_size": config.block_size,
                "full_tag_add": config.full_tag_add,
            },
            "summary": {
                "sites": len(self.analysis.sites),
                "always": counts[Verdict.ALWAYS_PREDICTS.value],
                "never": counts[Verdict.NEVER_PREDICTS.value],
                "data_dependent": counts[Verdict.DATA_DEPENDENT.value],
                "unreachable": counts[Verdict.UNREACHABLE.value],
                "warnings": len(self.warnings),
                "notes": len(self.notes),
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def render_text(self) -> str:
        lines = [d.render() for d in self.diagnostics]
        summary = self.to_json()["summary"]
        lines.append(
            f"{self.program_name}: {summary['sites']} memory sites: "
            f"{summary['always']} always predict, "
            f"{summary['never']} never predict, "
            f"{summary['data_dependent']} data-dependent, "
            f"{summary['unreachable']} unreachable "
            f"({summary['warnings']} warnings, {summary['notes']} notes)"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------- #

def lint_program(
    program: Program,
    config: FacConfig | None = None,
    name: str = "program",
    analysis: StaticAnalysis | None = None,
    check_conventions: bool = True,
) -> LintReport:
    """Run the static pass (unless given) and derive diagnostics.

    Unless ``check_conventions`` is off, the sanitizer's convention
    checker runs first and its verified clobber facts replace the
    historical "callees preserve $s0-$s7/$fp/$gp/$sp" *assumption* in
    the known-bits call summaries; each violating function additionally
    gets a FAC601 warning.
    """
    clobbers: dict[str, frozenset[int]] = {}
    if analysis is None:
        if check_conventions:
            from repro.analysis.sanitize.convention import convention_clobbers
            clobbers = convention_clobbers(program)
        analysis = analyze_static(program, config, clobbers=clobbers)
    diags: list[Diagnostic] = []
    for func in sorted(clobbers):
        regs = ", ".join(reg_name(r) for r in sorted(clobbers[func]))
        sym = program.symbols.get(func)
        diags.append(Diagnostic(
            "FAC601", SEVERITY_WARNING, sym.address if sym else 0, func,
            f"`{func}` does not preserve the callee-saved {regs}; "
            "verdicts after its call sites treat them as unknown",
            hint="restore the register(s) before `jr $ra` — see "
                 "`repro sanitize` (SAN101) for the offending returns",
        ))
    unreachable: dict[Optional[str], list[SiteReport]] = {}
    for site in analysis.sites:
        if site.verdict is Verdict.UNREACHABLE:
            # Grouped below: per-site notes would drown the report in
            # never-called runtime-library functions.
            unreachable.setdefault(site.function, []).append(site)
            continue
        diag = _site_diagnostic(program, analysis, site)
        if diag is not None:
            diags.append(diag)
    for func, sites in unreachable.items():
        count = len(sites)
        plural = "s" if count != 1 else ""
        where = f"in `{func}` " if func else ""
        diags.append(Diagnostic(
            "FAC501", SEVERITY_NOTE, sites[0].addr, func,
            f"{count} memory instruction{plural} {where}"
            f"{'are' if count != 1 else 'is'} unreachable "
            "(dead or never-called code); not analyzed",
        ))
    diags.extend(_struct_diagnostics(program, analysis))
    return LintReport(program_name=name, analysis=analysis, diagnostics=diags)


def _site_diagnostic(
    program: Program, analysis: StaticAnalysis, site: SiteReport
) -> Optional[Diagnostic]:
    verdict = site.verdict
    if verdict is Verdict.ALWAYS_PREDICTS:
        return None
    what = disassemble(site.inst)
    config = analysis.config
    signals = ", ".join(sorted(site.certain or site.possible))
    if "large_neg_const" in site.certain:
        return Diagnostic(
            "FAC301", SEVERITY_WARNING, site.addr, site.function,
            f"`{what}` always mispredicts: constant offset {site.offset} "
            f"reaches below the base's {config.block_size}-byte block",
            hint="fold the negative offset into the base register or "
                 "restructure the access to use a non-negative offset",
        )
    base_reg = site.inst.rs
    if site.mode == "c" and base_reg == Reg.GP:
        if verdict is Verdict.NEVER_PREDICTS:
            return _gp_diagnostic(program, config, site, what, signals)
    if site.mode == "c" and base_reg in (Reg.SP, Reg.FP):
        return _stack_diagnostic(program, config, site, what, signals)
    if site.mode == "c" and verdict is Verdict.NEVER_PREDICTS \
            and site.base[0] == 0xFFFFFFFF:
        ea = (site.base[1] + site.offset) & 0xFFFFFFFF
        symbol = _data_symbol_at(program, ea)
        target = f"`{symbol}` " if symbol else ""
        return Diagnostic(
            "FAC102", SEVERITY_WARNING, site.addr, site.function,
            f"`{what}` always mispredicts ({signals}): absolute access to "
            f"{target}at 0x{ea:08x}",
            hint="move the datum into the gp-addressable global region or "
                 "relocate it to a block-aligned address",
        )
    if site.mode == "x" and "neg_index_reg" in site.possible:
        return Diagnostic(
            "FAC302", SEVERITY_NOTE, site.addr, site.function,
            f"`{what}` mispredicts whenever {reg_name(site.inst.rx)} is "
            "negative (register offsets cannot use the inverted-index trick)",
        )
    return Diagnostic(
        "FAC401", SEVERITY_NOTE, site.addr, site.function,
        f"`{what}` is data-dependent ({', '.join(sorted(site.possible))})",
    )


def _gp_diagnostic(program, config, site, what, signals) -> Diagnostic:
    gp = program.gp_value
    ea = (gp + site.offset) & 0xFFFFFFFF
    symbol = _data_symbol_at(program, ea)
    target = f"global `{symbol}`" if symbol else "the target"
    offset = site.offset
    facts = program.link_facts
    if facts is not None and not facts.align_gp:
        placement = (
            f"$gp = 0x{gp:08x} has set-index bits set, so the "
            "carry-free OR addition fails"
        )
    else:
        placement = (
            f"the offset crosses the set-index boundary for a "
            f"{config.cache_size // 1024}KB/{config.block_size}B cache"
        )
    return Diagnostic(
        "FAC101", SEVERITY_WARNING, site.addr, site.function,
        f"`{what}` always mispredicts ({signals}): {target} is at "
        f"GP{offset:+#x} (0x{ea:08x}) and {placement}",
        hint="relink with align_gp (FacSoftwareOptions.enabled()) to place "
             "the global region on a power-of-two boundary above the "
             "largest gp offset",
    )


def _stack_diagnostic(program, config, site, what, signals) -> Diagnostic:
    func = site.function
    facts = program.frame_facts.get(func) if func else None
    never = site.verdict is Verdict.NEVER_PREDICTS
    code = "FAC202" if never else "FAC201"
    reg = reg_name(site.inst.rs)
    if never:
        detail = (f"{reg}+{site.offset} provably carries into the "
                  "set-index field")
    else:
        detail = (f"the analysis cannot prove {reg}+{site.offset} stays "
                  "carry-free in the set-index field")
    claim = "always mispredicts" if never else "may mispredict"
    message = f"`{what}` {claim} ({signals}): {detail}"
    if facts is not None:
        aligned = next_pow2(max(facts.frame_size, 1))
        hint = (
            f"stack frame of `{func}` is {facts.frame_size} bytes "
            f"(alignment {facts.frame_align}) — pad to {aligned} and align "
            f"frames (FacSoftwareOptions.enabled()) so $sp-relative "
            "offsets stay carry-free"
        )
    else:
        hint = (
            "align stack frames to a power of two no smaller than the "
            "largest $sp-relative offset (the paper's Section 4 rules)"
        )
    return Diagnostic(code, SEVERITY_WARNING, site.addr, site.function,
                      message, hint=hint)


def _struct_diagnostics(
    program: Program, analysis: StaticAnalysis
) -> list[Diagnostic]:
    diags = []
    for name, size in sorted(program.struct_facts.items()):
        if size > 0 and size & (size - 1):
            diags.append(Diagnostic(
                "FAC402", SEVERITY_NOTE, 0, None,
                f"struct `{name}` is {size} bytes, not a power of two; "
                "arrays of it stride across block-offset boundaries",
                hint=f"pad `struct {name}` to {next_pow2(size)} bytes to "
                     "keep element addresses block-aligned",
            ))
    return diags


def _data_symbol_at(program: Program, address: int) -> Optional[str]:
    for symbol in program.symbols.values():
        if symbol.section == "text":
            continue
        span = max(symbol.size, 1)
        if symbol.address <= address < symbol.address + span:
            return symbol.name
    return None
