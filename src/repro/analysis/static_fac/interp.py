"""Whole-program FAC-predictability analysis over a linked Program.

This module is a *client* of the abstract-interpretation framework in
:mod:`repro.analysis.absint`: the CFG, worklist solver, and known-bits
domain live there; what remains here is the FAC-specific part — walking
the fixpoint states and classifying every load/store with
:mod:`repro.analysis.static_fac.classify`.

Interprocedural strategy (context-insensitive, implemented by the
solver):

* ``jal f`` propagates the caller's state (with ``$ra`` set to the
  return address) into ``f``'s entry block, and propagates a
  *call-summary* state to the return site: callee-saved registers
  (``$sp $gp $fp $s0..$s7``) keep their caller values, everything else
  becomes unknown. This encodes the MIPS O32 convention the compiler
  and runtime adhere to. Historically it was an *assumption* of the
  analysis; it is now discharged by the sanitizer's calling-convention
  checker — pass its facts as ``clobbers`` (as ``repro lint`` does) and
  any register a callee fails to preserve is havocked at the return
  site instead of trusted.
* ``jalr`` / ``jr`` through a non-``$ra`` register have unknown
  targets: a havoc state (only ``$zero`` and ``$gp`` known) is
  propagated to every function entry, and the return site gets the
  same call summary.
* ``jr $ra`` is a return; the call summary already covers its effect.

The executor zeroes ``$zero`` after every instruction and the loader
starts every register at 0 except ``$gp``/``$sp``
(:meth:`repro.cpu.state.ArchState.reset`), so the entry state is fully
known -- imprecision only enters through loads, call clobbering, and
joins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.absint import build_cfg, solve
from repro.analysis.absint import knownbits as kb
from repro.analysis.absint.knownbits_domain import (  # noqa: F401  (compat)
    PRESERVED_ACROSS_CALLS,
    KnownBitsDomain,
    State,
    transfer,
)
from repro.analysis.static_fac.classify import (
    Classification,
    Geometry,
    Verdict,
    classify_const,
    classify_post_increment,
    classify_reg,
)
from repro.fac.config import FacConfig
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OP_INFO
from repro.isa.program import Program


def call_summary(state: State) -> State:
    """Abstract effect of a completed call, assuming the O32 convention
    (kept for backward compatibility; the domain's clobber-aware method
    supersedes it)."""
    return KnownBitsDomain().call_summary(state, None)


@dataclass
class SiteReport:
    """Static verdict for one memory instruction."""

    index: int                     # position in program.instructions
    addr: int                      # absolute text address
    inst: Instruction
    mode: str                      # 'c', 'x', or 'p'
    is_store: bool
    verdict: Verdict
    possible: frozenset[str]       # failure signals that may fire
    certain: frozenset[str]        # failure signals that must fire
    base: kb.KnownBits             # abstract base register at the site
    offset: object                 # int (mode c/p) or KnownBits (mode x)
    function: Optional[str]        # enclosing text symbol, if known


@dataclass
class StaticAnalysis:
    """Result of one static pass: every memory site, classified."""

    program: Program
    config: FacConfig
    sites: list[SiteReport]
    reachable_blocks: int
    total_blocks: int

    def __post_init__(self):
        self.by_addr = {site.addr: site for site in self.sites}

    def counts(self) -> dict[str, int]:
        out = {v.value: 0 for v in Verdict}
        for site in self.sites:
            out[site.verdict.value] += 1
        return out

    def sites_with(self, verdict: Verdict) -> list[SiteReport]:
        return [s for s in self.sites if s.verdict is verdict]


@dataclass
class SoundnessReport:
    """Static verdicts checked against per-PC dynamic failure counts.

    ``always_violations`` / ``never_violations`` list ``(addr, accesses,
    failures)`` for sites whose universal claim was falsified -- both
    must be empty for the analysis to be sound. The rate bounds restate
    the verdicts as a bracket on the measured prediction success rate.
    """

    always_violations: list[tuple[int, int, int]]
    never_violations: list[tuple[int, int, int]]
    unreachable_violations: list[tuple[int, int, int]]
    success_rate_lower: float   # accesses at ALWAYS sites / total
    success_rate_upper: float   # 1 - accesses at NEVER sites / total
    measured_success_rate: float

    @property
    def sound(self) -> bool:
        return (not self.always_violations and not self.never_violations
                and not self.unreachable_violations)

    @property
    def bounds_hold(self) -> bool:
        return (
            self.success_rate_lower - 1e-12
            <= self.measured_success_rate
            <= self.success_rate_upper + 1e-12
        )


def check_soundness(
    analysis: StaticAnalysis, per_pc: dict[int, list[int]]
) -> SoundnessReport:
    """Compare static verdicts with dynamic ``{pc: [accesses, failures]}``
    counts (from ``TraceAnalyzer(per_pc=True)`` at the same geometry)."""
    always_bad = []
    never_bad = []
    unreachable_bad = []
    total = sum(acc for acc, _ in per_pc.values())
    failed = sum(fail for _, fail in per_pc.values())
    always_hits = 0
    never_hits = 0
    for pc, (accesses, failures) in per_pc.items():
        site = analysis.by_addr.get(pc)
        if site is None:
            continue
        if site.verdict is Verdict.ALWAYS_PREDICTS:
            always_hits += accesses
            if failures:
                always_bad.append((pc, accesses, failures))
        elif site.verdict is Verdict.NEVER_PREDICTS:
            never_hits += accesses
            if failures != accesses:
                never_bad.append((pc, accesses, failures))
        elif site.verdict is Verdict.UNREACHABLE and accesses:
            unreachable_bad.append((pc, accesses, failures))
    measured = (total - failed) / total if total else 1.0
    lower = always_hits / total if total else 0.0
    upper = 1.0 - (never_hits / total) if total else 1.0
    return SoundnessReport(
        always_violations=always_bad,
        never_violations=never_bad,
        unreachable_violations=unreachable_bad,
        success_rate_lower=lower,
        success_rate_upper=upper,
        measured_success_rate=measured,
    )


# ---------------------------------------------------------------------- #
# classification over the fixpoint

def _classify_all(solution, geom: Geometry) -> list[SiteReport]:
    cfg = solution.cfg
    sites: list[SiteReport] = []

    def visit(i: int, inst: Instruction, state) -> None:
        info = OP_INFO[inst.op]
        if not info.mem_width:
            return
        addr = cfg.addr_of(i)
        if state is None:
            outcome = Classification(
                Verdict.UNREACHABLE, frozenset(), frozenset()
            )
            base: kb.KnownBits = kb.TOP
            offset: object = inst.imm if info.mem_mode != "x" else kb.TOP
        elif info.mem_mode == "c":
            base = state[inst.rs]
            offset = inst.imm
            outcome = classify_const(base, inst.imm, geom)
        elif info.mem_mode == "x":
            base = state[inst.rs]
            offset = state[inst.rx]
            outcome = classify_reg(base, offset, geom)
        else:  # post-increment
            base = state[inst.rs]
            offset = inst.imm
            outcome = classify_post_increment()
        sites.append(SiteReport(
            index=i,
            addr=addr,
            inst=inst,
            mode=info.mem_mode,
            is_store=info.is_store,
            verdict=outcome.verdict,
            possible=outcome.possible,
            certain=outcome.certain,
            base=base,
            offset=offset,
            function=cfg.function_of(addr),
        ))

    solution.walk(visit)
    return sites


def analyze_static(
    program: Program,
    config: FacConfig | None = None,
    *,
    clobbers: Optional[dict[str, frozenset[int]]] = None,
) -> StaticAnalysis:
    """Classify every memory instruction of ``program`` statically.

    ``clobbers`` maps function names to the callee-saved registers they
    fail to preserve (the sanitizer's convention facts); call summaries
    for those functions havoc exactly those registers. Omitted, the O32
    convention is assumed for every callee (the historical behaviour).
    """
    config = config or FacConfig()
    cfg = build_cfg(program)
    solution = solve(cfg, KnownBitsDomain(clobbers))
    sites = _classify_all(solution, Geometry.from_config(config))
    return StaticAnalysis(
        program=program,
        config=config,
        sites=sites,
        reachable_blocks=solution.reachable_blocks,
        total_blocks=cfg.num_blocks,
    )
