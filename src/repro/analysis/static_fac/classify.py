"""Abstract version of the FAC verification circuit.

Given known-bits facts about the base register (and, for reg+reg mode,
the index register), decide for each of the predictor's failure signals
(:class:`repro.fac.predictor.FailureSignals`) whether it *may* fire and
whether it *must* fire, then fold those sets into one of three verdicts:

* ``ALWAYS_PREDICTS`` -- no signal can fire for any concrete value in
  the abstraction: the access provably never mispredicts.
* ``NEVER_PREDICTS``  -- some signal fires for every concrete value:
  the access provably always mispredicts.
* ``DATA_DEPENDENT``  -- anything in between.

Soundness contract (checked against the dynamic
:class:`~repro.analysis.prediction.TraceAnalyzer` by the test suite):
both ALWAYS and NEVER are universally quantified over the
concretisation, so a single dynamic counterexample falsifies the
analysis. ``tag_mismatch`` is therefore never allowed to contribute to
the *certain* set -- proving the OR-tag always differs from the true
tag would need relational reasoning the lattice cannot express -- it
only blocks ALWAYS when it might fire.

The signal math mirrors ``FastAddressCalculator.predict`` field by
field. The block-offset predicates are monotone in the field value, so
testing them at the field's abstract min and max is exact; the
index-field predicates are bitwise, so possible/certain one-bits decide
them exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.analysis.static_fac import knownbits as kb
from repro.fac.config import FacConfig
from repro.utils.bits import MASK32


class Verdict(Enum):
    """Static predictability of one memory instruction."""

    ALWAYS_PREDICTS = "always"
    NEVER_PREDICTS = "never"
    DATA_DEPENDENT = "data_dependent"
    UNREACHABLE = "unreachable"


#: Failure-signal names, matching FailureSignals field names.
SIGNALS = (
    "overflow",
    "gen_carry",
    "large_neg_const",
    "neg_index_reg",
    "tag_mismatch",
)


@dataclass(frozen=True)
class Geometry:
    """Address-field masks for one predictor design point."""

    b_bits: int
    block_mask: int
    index_mask: int
    tag_mask: int
    full_tag_add: bool

    @classmethod
    def from_config(cls, config: FacConfig) -> "Geometry":
        b = config.b_bits
        s = config.s_bits
        block_mask = (1 << b) - 1
        return cls(
            b_bits=b,
            block_mask=block_mask,
            index_mask=((1 << s) - 1) ^ block_mask,
            tag_mask=MASK32 ^ ((1 << s) - 1),
            full_tag_add=config.full_tag_add,
        )


@dataclass(frozen=True)
class Classification:
    """Outcome of abstractly running the verifier on one access shape."""

    verdict: Verdict
    possible: frozenset[str]  # signals that may fire for some value
    certain: frozenset[str]   # signals that fire for every value

    @classmethod
    def from_signals(
        cls, possible: set[str], certain: set[str]
    ) -> "Classification":
        if certain:
            verdict = Verdict.NEVER_PREDICTS
        elif possible:
            verdict = Verdict.DATA_DEPENDENT
        else:
            verdict = Verdict.ALWAYS_PREDICTS
        return cls(verdict, frozenset(possible), frozenset(certain))


ALWAYS = Classification(Verdict.ALWAYS_PREDICTS, frozenset(), frozenset())


def classify_const(
    base: kb.KnownBits, offset: int, geom: Geometry
) -> Classification:
    """Classify a base+constant access (mode ``c``).

    ``offset`` is the signed 16-bit immediate exactly as the executor
    hands it to the predictor.
    """
    possible: set[str] = set()
    certain: set[str] = set()
    bmask = geom.block_mask
    base_blk_min = kb.min_in_field(base, bmask)
    base_blk_max = kb.max_in_field(base, bmask)

    if offset >= 0:
        c_blk = offset & bmask
        if base_blk_max + c_blk > bmask:
            possible.add("overflow")
            if base_blk_min + c_blk > bmask:
                certain.add("overflow")
        c_idx = offset & geom.index_mask
        if kb.possible_ones(base, geom.index_mask) & c_idx:
            possible.add("gen_carry")
            if kb.certain_ones(base, geom.index_mask) & c_idx:
                certain.add("gen_carry")
        offset_tag_clear = (offset & geom.tag_mask) == 0
    else:
        if (offset >> geom.b_bits) != -1:
            # Constant fact about the instruction itself: always fails.
            possible.add("large_neg_const")
            certain.add("large_neg_const")
            return Classification.from_signals(possible, certain)
        # Small negative constant: the inverted index/tag fields are zero,
        # so gen_carry cannot fire. The block adder must carry out
        # (no borrow), which needs base_blk >= -offset.
        if base_blk_min < -offset:
            possible.add("overflow")
            if base_blk_max < -offset:
                certain.add("overflow")
        offset_tag_clear = True

    if not geom.full_tag_add and not (
        offset_tag_clear and not possible
    ):
        # The OR-tag can differ from the true tag; never provably always.
        possible.add("tag_mismatch")
    return Classification.from_signals(possible, certain)


def classify_reg(
    base: kb.KnownBits, index: kb.KnownBits, geom: Geometry
) -> Classification:
    """Classify a base+register access (mode ``x``).

    The predictor treats the index register's raw bits like a positive
    offset but additionally fails whenever its sign bit is set.
    """
    possible: set[str] = set()
    certain: set[str] = set()
    sign = 0x80000000
    if kb.possible_ones(index, sign):
        possible.add("neg_index_reg")
        if kb.certain_ones(index, sign):
            certain.add("neg_index_reg")

    bmask = geom.block_mask
    # Field minima/maxima of both operands are attained at the
    # all-unknown-bits-zero / all-ones assignments, so the sums below are
    # realised by concrete states even when base and index share bits.
    if kb.max_in_field(base, bmask) + kb.max_in_field(index, bmask) > bmask:
        possible.add("overflow")
        if kb.min_in_field(base, bmask) + kb.min_in_field(index, bmask) > bmask:
            certain.add("overflow")

    imask = geom.index_mask
    if kb.possible_ones(base, imask) & kb.possible_ones(index, imask):
        possible.add("gen_carry")
        if kb.certain_ones(base, imask) & kb.certain_ones(index, imask):
            certain.add("gen_carry")

    index_tag_clear = kb.possible_ones(index, geom.tag_mask) == 0
    if not geom.full_tag_add and not (index_tag_clear and not possible):
        possible.add("tag_mismatch")
    return Classification.from_signals(possible, certain)


def classify_post_increment() -> Classification:
    """Post-increment accesses use the base register directly -- no
    addition, hence nothing to predict and nothing to fail."""
    return ALWAYS
