"""Vectorized whole-trace analysis over columnar traces.

:func:`analyze_trace_columns` is the batch twin of the scalar
:func:`repro.analysis.prediction.analyze_trace`: the same
:class:`~repro.analysis.prediction.TraceAnalysis` out of a handful of
numpy passes over :class:`~repro.cpu.coltrace.TraceColumns` instead of
one Python callback per record. The two are *snapshot-equal* -- their
``repro.metrics/1`` encodings are identical on every benchmark -- which
the suite-wide equivalence test and the ``columnar-equivalence`` CI job
enforce; the scalar path stays available behind ``engine="records"`` as
the oracle.

The FAC verification signals vectorize directly because the circuit is
pure bit arithmetic (paper Section 3): Overflow, GenCarry,
LargeNegConst, and IndexReg<31> are masks-and-compares on the base and
offset columns, mirroring :meth:`FastAddressCalculator.predict`
branch for branch (:func:`failure_signal_columns` is property-tested
against it). Cache and TLB models become sorting problems: a
direct-mapped cache hits exactly when the previous access to the same
set touched the same block, which one stable sort by set index exposes
as a neighbour comparison.
"""

from __future__ import annotations

# coltrace first: it owns the friendly "numpy is a declared runtime
# dependency" ImportError for environments missing numpy
from repro.cpu.coltrace import TraceColumns

import numpy as np

from repro.analysis.prediction import PredictionStats, TraceAnalysis
from repro.analysis.refclass import GENERAL, GLOBAL, STACK, ReferenceProfile
from repro.cache.tlb import TLB
from repro.isa.opcodes import OP_INFO
from repro.isa.program import Program
from repro.isa.registers import Reg
from repro.obs.metrics import Histogram
from repro.pipeline.deps import sources_and_dests
from repro.utils.bits import MASK32

_SIGNALS = ("overflow", "gen_carry", "large_neg_const", "neg_index_reg",
            "tag_mismatch")

_CLASS_ORDER = (GLOBAL, STACK, GENERAL)

#: Figure 3 bucket keys are -1 ("Neg"), 0..15, 16 ("More") -- see
#: ``_KEY_ORDER`` in :mod:`repro.analysis.refclass`.
_BUCKET_SHIFT = 1
_BUCKET_BINS = 18

# powers of two bounding each bit-length bucket: bit_length(v) for v>=0
# equals searchsorted(_POW2, v, side="right")
_POW2 = np.array([1 << k for k in range(32)], dtype=np.int64)


# ------------------------------------------------------------------ #
# static per-instruction tables

def _static_tables(program: Program):
    """Per text-word arrays the columns index into: load/store flags,
    addressing-mode codes, and the Section 2 reference class."""
    n = len(program.instructions)
    is_load = np.zeros(n, dtype=bool)
    is_x = np.zeros(n, dtype=bool)
    is_p = np.zeros(n, dtype=bool)
    ref_class = np.zeros(n, dtype=np.int8)
    for i, inst in enumerate(program.instructions):
        info = OP_INFO[inst.op]
        if not info.mem_width:
            continue
        is_load[i] = info.is_load
        mode = info.mem_mode
        is_x[i] = mode == "x"
        is_p[i] = mode == "p"
        if inst.rs == Reg.GP:
            ref_class[i] = 0
        elif inst.rs in (Reg.SP, Reg.FP):
            ref_class[i] = 1
        else:
            ref_class[i] = 2
    return is_load, is_x, is_p, ref_class


# ------------------------------------------------------------------ #
# FAC failure-signal kernels

def failure_signal_columns(base, offset, offset_is_reg, *, block_size: int,
                           cache_size: int = 16 * 1024,
                           full_tag_add: bool = True) -> dict:
    """The five verification signals for whole access columns at once.

    ``base`` is the unsigned 32-bit base value column, ``offset`` the
    *signed* offset column (the signed interpretation of the index
    register for register+register accesses), ``offset_is_reg`` the
    register-mode mask. Mirrors
    :meth:`repro.fac.predictor.FastAddressCalculator.predict` exactly;
    the randomized kernel tests assert elementwise agreement.
    """
    base = np.asarray(base, dtype=np.int64) & MASK32
    offset = np.asarray(offset, dtype=np.int64)
    offset_is_reg = np.asarray(offset_is_reg, dtype=bool)

    b = (block_size - 1).bit_length()
    s = (cache_size - 1).bit_length()
    block_mask = (1 << b) - 1
    index_mask = ((1 << s) - 1) ^ block_mask
    tag_mask = MASK32 ^ ((1 << s) - 1)

    ofs_bits = offset & MASK32
    block_sum = (base & block_mask) + (ofs_bits & block_mask)
    carry_out = block_sum >> b

    negative = offset < 0
    # predict()'s branch condition: register offsets and non-negative
    # constants share the uninverted path; negative constants invert
    # the offset's index/tag fields.
    plain = offset_is_reg | ~negative
    inverted_bits = ~ofs_bits
    ofs_index = np.where(plain, ofs_bits, inverted_bits) & index_mask

    neg_index_reg = offset_is_reg & negative
    large_neg_const = ~plain & ((offset >> b) != -1)
    overflow = np.where(plain, carry_out == 1, carry_out == 0)
    gen_carry = ((base & index_mask) & ofs_index) != 0
    if full_tag_add:
        tag_mismatch = np.zeros(len(base), dtype=bool)
    else:
        ofs_tag = np.where(plain, ofs_bits, inverted_bits) & tag_mask
        pred_tag = (base & tag_mask) | ofs_tag
        actual_tag = ((base + offset) & MASK32) & tag_mask
        tag_mismatch = pred_tag != actual_tag
    return {
        "overflow": overflow,
        "gen_carry": gen_carry,
        "large_neg_const": large_neg_const,
        "neg_index_reg": neg_index_reg,
        "tag_mismatch": tag_mismatch,
    }


def prediction_failed_column(base, offset, offset_is_reg, *, block_size: int,
                             cache_size: int = 16 * 1024,
                             full_tag_add: bool = True) -> np.ndarray:
    """The OR of the verification signals -- the vectorized
    :meth:`FastAddressCalculator.fails` verdict."""
    signals = failure_signal_columns(
        base, offset, offset_is_reg, block_size=block_size,
        cache_size=cache_size, full_tag_add=full_tag_add)
    failed = signals["overflow"]
    for name in _SIGNALS[1:]:
        failed = failed | signals[name]
    return failed


# ------------------------------------------------------------------ #
# cache / TLB batch passes

def direct_mapped_misses(addresses: np.ndarray, *, block_size: int,
                         cache_size: int) -> int:
    """Exact miss count of a direct-mapped cache over an access stream.

    In time order, an access hits iff the previous access *to its set*
    was to the same block. A stable sort by set index makes per-set
    access streams contiguous, so that predecessor is simply the
    previous element.
    """
    if len(addresses) == 0:
        return 0
    offset_bits = (block_size - 1).bit_length()
    num_sets = cache_size // block_size
    block = np.asarray(addresses, dtype=np.int64) >> offset_bits
    sets = block & (num_sets - 1)
    order = np.argsort(sets, kind="stable")
    set_sorted = sets[order]
    block_sorted = block[order]
    hits = ((set_sorted[1:] == set_sorted[:-1])
            & (block_sorted[1:] == block_sorted[:-1]))
    return len(addresses) - int(hits.sum())


def tlb_misses(addresses: np.ndarray, *, entries: int = 64,
               page_size: int = 4096) -> int:
    """Exact miss count of the Section 5.4 TLB over an access stream.

    When the footprint fits (distinct pages <= capacity) nothing is
    ever evicted and each page misses exactly once. Otherwise the
    stream is run-length compressed (a repeat of the page just touched
    is always a hit and never perturbs TLB state, including the
    replacement PRNG) and replayed through the exact :class:`TLB`.
    """
    if len(addresses) == 0:
        return 0
    page_shift = (page_size - 1).bit_length()
    pages = np.asarray(addresses, dtype=np.int64) >> page_shift
    if len(np.unique(pages)) <= entries:
        return len(np.unique(pages))
    keep = np.empty(len(pages), dtype=bool)
    keep[0] = True
    np.not_equal(pages[1:], pages[:-1], out=keep[1:])
    tlb = TLB(entries=entries, page_size=page_size)
    misses = 0
    for page in pages[keep].tolist():
        if not tlb.access(page << page_shift):
            misses += 1
    return misses


def _miss_ratio(misses: int, total: int) -> float:
    """Bit-identical to :attr:`repro.obs.metrics.RatioStat.miss_ratio`."""
    if not total:
        return 0.0
    return 1.0 - (total - misses) / total


# ------------------------------------------------------------------ #
# the batch analyzer

def _offset_buckets(offsets: np.ndarray) -> np.ndarray:
    """Figure 3 bucket keys (-1 Neg, 0..15 bits, 16 More), vectorized."""
    bits = np.searchsorted(_POW2, offsets, side="right")
    keys = np.minimum(bits, 16)
    return np.where(offsets < 0, -1, keys)


def analyze_trace_columns(program: Program, cols: TraceColumns,
                          block_sizes: tuple[int, ...] = (16, 32),
                          cache_size: int = 16 * 1024,
                          full_tag_add: bool = True,
                          per_pc: bool = False, memory_usage: int = 0,
                          stdout: str = "") -> TraceAnalysis:
    """Vectorized :func:`~repro.analysis.prediction.analyze_trace`.

    Produces a :class:`TraceAnalysis` whose ``repro.metrics/1`` snapshot
    equals the scalar analyzer's for the same trace (``per_pc`` tables
    included); counters come out as plain Python ints so snapshots stay
    JSON-serializable.
    """
    cols.verify(program)
    is_load, is_x, is_p, ref_class = _static_tables(program)
    idx = cols.index.astype(np.int64)
    total_records = cols.count

    mem_mask = cols.is_mem
    mem_idx = idx[mem_mask]
    loads_mask = is_load[mem_idx]
    x_mask = is_x[mem_idx]
    p_mask = is_p[mem_idx]
    classes = ref_class[mem_idx].astype(np.int64)
    base_col = cols.base[mem_mask].astype(np.int64)
    offset_col = cols.offset[mem_mask].astype(np.int64)

    # ---- reference profile (Table 1 / Figure 3) --------------------
    profile = ReferenceProfile()
    profile.instructions = total_records
    mem_count = len(mem_idx)
    load_count = int(loads_mask.sum())
    profile.loads = load_count
    profile.stores = mem_count - load_count
    load_by_class = np.bincount(classes[loads_mask], minlength=3)
    store_by_class = np.bincount(classes[~loads_mask], minlength=3)
    for code, name in enumerate(_CLASS_ORDER):
        profile.load_class[name] = int(load_by_class[code])
        profile.store_class[name] = int(store_by_class[code])
    buckets = _offset_buckets(offset_col)
    for code, name in enumerate(_CLASS_ORDER):
        mask = loads_mask & (classes == code)
        counts = np.bincount(buckets[mask] + _BUCKET_SHIFT,
                             minlength=_BUCKET_BINS)
        hist = profile.offset_hist[name]
        for key in np.flatnonzero(counts):
            hist.record(int(key) - _BUCKET_SHIFT, int(counts[key]))

    # ---- prediction failures per block size (Tables 3/4) -----------
    predictions: dict[int, PredictionStats] = {}
    per_pc_tables: dict[int, dict[int, list[int]]] | None = (
        {} if per_pc else None)
    store_mask = ~loads_mask
    norr_mask = ~x_mask
    if per_pc:
        static_n = len(is_load)
        access_counts = np.bincount(mem_idx, minlength=static_n)
        touched = np.flatnonzero(access_counts)
        text_base = program.text_base
    for block_size in block_sizes:
        signals = failure_signal_columns(
            base_col, offset_col, x_mask, block_size=block_size,
            cache_size=cache_size, full_tag_add=full_tag_add)
        failed = np.zeros(mem_count, dtype=bool)
        for name in _SIGNALS:
            failed |= signals[name]
        # post-increment accesses need no addition: never a failure,
        # and their signals are never accounted.
        failed &= ~p_mask
        stats = PredictionStats(block_size=block_size)
        stats.loads = load_count
        stats.stores = mem_count - load_count
        stats.load_failures = int((failed & loads_mask).sum())
        stats.store_failures = int((failed & store_mask).sum())
        stats.norr_loads = int((norr_mask & loads_mask).sum())
        stats.norr_stores = int((norr_mask & store_mask).sum())
        stats.norr_load_failures = int((failed & norr_mask & loads_mask).sum())
        stats.norr_store_failures = int((failed & norr_mask
                                         & store_mask).sum())
        for name in _SIGNALS:
            stats.signal_counts[name] = int((signals[name] & ~p_mask).sum())
        predictions[block_size] = stats
        if per_pc:
            failure_counts = np.bincount(mem_idx[failed], minlength=static_n)
            per_pc_tables[block_size] = {
                int(text_base + 4 * i): [int(access_counts[i]),
                                         int(failure_counts[i])]
                for i in touched
            }

    # ---- cache and TLB models (Table 3/4 miss-ratio columns) -------
    if total_records:
        pc = cols.pc.astype(np.int64)
        iblock = pc >> 5
        transitions = np.empty(total_records, dtype=bool)
        transitions[0] = True   # the analyzer's initial _last_iblock = -1
        np.not_equal(iblock[1:], iblock[:-1], out=transitions[1:])
        iaddrs = pc[transitions]
        icache_accesses = len(iaddrs)
        icache_misses = direct_mapped_misses(iaddrs, block_size=32,
                                             cache_size=16 * 1024)
    else:
        icache_accesses = icache_misses = 0
    eas = cols.ea[mem_mask].astype(np.int64)
    dcache_misses = direct_mapped_misses(eas, block_size=32,
                                         cache_size=16 * 1024)
    tlb_miss_count = tlb_misses(eas)

    return TraceAnalysis(
        profile=profile,
        predictions=predictions,
        icache_miss_ratio=_miss_ratio(icache_misses, icache_accesses),
        dcache_miss_ratio=_miss_ratio(dcache_misses, mem_count),
        tlb_miss_ratio=_miss_ratio(tlb_miss_count, mem_count),
        memory_usage=memory_usage,
        instructions=total_records,
        stdout=stdout,
        per_pc=per_pc_tables,
    )


# ------------------------------------------------------------------ #
# load-use distances (the profiler's functional histogram)

def _register_events(program: Program):
    """Flattened per-static-instruction register events.

    For each text word: one *read* event per source slot followed by
    one *write* event per destination slot (type 1 when the
    instruction is a load, type 2 for any other definition -- a kill).
    The flattening order matches the scalar tracker, which resolves
    sources before destinations.
    """
    slots: list[int] = []
    types: list[int] = []
    counts = np.zeros(len(program.instructions), dtype=np.int64)
    starts = np.zeros(len(program.instructions), dtype=np.int64)
    for i, inst in enumerate(program.instructions):
        sources, dests = sources_and_dests(inst)
        starts[i] = len(slots)
        write_type = 1 if inst.info.is_load else 2
        for slot in sources:
            slots.append(slot)
            types.append(0)
        for slot in dests:
            slots.append(slot)
            types.append(write_type)
        counts[i] = len(sources) + len(dests)
    return (np.asarray(slots, dtype=np.int64),
            np.asarray(types, dtype=np.int8), counts, starts)


def load_use_distances(program: Program, cols: TraceColumns,
                       histogram: Histogram | None = None) -> Histogram:
    """Vectorized load-use distance histogram (retired instructions
    between a load and the first consumer of its destination register;
    1 = back-to-back). Equal to the scalar ``_DistanceTracker`` pass in
    :mod:`repro.obs.profile`."""
    hist = histogram if histogram is not None else Histogram("load_use")
    ev_slots, ev_types, counts, starts = _register_events(program)
    idx = cols.index.astype(np.int64)
    per_record = counts[idx]
    total = int(per_record.sum())
    if total == 0:
        return hist
    record_of = np.repeat(np.arange(len(idx), dtype=np.int64), per_record)
    group_start = np.cumsum(per_record) - per_record
    within = np.arange(total, dtype=np.int64) - group_start[record_of]
    flat = starts[idx][record_of] + within
    slots = ev_slots[flat]
    types = ev_types[flat]
    # stable sort by slot keeps global time order (and the
    # reads-before-writes order within one record) inside each slot
    order = np.argsort(slots, kind="stable")
    slot_sorted = slots[order]
    type_sorted = types[order]
    time_sorted = record_of[order]
    # a read records a distance iff the previous event on its slot was
    # a load's write (a pending load not yet consumed or overwritten)
    pair = ((slot_sorted[1:] == slot_sorted[:-1])
            & (type_sorted[:-1] == 1) & (type_sorted[1:] == 0))
    distances = time_sorted[1:][pair] - time_sorted[:-1][pair]
    values, amounts = np.unique(distances, return_counts=True)
    for value, amount in zip(values.tolist(), amounts.tolist()):
        hist.record(int(value), int(amount))
    return hist
