"""Reusable abstract-interpretation framework for linked MIPS programs.

The framework factors the dataflow core that originally lived inside
``repro.analysis.static_fac`` into independent, pluggable pieces:

* :mod:`~repro.analysis.absint.cfg` — basic-block CFG + function table
  over a linked program's text segment, cached per program;
* :mod:`~repro.analysis.absint.domain` — the abstract-domain interface
  (state lifecycle, transfer function, interprocedural call protocol);
* :mod:`~repro.analysis.absint.solver` — the worklist fixpoint solver,
  whole-program (context-insensitive interprocedural) or restricted to
  one function's blocks;
* :mod:`~repro.analysis.absint.knownbits` /
  :mod:`~repro.analysis.absint.knownbits_domain` — the known-bits
  lattice and domain driving ``repro lint``;
* :mod:`~repro.analysis.absint.ranges` — unsigned value-range domain.

Clients: ``repro lint`` (FAC predictability, ``static_fac``) and
``repro sanitize`` (whole-program sanitizer, ``repro.analysis.sanitize``).
See ``docs/static_analysis.md`` for the framework/client split.
"""

from repro.analysis.absint.cfg import ControlFlowGraph, FunctionSpan, build_cfg
from repro.analysis.absint.domain import AbstractDomain
from repro.analysis.absint.knownbits_domain import (
    PRESERVED_ACROSS_CALLS,
    KnownBitsDomain,
)
from repro.analysis.absint.ranges import RangeDomain
from repro.analysis.absint.solver import Solution, solve, solve_function

__all__ = [
    "AbstractDomain",
    "ControlFlowGraph",
    "FunctionSpan",
    "KnownBitsDomain",
    "PRESERVED_ACROSS_CALLS",
    "RangeDomain",
    "Solution",
    "build_cfg",
    "solve",
    "solve_function",
]
