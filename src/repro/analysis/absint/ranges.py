"""Unsigned value-range (interval) abstract domain.

Each register is abstracted to an unsigned interval ``(lo, hi)`` with
``0 <= lo <= hi <= 0xFFFFFFFF``; ``(0, 0xFFFFFFFF)`` is TOP. Arithmetic
that may wrap around 2**32 goes straight to TOP rather than tracking
wrapped intervals, which keeps the transfer function simple and the
common case — stack-pointer offsets, loop counters, sizes — precise.

Joins use classic interval widening: a bound that grows jumps to the
corresponding extreme immediately, so every register changes at most
twice per block and the fixpoint terminates fast. The cost is
precision on slowly-growing loop counters, which no current client
needs.

This is the second production domain of the framework (after
:mod:`~repro.analysis.absint.knownbits_domain`) and doubles as the
reference example for writing new ones.
"""

from __future__ import annotations

from repro.analysis.absint.domain import AbstractDomain
from repro.analysis.absint.knownbits_domain import PRESERVED_ACROSS_CALLS
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OP_INFO, Op
from repro.isa.program import Program
from repro.isa.registers import Reg

MASK32 = 0xFFFFFFFF

#: The full interval: nothing known.
TOP = (0, MASK32)

#: One abstract state: 32 ``(lo, hi)`` intervals.
State = list

_BOOL = (0, 1)

_EXIT_SERVICES = (10, 17)


def const(value: int):
    value &= MASK32
    return (value, value)


def is_const(iv) -> bool:
    return iv[0] == iv[1]


def contains(iv, value: int) -> bool:
    return iv[0] <= (value & MASK32) <= iv[1]


def join(a, b):
    return (a[0] if a[0] <= b[0] else b[0],
            a[1] if a[1] >= b[1] else b[1])


def widen(a, b):
    """``a`` widened by ``b``: growing bounds jump to the extremes."""
    return (a[0] if b[0] >= a[0] else 0,
            a[1] if b[1] <= a[1] else MASK32)


def add(a, b):
    lo, hi = a[0] + b[0], a[1] + b[1]
    if hi > MASK32:  # may wrap: give up instead of splitting the interval
        return TOP
    return (lo, hi)


def sub(a, b):
    lo, hi = a[0] - b[1], a[1] - b[0]
    if lo < 0:
        return TOP
    return (lo, hi)


def add_signed(a, imm: int):
    """``a + imm`` with a signed immediate (ADDIU and friends)."""
    return add(a, const(imm)) if imm >= 0 else sub(a, const(-imm))


def shl(a, amount: int):
    hi = a[1] << amount
    if hi > MASK32:
        return TOP
    return (a[0] << amount, hi)


def shr(a, amount: int):
    return (a[0] >> amount, a[1] >> amount)


def render(iv) -> str:
    if iv == TOP:
        return "[?]"
    if is_const(iv):
        return f"[{iv[0]:#x}]"
    return f"[{iv[0]:#x}, {iv[1]:#x}]"


def transfer(state: State, inst: Instruction) -> None:
    op = inst.op
    if op is Op.ADDU or op is Op.ADD:
        state[inst.rd] = add(state[inst.rs], state[inst.rt])
    elif op is Op.ADDIU or op is Op.ADDI:
        state[inst.rt] = add_signed(state[inst.rs], inst.imm)
    elif op is Op.SUBU or op is Op.SUB:
        state[inst.rd] = sub(state[inst.rs], state[inst.rt])
    elif op is Op.AND:
        # result has no bit either operand lacks: bounded by both maxima
        state[inst.rd] = (0, min(state[inst.rs][1], state[inst.rt][1]))
    elif op is Op.ANDI:
        state[inst.rt] = (0, min(state[inst.rs][1], inst.imm & 0xFFFF))
    elif op is Op.OR or op is Op.ORI or op is Op.XOR or op is Op.XORI:
        imm_iv = (const(inst.imm & 0xFFFF) if op in (Op.ORI, Op.XORI)
                  else state[inst.rt])
        src = state[inst.rs]
        if is_const(src) and is_const(imm_iv):
            val = (src[0] | imm_iv[0] if op in (Op.OR, Op.ORI)
                   else src[0] ^ imm_iv[0])
            dest = (val, val)
        else:
            dest = TOP
        if op is Op.OR or op is Op.XOR:
            state[inst.rd] = dest
        else:
            state[inst.rt] = dest
    elif op is Op.NOR:
        a, b = state[inst.rs], state[inst.rt]
        state[inst.rd] = (const(~(a[0] | b[0]))
                          if is_const(a) and is_const(b) else TOP)
    elif op is Op.SLT or op is Op.SLTU:
        state[inst.rd] = _BOOL
    elif op is Op.SLTI or op is Op.SLTIU:
        state[inst.rt] = _BOOL
    elif op is Op.LUI:
        state[inst.rt] = const((inst.imm & 0xFFFF) << 16)
    elif op is Op.SLL:
        state[inst.rd] = shl(state[inst.rt], inst.imm & 31)
    elif op is Op.SRL:
        state[inst.rd] = shr(state[inst.rt], inst.imm & 31)
    elif op is Op.SRA:
        src = state[inst.rt]
        # arithmetic shift only matches the logical one on non-negative
        # values (top bit clear over the whole interval)
        state[inst.rd] = (shr(src, inst.imm & 31)
                          if src[1] <= 0x7FFFFFFF else TOP)
    elif op is Op.SLLV or op is Op.SRLV or op is Op.SRAV:
        amount = state[inst.rt]
        if is_const(amount):
            shift = amount[0] & 31
            src = state[inst.rs]
            if op is Op.SLLV:
                state[inst.rd] = shl(src, shift)
            elif op is Op.SRLV:
                state[inst.rd] = shr(src, shift)
            else:
                state[inst.rd] = (shr(src, shift)
                                  if src[1] <= 0x7FFFFFFF else TOP)
        else:
            state[inst.rd] = TOP
    elif op is Op.MFHI or op is Op.MFLO or op is Op.MFC1:
        state[inst.rd] = TOP
    elif op is Op.SYSCALL:
        state[Reg.V0] = TOP
    else:
        info = OP_INFO[op]
        if info.mem_width:
            base = state[inst.rs]
            if info.is_load and not info.mem_fp:
                state[inst.rt] = TOP
            if info.mem_mode == "p":
                state[inst.rs] = add_signed(base, inst.imm)
    state[Reg.ZERO] = (0, 0)


class RangeDomain(AbstractDomain):
    """Unsigned interval domain over the 32 integer registers."""

    name = "ranges"

    def entry_state(self, program: Program) -> State:
        state = [(0, 0)] * 32
        state[Reg.GP] = const(program.gp_value)
        state[Reg.SP] = const(program.sp_value)
        return state

    def havoc_state(self, program: Program) -> State:
        state = [TOP] * 32
        state[Reg.ZERO] = (0, 0)
        state[Reg.GP] = const(program.gp_value)
        return state

    def copy(self, state: State) -> State:
        return list(state)

    def join_into(self, current: State, incoming: State) -> bool:
        changed = False
        for r in range(32):
            have, new = current[r], incoming[r]
            if new[0] >= have[0] and new[1] <= have[1]:
                continue  # already contained
            current[r] = widen(have, new)
            changed = True
        return changed

    transfer = staticmethod(transfer)

    def halts(self, state: State, inst: Instruction) -> bool:
        if inst.op is not Op.SYSCALL:
            return False
        v0 = state[Reg.V0]
        return is_const(v0) and v0[0] in _EXIT_SERVICES

    def call_entry(self, state: State, return_addr: int) -> State:
        entry = list(state)
        entry[Reg.RA] = const(return_addr)
        return entry

    def call_summary(self, state: State, callee) -> State:
        return [
            state[r] if r in PRESERVED_ACROSS_CALLS else TOP
            for r in range(32)
        ]
