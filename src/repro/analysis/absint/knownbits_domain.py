"""Known-bits abstract domain over the 32 integer registers.

This is the FAC-predictability domain extracted from the original
``repro.analysis.static_fac`` interpreter: one
:mod:`~repro.analysis.absint.knownbits` value per register, the
transfer function mirroring :meth:`repro.cpu.executor.CPU.step`, and
the MIPS O32 call summary.

The call summary is *clobber-aware*: construct the domain with a
``clobbers`` map (function name -> callee-saved registers that function
fails to preserve, as produced by the sanitizer's convention checker)
and calls to a violating function havoc exactly the registers it
clobbers — including indirect calls, which havoc the union. With an
empty map the behaviour is the historical one: the O32 convention is
assumed for every callee. Feeding verified facts instead of the
assumption is what makes `repro lint` verdicts unconditionally sound.
"""

from __future__ import annotations

from repro.analysis.absint import knownbits as kb
from repro.analysis.absint.domain import AbstractDomain
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OP_INFO, Op
from repro.isa.program import Program
from repro.isa.registers import Reg

#: One abstract state: 32 KnownBits entries, indexed by register number.
State = list

#: Registers a call must preserve under the MIPS O32 convention.
PRESERVED_ACROSS_CALLS = frozenset(
    (Reg.ZERO, Reg.SP, Reg.GP, Reg.FP,
     Reg.S0, Reg.S1, Reg.S2, Reg.S3, Reg.S4, Reg.S5, Reg.S6, Reg.S7)
)

_BOOL = (0xFFFFFFFE, 0)  # {0, 1}: top 31 bits known zero

_EXIT_SERVICES = (10, 17)  # SYS_EXIT / SYS_EXIT2 in repro.cpu.syscalls


def transfer(state: State, inst: Instruction) -> None:
    """Apply one instruction's effect to ``state`` in place, mirroring
    :meth:`repro.cpu.executor.CPU.step` for the integer register file."""
    op = inst.op
    if op is Op.ADDU or op is Op.ADD:
        state[inst.rd] = kb.add(state[inst.rs], state[inst.rt])
    elif op is Op.ADDIU or op is Op.ADDI:
        state[inst.rt] = kb.add(state[inst.rs], kb.const(inst.imm))
    elif op is Op.SUBU or op is Op.SUB:
        state[inst.rd] = kb.sub(state[inst.rs], state[inst.rt])
    elif op is Op.AND:
        state[inst.rd] = kb.bit_and(state[inst.rs], state[inst.rt])
    elif op is Op.OR:
        state[inst.rd] = kb.bit_or(state[inst.rs], state[inst.rt])
    elif op is Op.XOR:
        state[inst.rd] = kb.bit_xor(state[inst.rs], state[inst.rt])
    elif op is Op.NOR:
        state[inst.rd] = kb.bit_not(kb.bit_or(state[inst.rs], state[inst.rt]))
    elif op is Op.SLT or op is Op.SLTU:
        state[inst.rd] = _BOOL
    elif op is Op.SLTI or op is Op.SLTIU:
        state[inst.rt] = _BOOL
    elif op is Op.ANDI:
        state[inst.rt] = kb.bit_and(state[inst.rs], kb.const(inst.imm & 0xFFFF))
    elif op is Op.ORI:
        state[inst.rt] = kb.bit_or(state[inst.rs], kb.const(inst.imm & 0xFFFF))
    elif op is Op.XORI:
        state[inst.rt] = kb.bit_xor(state[inst.rs], kb.const(inst.imm & 0xFFFF))
    elif op is Op.LUI:
        state[inst.rt] = kb.const((inst.imm & 0xFFFF) << 16)
    elif op is Op.SLL:
        state[inst.rd] = kb.shl(state[inst.rt], inst.imm & 31)
    elif op is Op.SRL:
        state[inst.rd] = kb.shr(state[inst.rt], inst.imm & 31)
    elif op is Op.SRA:
        state[inst.rd] = kb.sar(state[inst.rt], inst.imm & 31)
    elif op is Op.SLLV or op is Op.SRLV or op is Op.SRAV:
        amount = state[inst.rt]
        if amount[0] & 31 == 31:
            shift = amount[1] & 31
            if op is Op.SLLV:
                state[inst.rd] = kb.shl(state[inst.rs], shift)
            elif op is Op.SRLV:
                state[inst.rd] = kb.shr(state[inst.rs], shift)
            else:
                state[inst.rd] = kb.sar(state[inst.rs], shift)
        else:
            state[inst.rd] = kb.TOP
    elif op is Op.MFHI or op is Op.MFLO or op is Op.MFC1:
        state[inst.rd] = kb.TOP  # HI/LO and FP values are not tracked
    elif op is Op.SYSCALL:
        state[Reg.V0] = kb.TOP
    else:
        info = OP_INFO[op]
        if info.mem_width:
            base = state[inst.rs]
            if info.is_load and not info.mem_fp:
                state[inst.rt] = kb.TOP
            if info.mem_mode == "p":
                # post-increment updates the base after the access; the
                # update wins over the loaded value when rt == rs.
                state[inst.rs] = kb.add(base, kb.const(inst.imm))
    state[Reg.ZERO] = kb.ZERO


class KnownBitsDomain(AbstractDomain):
    """The known-bits domain, pluggable into the absint solver."""

    name = "knownbits"

    def __init__(self, clobbers: dict[str, frozenset[int]] | None = None):
        self.clobbers = dict(clobbers) if clobbers else {}
        union: frozenset[int] = frozenset()
        for regs in self.clobbers.values():
            union |= regs
        self._clobber_unknown = union

    # -- state lifecycle ----------------------------------------------- #

    def entry_state(self, program: Program) -> State:
        state = [kb.ZERO] * 32  # the loader zeroes every register...
        state[Reg.GP] = kb.const(program.gp_value)
        state[Reg.SP] = kb.const(program.sp_value)
        return state

    def havoc_state(self, program: Program) -> State:
        state = [kb.TOP] * 32
        state[Reg.ZERO] = kb.ZERO
        state[Reg.GP] = kb.const(program.gp_value)
        return state

    def copy(self, state: State) -> State:
        return list(state)

    def join_into(self, current: State, incoming: State) -> bool:
        changed = False
        join = kb.join
        for r in range(32):
            have, new = current[r], incoming[r]
            if have == new:  # join(x, x) == x: nothing to widen
                continue
            merged = join(have, new)
            if merged != have:
                current[r] = merged
                changed = True
        return changed

    # -- semantics ----------------------------------------------------- #

    transfer = staticmethod(transfer)

    def halts(self, state: State, inst: Instruction) -> bool:
        """True when this syscall provably terminates the program, so
        the instructions after it are dead even though SYSCALL does not
        end a basic block in general."""
        if inst.op is not Op.SYSCALL:
            return False
        v0 = state[Reg.V0]
        return kb.is_const(v0) and v0[1] in _EXIT_SERVICES

    # -- interprocedural protocol -------------------------------------- #

    def call_entry(self, state: State, return_addr: int) -> State:
        entry = list(state)
        entry[Reg.RA] = kb.const(return_addr)
        return entry

    def call_summary(self, state: State, callee: str | None) -> State:
        """Abstract effect of a completed call on the caller's registers."""
        if callee is None:
            clobbered = self._clobber_unknown
        else:
            clobbered = self.clobbers.get(callee)
            if clobbered is None:
                clobbered = frozenset()
        if clobbered:
            return [
                state[r] if r in PRESERVED_ACROSS_CALLS and r not in clobbered
                else kb.TOP
                for r in range(32)
            ]
        return [
            state[r] if r in PRESERVED_ACROSS_CALLS else kb.TOP
            for r in range(32)
        ]
