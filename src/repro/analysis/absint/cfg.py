"""Basic-block control-flow graph over a linked program's text segment.

The graph is the shared substrate of every analysis in
:mod:`repro.analysis.absint`: block boundaries come from branch/jump/
call/return instructions plus every text symbol (so a function entry is
always a block leader, even when it is only reached indirectly), and
the function table partitions the text segment by symbol spans.

Blocks are identified by dense integer ids in text order; block ``bid``
covers instruction indexes ``[starts[bid], ends[bid])``.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Optional

from repro.isa import dataflow as df
from repro.isa.instruction import Instruction
from repro.isa.program import Program


@dataclass(frozen=True)
class FunctionSpan:
    """One text symbol's span: ``[start, end)`` instruction indexes."""

    name: str
    address: int
    start: int               # first instruction index
    end: int                 # one past the last instruction index
    entry_block: int         # block id of the entry leader
    blocks: tuple[int, ...]  # every block id whose start lies in the span


class ControlFlowGraph:
    """Immutable CFG for one :class:`~repro.isa.program.Program`."""

    def __init__(self, program: Program):
        self.program = program
        self.insts: list[Instruction] = program.instructions
        self.text_base = program.text_base
        self.n = len(self.insts)
        self.func_syms = sorted(
            (s.address, s.name)
            for s in program.symbols.values()
            if s.section == "text"
        )
        self._build_blocks()
        self._build_functions()

    # ------------------------------------------------------------------ #
    # address <-> index <-> block

    def index_of(self, addr: int) -> int:
        return (addr - self.text_base) >> 2

    def addr_of(self, index: int) -> int:
        return self.text_base + 4 * index

    def block_at(self, addr: int) -> int:
        return self.block_of_start[self.index_of(addr)]

    def in_text(self, addr: int) -> bool:
        """True when ``addr`` is a valid instruction address."""
        return (self.text_base <= addr < self.text_base + 4 * self.n
                and (addr - self.text_base) % 4 == 0)

    # ------------------------------------------------------------------ #
    # construction

    def _build_blocks(self) -> None:
        leaders = {self.index_of(self.program.entry)}
        for addr, _name in self.func_syms:
            leaders.add(self.index_of(addr))
        for i, inst in enumerate(self.insts):
            if df.ends_block(inst):
                if i + 1 < self.n:
                    leaders.add(i + 1)
                for target in df.static_targets(inst):
                    leaders.add(self.index_of(target))
        self.starts = sorted(i for i in leaders if 0 <= i < self.n)
        self.block_of_start = {s: bid for bid, s in enumerate(self.starts)}
        self.ends = [
            self.starts[bid + 1] if bid + 1 < len(self.starts) else self.n
            for bid in range(len(self.starts))
        ]
        self.func_entry_blocks = [
            self.block_of_start[self.index_of(addr)]
            for addr, _name in self.func_syms
            if self.index_of(addr) in self.block_of_start
        ]

    def _build_functions(self) -> None:
        spans: list[FunctionSpan] = []
        by_name: dict[str, FunctionSpan] = {}
        count = len(self.func_syms)
        for pos, (addr, name) in enumerate(self.func_syms):
            start = self.index_of(addr)
            end = (self.index_of(self.func_syms[pos + 1][0])
                   if pos + 1 < count else self.n)
            if not 0 <= start < self.n or start not in self.block_of_start:
                continue
            entry = self.block_of_start[start]
            blocks = tuple(
                bid for bid in range(entry, len(self.starts))
                if self.starts[bid] < end
            )
            span = FunctionSpan(name, addr, start, end, entry, blocks)
            spans.append(span)
            by_name[name] = span
        self.functions = spans
        self.function_by_name = by_name

    # ------------------------------------------------------------------ #
    # queries

    @property
    def num_blocks(self) -> int:
        return len(self.starts)

    def block_insts(self, bid: int):
        """Iterate ``(index, instruction)`` pairs of block ``bid``."""
        start, end = self.starts[bid], self.ends[bid]
        insts = self.insts
        for i in range(start, end):
            yield i, insts[i]

    def function_of(self, addr: int) -> Optional[str]:
        """Name of the text symbol whose span contains ``addr``."""
        pos = bisect_right(self.func_syms, (addr, "￿")) - 1
        if pos < 0:
            return None
        return self.func_syms[pos][1]

    def function_at(self, addr: int) -> Optional[FunctionSpan]:
        """The function span containing ``addr``, if any."""
        name = self.function_of(addr)
        return self.function_by_name.get(name) if name else None


def build_cfg(program: Program) -> ControlFlowGraph:
    """Build (or fetch the cached) CFG for ``program``.

    The graph depends only on the immutable linked text segment, so it
    is cached on the program object and shared by every client analysis
    (`repro lint`, `repro sanitize`, ...).
    """
    cached = getattr(program, "_absint_cfg", None)
    if cached is None:
        cached = ControlFlowGraph(program)
        program._absint_cfg = cached
    return cached
