"""Worklist dataflow solver, generic over the abstract domain.

The solver computes one abstract in-state per basic block of a
:class:`~repro.analysis.absint.cfg.ControlFlowGraph`, to a fixpoint of
the domain's monotone ``join_into``. Two scopes are supported:

* **whole-program** (the default): interprocedural, context-insensitive.
  ``jal f`` propagates the caller state (via ``domain.call_entry``) into
  ``f``'s entry block and a call summary to the return site; indirect
  jumps (``jalr``, ``jr`` through a non-``$ra`` register) propagate a
  havoc state to every function entry. ``jr $ra`` is a return — the
  call summary already covers the caller side.
* **intraprocedural** (``blocks=`` a function's block set): propagation
  never crosses the block set. Calls apply only the summary to the
  return site, returns and tail jumps out of the set are exits. Used by
  the sanitizer's per-function checkers, where the entry state is
  symbolic ("the value register ``r`` held on entry").

Fixpoints of monotone functions are unique, so splitting the solver out
of the old FAC-specific interpreter preserves its verdicts bit for bit
(asserted suite-wide by ``tests/analysis/test_static_fac_suite.py`` and
the framework benchmark).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.analysis.absint.cfg import ControlFlowGraph
from repro.analysis.absint.domain import AbstractDomain
from repro.isa import dataflow as df
from repro.isa.opcodes import Op
from repro.isa.registers import Reg


class Solution:
    """Fixpoint in-states, one per block (``None`` = unreachable)."""

    def __init__(self, cfg: ControlFlowGraph, domain: AbstractDomain,
                 in_states: list):
        self.cfg = cfg
        self.domain = domain
        self.in_states = in_states

    @property
    def reachable_blocks(self) -> int:
        return sum(1 for s in self.in_states if s is not None)

    def walk(self, visit, blocks=None) -> None:
        """Drive ``visit(index, inst, state)`` over every instruction of
        every reachable block, with ``state`` the abstract state *before*
        the instruction (``None`` once an exit syscall killed the rest of
        the block). The callback must not mutate the state."""
        cfg = self.cfg
        domain = self.domain
        transfer = domain.transfer
        halts = domain.halts
        for bid in (blocks if blocks is not None
                    else range(len(cfg.starts))):
            in_state = self.in_states[bid]
            state = domain.copy(in_state) if in_state is not None else None
            for i in range(cfg.starts[bid], cfg.ends[bid]):
                inst = cfg.insts[i]
                if state is not None and halts(state, inst):
                    state = None
                visit(i, inst, state)
                if state is not None:
                    transfer(state, inst)


def solve(
    cfg: ControlFlowGraph,
    domain: AbstractDomain,
    *,
    entries: Optional[list[tuple[int, object]]] = None,
    blocks: Optional[frozenset[int]] = None,
) -> Solution:
    """Run the worklist to a fixpoint and return the block in-states.

    ``entries`` seeds the dataflow as ``(block_id, state)`` pairs; the
    default is the program entry block with ``domain.entry_state``.
    Passing ``blocks`` restricts propagation to that set and switches to
    the intraprocedural edge policy described in the module docstring.
    """
    nblocks = len(cfg.starts)
    in_states: list = [None] * nblocks
    queued = [False] * nblocks
    worklist: deque[int] = deque()
    interprocedural = blocks is None

    domain_copy = domain.copy
    join_into = domain.join_into
    transfer = domain.transfer
    halts = domain.halts
    insts = cfg.insts
    starts, ends = cfg.starts, cfg.ends
    n = cfg.n

    def propagate(bid: int, state) -> None:
        if blocks is not None and bid not in blocks:
            return
        current = in_states[bid]
        if current is None:
            in_states[bid] = domain_copy(state)
            changed = True
        else:
            changed = join_into(current, state)
        if changed and not queued[bid]:
            queued[bid] = True
            worklist.append(bid)

    def havoc_all_functions() -> None:
        havoc = domain.havoc_state(cfg.program)
        for bid in cfg.func_entry_blocks:
            propagate(bid, havoc)

    def callee_name(target: int) -> Optional[str]:
        span = cfg.function_at(target)
        return span.name if span is not None else None

    def process(bid: int) -> None:
        start, end = starts[bid], ends[bid]
        state = domain_copy(in_states[bid])
        for i in range(start, end):
            inst = insts[i]
            if halts(state, inst):
                return  # program exits here: no fallthrough, no successors
            transfer(state, inst)
        last = insts[end - 1]
        last_addr = cfg.text_base + 4 * (end - 1)
        op = last.op
        if df.is_branch(last):
            propagate(cfg.block_at(last.target), state)
            if end < n:
                propagate(cfg.block_of_start[end], state)
        elif op is Op.J:
            propagate(cfg.block_at(last.target), state)
        elif op is Op.JAL:
            if interprocedural:
                propagate(cfg.block_at(last.target),
                          domain.call_entry(state, (last_addr + 4) & 0xFFFFFFFF))
            if end < n:
                propagate(cfg.block_of_start[end],
                          domain.call_summary(state, callee_name(last.target)))
        elif op is Op.JALR:
            if interprocedural:
                havoc_all_functions()
            if end < n:
                propagate(cfg.block_of_start[end],
                          domain.call_summary(state, None))
        elif op is Op.JR:
            if last.rs != Reg.RA and interprocedural:
                havoc_all_functions()
            # jr $ra: return -- the call summary covers the caller side.
        elif op is Op.BREAK:
            pass
        elif end < n:
            propagate(cfg.block_of_start[end], state)

    if entries is None:
        entries = [(cfg.block_at(cfg.program.entry),
                    domain.entry_state(cfg.program))]
    for bid, state in entries:
        propagate(bid, state)
    while worklist:
        bid = worklist.popleft()
        queued[bid] = False
        process(bid)
    return Solution(cfg, domain, in_states)


def solve_function(cfg: ControlFlowGraph, domain: AbstractDomain,
                   span) -> Solution:
    """Intraprocedural fixpoint over one function span, seeded with the
    domain's entry state at the function's entry block."""
    return solve(
        cfg, domain,
        entries=[(span.entry_block, domain.entry_state(cfg.program))],
        blocks=frozenset(span.blocks),
    )
