"""The pluggable abstract-domain interface.

A domain packages everything the worklist solver
(:mod:`repro.analysis.absint.solver`) needs to know about one lattice
of abstract machine states:

* how states are created (program entry, havoc), copied, and joined,
* the transfer function for one instruction, applied **in place**,
* the interprocedural call protocol (entry state for a callee, summary
  state for the return site),
* which instructions provably halt the program (so the solver can stop
  propagating past them).

States are deliberately opaque to the solver: the known-bits domain
uses a flat list of 32 ``(mask, value)`` pairs, the value-range domain
a list of intervals, and the calling-convention domain a
``(registers, frame)`` pair. The only structural requirement is that
``join_into`` is monotone with finite ascending chains, which makes the
fixpoint terminate.

Call summaries receive the *callee name* (or ``None`` for indirect
calls), so a domain can consult per-function facts — the sanitizer's
convention checker feeds the set of callee-saved registers each
function fails to preserve back into the FAC domain this way, which is
what discharges the old "callees follow the O32 convention" assumption.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.program import Program


class AbstractDomain:
    """Base class every pluggable domain implements."""

    #: short identifier used in diagnostics and benchmarks
    name = "abstract"

    # -- state lifecycle ----------------------------------------------- #

    def entry_state(self, program: Program):
        """Abstract state at the program (or function) entry point."""
        raise NotImplementedError

    def havoc_state(self, program: Program):
        """Weakest state soundly describing an unknown control transfer
        into a function entry (indirect call with unknown target)."""
        raise NotImplementedError

    def copy(self, state):
        """Independent copy of ``state`` (mutated by ``transfer``)."""
        raise NotImplementedError

    def join_into(self, current, incoming) -> bool:
        """Widen ``current`` (in place) with ``incoming``; return True
        when ``current`` changed. Must be monotone with finite chains."""
        raise NotImplementedError

    # -- semantics ----------------------------------------------------- #

    def transfer(self, state, inst: Instruction) -> None:
        """Apply one instruction's effect to ``state`` in place."""
        raise NotImplementedError

    def halts(self, state, inst: Instruction) -> bool:
        """True when ``inst`` provably terminates the program in
        ``state`` (e.g. an exit syscall with a known service number)."""
        return False

    # -- interprocedural protocol -------------------------------------- #

    def call_entry(self, state, return_addr: int):
        """State propagated into a directly-called function's entry
        (the caller state with the return address materialised)."""
        return self.copy(state)

    def call_summary(self, state, callee: str | None):
        """State at the return site after a completed call to
        ``callee`` (``None`` when the callee is statically unknown)."""
        raise NotImplementedError
