"""The known-bits abstract value lattice.

Every abstract value is a pair ``(mask, value)`` of 32-bit ints:
bit ``i`` of the modelled register is *known* to equal ``value[i]``
whenever ``mask[i]`` is 1, and is unknown otherwise. The invariant
``value & ~mask == 0`` is maintained by every operation.

This is the classic alignment/low-bits lattice used by compilers to
prove speculation safety: TOP (nothing known) is ``(0, 0)``, constants
are fully known, and the join of two values keeps exactly the bits on
which they agree. The lattice has finite height (a join can only clear
mask bits), so the dataflow in :mod:`repro.analysis.absint.solver`
terminates.

Concretisation: ``gamma((m, v)) = { x : x & m == v }``. All the
classification helpers (:func:`min_in_field` / :func:`max_in_field` /
``possible_ones`` / ``certain_ones``) are exact over that set because
unknown bits vary independently.
"""

from __future__ import annotations

from repro.utils.bits import MASK32

KnownBits = tuple[int, int]  # (mask, value), value & ~mask == 0

TOP: KnownBits = (0, 0)
ZERO: KnownBits = (MASK32, 0)


def const(value: int) -> KnownBits:
    """Fully known 32-bit constant."""
    return (MASK32, value & MASK32)


def is_const(kb: KnownBits) -> bool:
    return kb[0] == MASK32


def join(a: KnownBits, b: KnownBits) -> KnownBits:
    """Least upper bound: keep the bits both values agree on."""
    mask = a[0] & b[0] & ~(a[1] ^ b[1]) & MASK32
    return (mask, a[1] & mask)


def bit_and(a: KnownBits, b: KnownBits) -> KnownBits:
    ones = (a[0] & a[1]) & (b[0] & b[1])
    zeros = (a[0] & ~a[1]) | (b[0] & ~b[1])
    mask = (ones | zeros) & MASK32
    return (mask, ones & MASK32)


def bit_or(a: KnownBits, b: KnownBits) -> KnownBits:
    ones = (a[0] & a[1]) | (b[0] & b[1])
    zeros = (a[0] & ~a[1]) & (b[0] & ~b[1])
    mask = (ones | zeros) & MASK32
    return (mask, ones & MASK32)


def bit_xor(a: KnownBits, b: KnownBits) -> KnownBits:
    mask = a[0] & b[0]
    return (mask, (a[1] ^ b[1]) & mask)


def bit_not(a: KnownBits) -> KnownBits:
    return (a[0], ~a[1] & a[0] & MASK32)


def add(a: KnownBits, b: KnownBits, carry_in: int = 0) -> KnownBits:
    """Known-bits addition modulo 2**32, in O(1) word operations.

    A result bit is known when both operand bits and the incoming carry
    are known. The two "possible sums" — all unknown bits 0 versus all
    unknown bits 1 — pin the carry into a position whenever they agree
    with the operands there, which is exactly the majority-function
    resynchronisation a bitwise ripple would compute (checked equivalent
    against a ripple-carry reference by exhaustive enumeration).
    """
    am, av = a
    bm, bv = b
    if am == MASK32 and bm == MASK32:
        return (MASK32, (av + bv + carry_in) & MASK32)
    sum_max = ((av | ~am) + (bv | ~bm) + carry_in) & MASK32  # unknowns = 1
    sum_min = (av + bv + carry_in) & MASK32                  # unknowns = 0
    carry_zero = ~(sum_max ^ (am & ~av) ^ (bm & ~bv))
    carry_one = sum_min ^ av ^ bv
    mask = am & bm & (carry_zero | carry_one) & MASK32
    return (mask, sum_min & mask)


def sub(a: KnownBits, b: KnownBits) -> KnownBits:
    """a - b == a + ~b + 1 over the same lattice."""
    return add(a, bit_not(b), carry_in=1)


def shl(a: KnownBits, amount: int) -> KnownBits:
    """Left shift by a known amount; shifted-in bits are known zero."""
    amount &= 31
    low_ones = (1 << amount) - 1
    mask = ((a[0] << amount) | low_ones) & MASK32
    return (mask, (a[1] << amount) & mask)


def shr(a: KnownBits, amount: int) -> KnownBits:
    """Logical right shift; shifted-in bits are known zero."""
    amount &= 31
    high_ones = (MASK32 ^ (MASK32 >> amount)) if amount else 0
    return ((a[0] >> amount) | high_ones, a[1] >> amount)


def sar(a: KnownBits, amount: int) -> KnownBits:
    """Arithmetic right shift; fills with the (possibly unknown) sign."""
    amount &= 31
    if amount == 0:
        return a
    high_ones = MASK32 ^ (MASK32 >> amount)
    if a[0] & 0x80000000:
        sign = 1 if a[1] & 0x80000000 else 0
        mask = (a[0] >> amount) | high_ones
        value = (a[1] >> amount) | (high_ones if sign else 0)
        return (mask, value & mask)
    return (a[0] >> amount, a[1] >> amount)


# ---------------------------------------------------------------------- #
# field queries used by the FAC classifier

def min_in_field(kb: KnownBits, field: int) -> int:
    """Smallest value of ``x & field`` over the concretisation."""
    return kb[1] & field


def max_in_field(kb: KnownBits, field: int) -> int:
    """Largest value of ``x & field`` over the concretisation."""
    return (kb[1] | ~kb[0]) & field & MASK32


def possible_ones(kb: KnownBits, field: int) -> int:
    """Bits of ``field`` that *may* be 1 in some concrete value."""
    return (kb[1] | ~kb[0]) & field & MASK32


def certain_ones(kb: KnownBits, field: int) -> int:
    """Bits of ``field`` that are 1 in *every* concrete value."""
    return kb[1] & kb[0] & field


def render(kb: KnownBits) -> str:
    """Debug rendering: known bits as 0/1, unknown as '.', MSB first."""
    out = []
    for i in range(31, -1, -1):
        pos = 1 << i
        if kb[0] & pos:
            out.append("1" if kb[1] & pos else "0")
        else:
            out.append(".")
    return "".join(out)
