"""Reference-type classification and offset distributions (paper Section 2).

The paper classifies every load by the *base register* of its effective
address computation:

* **global pointer** addressing -- base is ``$gp``,
* **stack pointer** addressing -- base is ``$sp`` (or ``$fp``),
* **general pointer** addressing -- everything else.

Offset-size distributions (Figure 3) bucket each access by the bit-width
of its offset: bucket ``k`` holds offsets in ``[2**(k-1), 2**k)`` (bucket
0 holds zero offsets), with a separate bucket for negative offsets,
cumulated per reference type.
"""

from __future__ import annotations

from repro.cpu.executor import TraceRecord
from repro.isa.opcodes import OP_INFO
from repro.isa.registers import Reg
from repro.utils.bits import to_signed32
from repro.utils.stats import Histogram

# Figure 3's x axis: offset size in bits 0..15, then "More", plus "Neg".
OFFSET_BUCKETS = tuple(range(16)) + ("More", "Neg")

GLOBAL = "global"
STACK = "stack"
GENERAL = "general"


def classify_base(base_reg: int) -> str:
    """Reference type from the base register number."""
    if base_reg == Reg.GP:
        return GLOBAL
    if base_reg == Reg.SP or base_reg == Reg.FP:
        return STACK
    return GENERAL


def offset_bucket(offset: int):
    """Figure 3 bucket for a signed offset value."""
    if offset < 0:
        return "Neg"
    bits = offset.bit_length()
    return bits if bits <= 15 else "More"


class ReferenceProfile:
    """Accumulates Table 1 and Figure 3 statistics from a trace."""

    def __init__(self):
        self.instructions = 0
        self.loads = 0
        self.stores = 0
        self.load_class = {GLOBAL: 0, STACK: 0, GENERAL: 0}
        self.store_class = {GLOBAL: 0, STACK: 0, GENERAL: 0}
        self.offset_hist = {
            GLOBAL: Histogram("global"),
            STACK: Histogram("stack"),
            GENERAL: Histogram("general"),
        }

    def observe(self, rec: TraceRecord) -> None:
        self.instructions += 1
        inst = rec.inst
        info = OP_INFO[inst.op]
        if not info.mem_width:
            return
        ref_class = classify_base(inst.rs)
        if info.mem_mode == "x":
            offset = to_signed32(rec.offset_value)
        else:
            offset = rec.offset_value
        if info.is_load:
            self.loads += 1
            self.load_class[ref_class] += 1
            self.offset_hist[ref_class].record(_bucket_key(offset))
        else:
            self.stores += 1
            self.store_class[ref_class] += 1

    # ------------------------------------------------------------------ #

    @property
    def refs(self) -> int:
        return self.loads + self.stores

    def load_fraction(self, ref_class: str) -> float:
        return self.load_class[ref_class] / self.loads if self.loads else 0.0

    def cumulative_offsets(self, ref_class: str) -> list[float]:
        """Cumulative fraction per Figure 3 bucket (Neg first, then
        0..15 bits, then More) for ``ref_class`` loads."""
        hist = self.offset_hist[ref_class]
        total = hist.total
        if total == 0:
            return [0.0] * 18
        running = 0
        out = []
        for bucket in ("Neg",) + tuple(range(16)) + ("More",):
            running += hist.count(_KEY_ORDER[bucket])
            out.append(running / total)
        return out


# Histogram keys are ints; map the symbolic buckets onto sentinels.
_KEY_ORDER = {**{b: b for b in range(16)}, "Neg": -1, "More": 16}


def _bucket_key(offset: int) -> int:
    bucket = offset_bucket(offset)
    return _KEY_ORDER[bucket] if not isinstance(bucket, int) else bucket
