"""Symbolic entry-relative value domain for per-function checking.

The convention and stack checkers need to answer "does this register
still hold the value it had on function entry?" and "where in the frame
does this access land?" — questions the known-bits domain cannot
express, since entry values are unknown bits. This domain tracks
*symbolic* values relative to the function entry:

* ``("init", r)`` — the value register ``r`` held on entry;
* ``("sp", d)`` — entry ``$sp`` plus ``d`` bytes (``d`` signed);
* ``("al", a, d)`` — the ``AND``-realigned ``$sp`` produced by the
  variable-frame prologue instruction at address ``a``, plus ``d``
  (its distance from entry ``$sp`` is unknown, but offsets from it are
  exact);
* ``("const", k)`` — the 32-bit constant ``k``;
* ``None`` — unknown (TOP).

Alongside the registers the state carries a *frame map* from
``(region, byte_offset)`` to the symbolic value stored there, where
``region`` is ``"sp"`` (entry-sp-relative) or ``("al", a)``. The map
uses must-write semantics: a slot survives a join only when every
incoming path wrote it, with differing values degrading to ``None``
(written, value unknown). This is what lets the epilogue's restores
(``lw $s0, 8($sp)``) be recognised as producing ``("init", $s0)``.

Locality assumption (documented in docs/static_analysis.md): stores
through non-``$sp``-derived pointers do not invalidate the frame map,
and callees do not overwrite their caller's saved-register slots. The
stack checker independently tracks frame-address escapes and suppresses
its uninitialised-read warnings when one occurs; the dynamic
cross-checks in tests/analysis/ guard the assumption suite-wide.
"""

from __future__ import annotations

from repro.analysis.absint.domain import AbstractDomain
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OP_INFO, Op
from repro.isa.program import Program
from repro.isa.registers import Reg

MASK32 = 0xFFFFFFFF

_EXIT_SERVICES = (10, 17)

#: Registers the O32 convention obliges a callee to preserve, i.e. the
#: ones the convention checker verifies at every return.
CHECKED_REGS = (
    Reg.S0, Reg.S1, Reg.S2, Reg.S3, Reg.S4, Reg.S5, Reg.S6, Reg.S7,
    Reg.FP, Reg.GP, Reg.SP,
)

_PRESERVED = frozenset(CHECKED_REGS) | {Reg.ZERO}


def _signed(k: int) -> int:
    k &= MASK32
    return k - 0x100000000 if k & 0x80000000 else k


def sym_const(k: int):
    return ("const", k & MASK32)


def sym_add(value, k: int):
    """``value + k`` for a signed integer ``k``."""
    if value is None:
        return None
    tag = value[0]
    if tag == "const":
        return ("const", (value[1] + k) & MASK32)
    if tag == "sp":
        return ("sp", value[1] + k)
    if tag == "al":
        return ("al", value[1], value[2] + k)
    if tag == "init" and k == 0:
        return value
    return None


def is_sp_relative(value) -> bool:
    """True for values that address the current function's stack."""
    return value is not None and value[0] in ("sp", "al")


def frame_slot(value, imm: int):
    """``(region, offset)`` frame key for an access at ``value + imm``,
    or None when the address is not stack-relative."""
    if value is None:
        return None
    if value[0] == "sp":
        return ("sp", value[1] + imm)
    if value[0] == "al":
        return (("al", value[1]), value[2] + imm)
    return None


def render(value) -> str:
    if value is None:
        return "?"
    tag = value[0]
    if tag == "const":
        return f"{value[1]:#x}"
    if tag == "init":
        from repro.isa.registers import reg_name
        return f"init({reg_name(value[1])})"
    if tag == "sp":
        return f"entry-sp{value[1]:+d}"
    return f"aligned-sp@{value[1]:#x}{value[2]:+d}"


class FrameDomain(AbstractDomain):
    """Entry-relative symbolic domain; state is ``[regs, frame]``."""

    name = "frame"

    def __init__(self, clobbers: dict[str, frozenset[int]] | None = None):
        self.clobbers = dict(clobbers) if clobbers else {}
        union: frozenset[int] = frozenset()
        for regs in self.clobbers.values():
            union |= regs
        self._clobber_unknown = union

    # -- state lifecycle ----------------------------------------------- #

    def entry_state(self, program: Program):
        regs = [("init", r) for r in range(32)]
        regs[Reg.ZERO] = sym_const(0)
        regs[Reg.SP] = ("sp", 0)
        return [regs, {}]

    def havoc_state(self, program: Program):
        regs: list = [None] * 32
        regs[Reg.ZERO] = sym_const(0)
        return [regs, {}]

    def copy(self, state):
        return [list(state[0]), dict(state[1])]

    def join_into(self, current, incoming) -> bool:
        changed = False
        regs, frame = current
        new_regs, new_frame = incoming
        for r in range(32):
            if regs[r] is not None and regs[r] != new_regs[r]:
                regs[r] = None
                changed = True
        for key in list(frame):
            if key not in new_frame:
                del frame[key]          # not written on every path
                changed = True
            elif frame[key] is not None and frame[key] != new_frame[key]:
                frame[key] = None       # written everywhere, value differs
                changed = True
        return changed

    # -- semantics ----------------------------------------------------- #

    def transfer(self, state, inst: Instruction) -> None:
        regs, frame = state
        op = inst.op
        if op is Op.ADDU or op is Op.ADD:
            regs[inst.rd] = self._add2(regs[inst.rs], regs[inst.rt])
        elif op is Op.ADDIU or op is Op.ADDI:
            regs[inst.rt] = sym_add(regs[inst.rs], inst.imm)
        elif op is Op.SUBU or op is Op.SUB:
            a, b = regs[inst.rs], regs[inst.rt]
            if b is not None and b[0] == "const":
                regs[inst.rd] = sym_add(a, -_signed(b[1]))
            elif a is not None and b is not None and a == b:
                regs[inst.rd] = sym_const(0)
            else:
                regs[inst.rd] = None
        elif op is Op.AND:
            regs[inst.rd] = self._and2(regs[inst.rs], regs[inst.rt], inst)
        elif op is Op.OR:
            regs[inst.rd] = self._or2(regs[inst.rs], regs[inst.rt])
        elif op is Op.ORI:
            regs[inst.rt] = self._or2(regs[inst.rs],
                                      sym_const(inst.imm & 0xFFFF))
        elif op is Op.ANDI:
            a = regs[inst.rs]
            regs[inst.rt] = (sym_const(a[1] & inst.imm & 0xFFFF)
                             if a is not None and a[0] == "const" else None)
        elif op is Op.XOR or op is Op.XORI:
            a = regs[inst.rs]
            b = (sym_const(inst.imm & 0xFFFF) if op is Op.XORI
                 else regs[inst.rt])
            dest = inst.rt if op is Op.XORI else inst.rd
            if b == ("const", 0):
                regs[dest] = a
            elif (a is not None and b is not None
                    and a[0] == "const" and b[0] == "const"):
                regs[dest] = sym_const(a[1] ^ b[1])
            else:
                regs[dest] = None
        elif op is Op.NOR:
            a, b = regs[inst.rs], regs[inst.rt]
            if (a is not None and b is not None
                    and a[0] == "const" and b[0] == "const"):
                regs[inst.rd] = sym_const(~(a[1] | b[1]))
            else:
                regs[inst.rd] = None
        elif op is Op.LUI:
            regs[inst.rt] = sym_const((inst.imm & 0xFFFF) << 16)
        elif op is Op.SLL or op is Op.SRL or op is Op.SRA:
            a = regs[inst.rt]
            shift = inst.imm & 31
            if shift == 0:
                regs[inst.rd] = a
            elif a is not None and a[0] == "const":
                if op is Op.SLL:
                    regs[inst.rd] = sym_const(a[1] << shift)
                elif op is Op.SRL:
                    regs[inst.rd] = sym_const(a[1] >> shift)
                else:
                    v = a[1] - 0x100000000 if a[1] & 0x80000000 else a[1]
                    regs[inst.rd] = sym_const(v >> shift)
            else:
                regs[inst.rd] = None
        elif op is Op.SLLV or op is Op.SRLV or op is Op.SRAV:
            regs[inst.rd] = None
        elif op is Op.SLT or op is Op.SLTU:
            regs[inst.rd] = None
        elif op is Op.SLTI or op is Op.SLTIU:
            regs[inst.rt] = None
        elif op is Op.MFHI or op is Op.MFLO or op is Op.MFC1:
            regs[inst.rd] = None
        elif op is Op.SYSCALL:
            regs[Reg.V0] = None
        else:
            info = OP_INFO[op]
            if info.mem_width:
                base = regs[inst.rs]
                # post-increment accesses the raw base; the immediate
                # only updates the base afterwards
                eff_imm = 0 if info.mem_mode == "p" else inst.imm
                if info.is_store:
                    slot = frame_slot(base, eff_imm)
                    if slot is not None:
                        # sub-word stores mark the slot written but the
                        # word value unknown (truncation)
                        value = (regs[inst.rt]
                                 if not info.mem_fp and info.mem_width == 4
                                 else None)
                        frame[slot] = value
                        if info.mem_width == 8:
                            frame[(slot[0], slot[1] + 4)] = None
                elif not info.mem_fp:
                    slot = frame_slot(base, eff_imm)
                    regs[inst.rt] = (frame.get(slot)
                                     if info.mem_width == 4
                                     and slot is not None and slot in frame
                                     else None)
                if info.mem_mode == "p":
                    regs[inst.rs] = sym_add(base, inst.imm)
        regs[Reg.ZERO] = sym_const(0)

    @staticmethod
    def _add2(a, b):
        if b is not None and b[0] == "const":
            return sym_add(a, _signed(b[1]))
        if a is not None and a[0] == "const":
            return sym_add(b, _signed(a[1]))
        return None

    @staticmethod
    def _and2(a, b, inst: Instruction):
        if (a is not None and b is not None
                and a[0] == "const" and b[0] == "const"):
            return sym_const(a[1] & b[1])
        # variable-frame prologue: AND of a stack address with a -2**k
        # mask realigns $sp downward — a fresh exactly-offsettable region
        for value, mask in ((a, b), (b, a)):
            if (is_sp_relative(value) and mask is not None
                    and mask[0] == "const"):
                inv = (~mask[1]) & MASK32
                if inv and (inv & (inv + 1)) == 0:   # mask == -2**k
                    return ("al", inst.addr, 0)
        return None

    @staticmethod
    def _or2(a, b):
        if b == ("const", 0):
            return a
        if a == ("const", 0):
            return b
        if (a is not None and b is not None
                and a[0] == "const" and b[0] == "const"):
            return sym_const(a[1] | b[1])
        return None

    def halts(self, state, inst: Instruction) -> bool:
        if inst.op is not Op.SYSCALL:
            return False
        v0 = state[0][Reg.V0]
        return (v0 is not None and v0[0] == "const"
                and v0[1] in _EXIT_SERVICES)

    # -- interprocedural protocol -------------------------------------- #

    def call_entry(self, state, return_addr: int):
        entry = self.copy(state)
        entry[0][Reg.RA] = sym_const(return_addr)
        return entry

    def call_summary(self, state, callee):
        regs, frame = state
        if callee is None:
            clobbered = self._clobber_unknown
        else:
            clobbered = self.clobbers.get(callee, frozenset())
        new_regs = [
            regs[r] if r in _PRESERVED and r not in clobbered else None
            for r in range(32)
        ]
        # locality assumption: the callee does not rewrite our frame
        return [new_regs, dict(frame)]
