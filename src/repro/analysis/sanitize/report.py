"""Findings and report rendering for ``repro sanitize``.

Diagnostic codes (documented in docs/static_analysis.md):

========  ========  ==========  =======================================
code      severity  checker     meaning
========  ========  ==========  =======================================
SAN101    error     convention  callee-saved register not restored at a
                                return
SAN102    error     convention  $sp not restored to its entry value
SAN103    error     convention  $ra clobbered (return target corrupted)
SAN201    error     stack       memory access below the stack pointer
SAN202    warning   stack       read of a frame slot no path has written
SAN301    error     bounds      constant-address access outside every
                                mapped data region
SAN302    error     bounds      access overruns the target symbol's size
SAN401    error     cfi         control can fall through off the end of
                                the text segment
SAN402    error     cfi         branch/jump target is not a valid
                                instruction address
SAN403    error     cfi         indirect jump through a provably
                                non-text address
========  ========  ==========  =======================================

Exit status of the CLI mirrors ``repro lint``: 0 clean, 1 when any
finding was produced, 2 on usage errors.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

SANITIZE_SCHEMA_VERSION = "repro.sanitize/1"

#: rule id -> (checker, short description) for --sarif rule metadata.
RULES = {
    "SAN101": ("convention", "callee-saved register not restored"),
    "SAN102": ("convention", "$sp not restored on return"),
    "SAN103": ("convention", "$ra clobbered before return"),
    "SAN201": ("stack", "memory access below $sp"),
    "SAN202": ("stack", "read of never-written frame slot"),
    "SAN301": ("bounds", "access outside mapped data regions"),
    "SAN302": ("bounds", "access overruns symbol"),
    "SAN401": ("cfi", "fallthrough off the text segment"),
    "SAN402": ("cfi", "invalid control-transfer target"),
    "SAN403": ("cfi", "indirect jump to non-text address"),
}


@dataclass(frozen=True)
class Finding:
    """One sanitizer finding, anchored at a text address."""

    code: str
    severity: str
    address: int               # 0 for program-level findings
    function: Optional[str]
    message: str
    hint: Optional[str] = None

    @property
    def checker(self) -> str:
        return RULES[self.code][0]

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "checker": self.checker,
            "severity": self.severity,
            "address": self.address,
            "function": self.function,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        where = f"0x{self.address:08x}" if self.address else "program"
        if self.function:
            where += f" ({self.function})"
        text = f"{self.severity}: {self.code}: {where}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class SanitizeReport:
    """Full sanitizer output for one program."""

    program_name: str
    findings: list[Finding]
    functions_checked: int
    sites_checked: int
    clobbers: dict[str, frozenset[int]] = field(default_factory=dict)
    program: object = None     # the analyzed Program, for SARIF locations

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_checker(self) -> dict[str, int]:
        out = {checker: 0 for checker, _ in RULES.values()}
        for finding in self.findings:
            out[finding.checker] += 1
        return out

    def to_json(self) -> dict:
        """Machine-readable form, matching
        :data:`repro.analysis.reporting.SANITIZE_SCHEMA`."""
        return {
            "schema": SANITIZE_SCHEMA_VERSION,
            "program": self.program_name,
            "summary": {
                "functions": self.functions_checked,
                "sites": self.sites_checked,
                "findings": len(self.findings),
                "errors": sum(1 for f in self.findings
                              if f.severity == SEVERITY_ERROR),
                "warnings": sum(1 for f in self.findings
                                if f.severity == SEVERITY_WARNING),
                "by_checker": self.by_checker(),
            },
            "findings": [f.to_dict() for f in self.findings],
        }

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        counts = self.by_checker()
        breakdown = ", ".join(f"{checker} {count}"
                              for checker, count in sorted(counts.items())
                              if count)
        lines.append(
            f"{self.program_name}: {self.functions_checked} functions, "
            f"{self.sites_checked} memory sites checked: "
            + (f"{len(self.findings)} findings ({breakdown})"
               if self.findings else "clean")
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # SARIF

    def to_sarif(self) -> dict:
        """Minimal SARIF 2.1.0 document (one run, one result per
        finding), consumable by code-scanning UIs."""
        rules = [
            {
                "id": code,
                "name": code,
                "shortDescription": {"text": description},
                "properties": {"checker": checker},
            }
            for code, (checker, description) in sorted(RULES.items())
        ]
        results = []
        for finding in self.findings:
            location = {
                "physicalLocation": {
                    "artifactLocation": {"uri": self.program_name},
                },
                "logicalLocations": [{
                    "name": finding.function or "<program>",
                    "kind": "function",
                }],
            }
            source = None
            if self.program is not None and finding.address:
                source = self.program.source_of(finding.address)
            if source is not None:
                file, line = source
                location["physicalLocation"] = {
                    "artifactLocation": {"uri": file},
                    "region": {"startLine": line},
                }
            message = finding.message
            if finding.hint:
                message += f" (hint: {finding.hint})"
            results.append({
                "ruleId": finding.code,
                "level": ("error" if finding.severity == SEVERITY_ERROR
                          else "warning"),
                "message": {"text": message},
                "locations": [location],
                "properties": {
                    "address": f"0x{finding.address:08x}",
                    "checker": finding.checker,
                },
            })
        return {
            "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                        "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
            "version": "2.1.0",
            "runs": [{
                "tool": {
                    "driver": {
                        "name": "repro-sanitize",
                        "informationUri":
                            "https://example.invalid/repro/docs/"
                            "static_analysis.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }],
        }

    def sarif_text(self) -> str:
        return json.dumps(self.to_sarif(), indent=2, sort_keys=True)
