"""Control-flow integrity checker (SAN401..SAN403).

Static checks over the linked text segment plus the known-bits
fixpoint:

* **SAN401** — reachable control can fall off the end of the text
  segment: the last text instruction is reachable and is not an
  unconditional transfer or a provably-terminating syscall, so the
  machine would fetch past the segment.
* **SAN402** — a branch or direct jump encodes a target that is not a
  valid instruction address (outside text, or not word-aligned).
* **SAN403** — an indirect jump (``jr``/``jalr``) through a register
  that provably holds a non-text address — e.g. ``jr $ra`` on a path
  where ``$ra`` still has its loader-zeroed entry value.
"""

from __future__ import annotations

from repro.analysis.absint import knownbits as kb
from repro.analysis.absint.solver import Solution
from repro.analysis.sanitize.report import SEVERITY_ERROR, Finding
from repro.isa import dataflow as df
from repro.isa.disassembler import disassemble
from repro.isa.opcodes import Op
from repro.isa.registers import reg_name


def check_cfi(solution: Solution) -> list[Finding]:
    cfg = solution.cfg
    findings: list[Finding] = []

    # SAN402: every encoded target must be a valid instruction address
    for i, inst in enumerate(cfg.insts):
        for target in df.static_targets(inst):
            if not cfg.in_text(target):
                addr = cfg.addr_of(i)
                findings.append(Finding(
                    "SAN402", SEVERITY_ERROR, addr, cfg.function_of(addr),
                    f"`{disassemble(inst)}` targets 0x{target:08x}, which "
                    "is not a valid instruction address "
                    f"(text is [0x{cfg.text_base:08x}, "
                    f"0x{cfg.text_base + 4 * cfg.n:08x}))",
                    hint="the jump would fetch garbage; fix the target "
                         "label or the address arithmetic",
                ))

    # SAN403: indirect jumps through provably non-text values
    def visit(i, inst, state):
        if state is None:
            return
        if inst.op is Op.JR or inst.op is Op.JALR:
            value = state[inst.rs]
            if kb.is_const(value) and not cfg.in_text(value[1]):
                addr = cfg.addr_of(i)
                findings.append(Finding(
                    "SAN403", SEVERITY_ERROR, addr, cfg.function_of(addr),
                    f"`{disassemble(inst)}` jumps through "
                    f"{reg_name(inst.rs)} = 0x{value[1]:08x}, which is "
                    "provably not a text address",
                    hint="the register was never loaded with a code "
                         "address on this path (e.g. returning without a "
                         "caller, or jumping through a data pointer)",
                ))

    solution.walk(visit)

    # SAN401: reachable fallthrough off the end of the text segment
    if cfg.n:
        last_bid = len(cfg.starts) - 1
        last = cfg.insts[cfg.n - 1]
        seen = []
        solution.walk(lambda i, inst, state: seen.append((i, state)),
                      blocks=[last_bid])
        final_state = next((s for i, s in seen if i == cfg.n - 1), None)
        falls = last.op not in (Op.J, Op.JR, Op.BREAK) \
            and not (last.op is Op.SYSCALL and final_state is None) \
            and not df.is_return(last)
        if solution.in_states[last_bid] is not None and final_state is not None \
                and falls:
            addr = cfg.addr_of(cfg.n - 1)
            findings.append(Finding(
                "SAN401", SEVERITY_ERROR, addr, cfg.function_of(addr),
                f"control can fall through `{disassemble(last)}` off the "
                "end of the text segment",
                hint="end the program with an exit syscall, an "
                     "unconditional jump, or a return",
            ))
    return findings
