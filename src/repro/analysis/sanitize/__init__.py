"""Whole-program static sanitizer for linked MIPS programs.

``repro sanitize`` runs four checkers over one linked
:class:`~repro.isa.program.Program`, all built on the
:mod:`repro.analysis.absint` framework:

==========  ========================================================
checker     claims checked (codes)
==========  ========================================================
convention  O32 callee-saved discipline at every return
            (SAN101 $s0-$s7/$fp/$gp, SAN102 $sp, SAN103 $ra)
stack       accesses below $sp, reads of never-written frame slots
            (SAN201, SAN202)
bounds      constant-address accesses outside the linked memory map
            or overrunning a symbol (SAN301, SAN302)
cfi         fallthrough off text, invalid branch targets, indirect
            jumps to non-text addresses (SAN401-SAN403)
==========  ========================================================

The convention checker's clobber facts feed the known-bits domain used
by the bounds/cfi checkers here and by ``repro lint`` — a verified
replacement for the historical convention *assumption*.
"""

from __future__ import annotations

from repro.analysis.absint import build_cfg, solve
from repro.analysis.absint.knownbits_domain import KnownBitsDomain
from repro.analysis.sanitize.bounds import check_bounds
from repro.analysis.sanitize.cfi import check_cfi
from repro.analysis.sanitize.convention import (
    ConventionAnalysis,
    analyze_conventions,
    convention_clobbers,
)
from repro.analysis.sanitize.report import (
    RULES,
    SANITIZE_SCHEMA_VERSION,
    Finding,
    SanitizeReport,
)
from repro.analysis.sanitize.stack import check_stack
from repro.isa.opcodes import OP_INFO
from repro.isa.program import Program

__all__ = [
    "ConventionAnalysis",
    "Finding",
    "RULES",
    "SANITIZE_SCHEMA_VERSION",
    "SanitizeReport",
    "analyze_conventions",
    "convention_clobbers",
    "sanitize_program",
]


def sanitize_program(program: Program, name: str = "program") -> SanitizeReport:
    """Run every checker over ``program`` and collect the findings."""
    cfg = build_cfg(program)
    conv = analyze_conventions(cfg)
    findings = list(conv.findings)
    findings.extend(check_stack(conv))
    # known-bits fixpoint under the *verified* convention facts
    solution = solve(cfg, KnownBitsDomain(conv.clobbers))
    findings.extend(check_bounds(program, solution))
    findings.extend(check_cfi(solution))
    findings.sort(key=lambda f: (f.address, f.code))
    sites = sum(1 for inst in cfg.insts if OP_INFO[inst.op].mem_width)
    return SanitizeReport(
        program_name=name,
        findings=findings,
        functions_checked=len(cfg.functions),
        sites_checked=sites,
        clobbers=conv.clobbers,
        program=program,
    )
