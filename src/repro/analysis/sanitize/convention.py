"""Calling-convention checker (SAN101..SAN103).

Verifies, per function, that every ``jr $ra`` return leaves the MIPS
O32 callee-saved registers (``$s0..$s7 $fp $gp``) holding their entry
values, ``$sp`` restored to entry, and ``$ra`` uncorrupted — using the
entry-relative symbolic domain of
:mod:`repro.analysis.sanitize.frame`.

Functions are analysed to a bottom-up call-graph fixpoint with
*optimistic* initialisation: every callee is first assumed convention-
clean, each function is checked intraprocedurally under the current
facts, and any newly discovered clobber re-triggers its callers. Since
clobber sets only grow and are finite, this terminates; by induction on
concrete call depth the least fixpoint is sound — a function reported
clean preserves the registers on every real execution (modulo the
frame-locality assumption documented in the frame module).

The resulting ``clobbers`` map is the checker's exported *fact*:
``repro lint`` feeds it into the known-bits call summaries, replacing
the historical "callees follow the convention" assumption with a
verified input.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.absint.cfg import ControlFlowGraph, FunctionSpan
from repro.analysis.absint.solver import Solution, solve_function
from repro.analysis.sanitize.frame import CHECKED_REGS, FrameDomain, render
from repro.analysis.sanitize.report import SEVERITY_ERROR, Finding
from repro.isa import dataflow as df
from repro.isa.registers import Reg, reg_name


@dataclass
class FunctionCheck:
    """Per-function result: the fixpoint solution plus return facts."""

    span: FunctionSpan
    solution: Solution
    # (return address, register -> offending symbolic value)
    return_sites: list[tuple[int, dict[int, object]]]
    clobbered: frozenset[int]
    ra_corrupt_at: list[int] = field(default_factory=list)


@dataclass
class ConventionAnalysis:
    """Whole-program convention facts and findings."""

    cfg: ControlFlowGraph
    checks: dict[str, FunctionCheck]
    clobbers: dict[str, frozenset[int]]     # only non-empty sets
    findings: list[Finding]

    def violators(self) -> list[str]:
        return sorted(self.clobbers)


def _check_function(
    cfg: ControlFlowGraph,
    span: FunctionSpan,
    clobbers: dict[str, frozenset[int]],
) -> FunctionCheck:
    solution = solve_function(cfg, FrameDomain(clobbers), span)
    return_sites: list[tuple[int, dict[int, object]]] = []
    ra_corrupt: list[int] = []
    clobbered: set[int] = set()

    def visit(i, inst, state):
        if state is None or not df.is_return(inst):
            return
        regs = state[0]
        addr = cfg.addr_of(i)
        bad: dict[int, object] = {}
        for r in CHECKED_REGS:
            expected = ("sp", 0) if r == Reg.SP else ("init", r)
            if regs[r] != expected:
                bad[r] = regs[r]
                clobbered.add(r)
        if regs[Reg.RA] != ("init", Reg.RA):
            ra_corrupt.append(addr)
        if bad:
            return_sites.append((addr, bad))

    solution.walk(visit, blocks=span.blocks)
    return FunctionCheck(
        span=span,
        solution=solution,
        return_sites=return_sites,
        clobbered=frozenset(clobbered),
        ra_corrupt_at=ra_corrupt,
    )


def analyze_conventions(cfg: ControlFlowGraph) -> ConventionAnalysis:
    """Run the bottom-up fixpoint and derive findings."""
    clobbers: dict[str, frozenset[int]] = {}
    checks: dict[str, FunctionCheck] = {}
    # optimistic fixpoint: clobber sets only grow, so iterate until no
    # function's set changes under the facts of the previous round
    for _round in range(len(cfg.functions) * len(CHECKED_REGS) + 2):
        changed = False
        for span in cfg.functions:
            check = _check_function(cfg, span, clobbers)
            checks[span.name] = check
            merged = clobbers.get(span.name, frozenset()) | check.clobbered
            if merged != clobbers.get(span.name, frozenset()):
                clobbers[span.name] = merged
                changed = True
        if not changed:
            break

    findings: list[Finding] = []
    for name in sorted(checks):
        check = checks[name]
        for addr, bad in check.return_sites:
            saved = sorted(r for r in bad if r != Reg.SP)
            if saved:
                what = ", ".join(
                    f"{reg_name(r)} = {render(bad[r])}" for r in saved
                )
                plural = "s" if len(saved) > 1 else ""
                findings.append(Finding(
                    "SAN101", SEVERITY_ERROR, addr, name,
                    f"`{name}` returns with callee-saved register{plural} "
                    f"not restored: {what}",
                    hint="save the register in the prologue and reload it "
                         "before `jr $ra` (MIPS O32 requires callees to "
                         "preserve $s0-$s7/$fp/$gp)",
                ))
            if Reg.SP in bad:
                findings.append(Finding(
                    "SAN102", SEVERITY_ERROR, addr, name,
                    f"`{name}` returns with $sp = {render(bad[Reg.SP])} "
                    "instead of its entry value",
                    hint="pop exactly the bytes the prologue pushed "
                         "(or reload the saved $sp for variable frames)",
                ))
        for addr in check.ra_corrupt_at:
            findings.append(Finding(
                "SAN103", SEVERITY_ERROR, addr, name,
                f"`{name}` returns through a corrupted $ra (not the "
                "caller's return address)",
                hint="save $ra before any call and restore it before "
                     "`jr $ra`",
            ))
    clobbers = {name: regs for name, regs in clobbers.items() if regs}
    return ConventionAnalysis(
        cfg=cfg, checks=checks, clobbers=clobbers, findings=findings,
    )


def convention_clobbers(program) -> dict[str, frozenset[int]]:
    """The convention facts alone (for ``repro lint``): function name ->
    callee-saved registers it fails to preserve. Empty when the whole
    program is convention-clean."""
    from repro.analysis.absint import build_cfg

    return analyze_conventions(build_cfg(program)).clobbers
