"""Data-section bounds checker (SAN301, SAN302).

Uses the whole-program known-bits fixpoint: any memory site whose
effective address is a *compile-time constant* (fully known bits) is
checked against the linked program's memory map — initialised data
spans, zero-initialised (bss) spans, every sized data symbol, the
gp-addressable global region recorded in
:class:`~repro.isa.program.LinkFacts`, and the heap/stack window
``[brk, stack_top)``.

* **SAN301** — the address lies in no mapped region at all (null-page
  dereferences, stray absolute addresses, accesses into linker gaps).
* **SAN302** — the address lands inside a sized symbol but the access
  width runs past the symbol's end (classic off-by-one on the last
  element).

Sites whose address is data-dependent are out of scope by construction:
a sound static claim is only possible when the address is provable, and
the dynamic cross-checks in tests/analysis/ verify that no flagged site
is ever executed cleanly.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.analysis.absint import knownbits as kb
from repro.analysis.absint.solver import Solution
from repro.analysis.sanitize.report import SEVERITY_ERROR, Finding
from repro.isa.disassembler import disassemble
from repro.isa.opcodes import OP_INFO
from repro.isa.program import Program
from repro.mem.layout import STACK_TOP

MASK32 = 0xFFFFFFFF


def _data_spans(program: Program) -> list[tuple[int, int]]:
    """Sorted, merged ``[start, end)`` spans of mapped data memory."""
    spans: list[tuple[int, int]] = []
    for address, payload in program.data_image:
        spans.append((address, address + len(payload)))
    for address, size in program.bss_spans:
        spans.append((address, address + size))
    for symbol in program.symbols.values():
        if symbol.section != "text" and symbol.size > 0:
            spans.append((symbol.address, symbol.address + symbol.size))
    facts = program.link_facts
    if facts is not None and facts.gp_region_size:
        spans.append((facts.gp_region_base,
                      facts.gp_region_base + facts.gp_region_size))
    stack_top = STACK_TOP
    if facts is not None and getattr(facts, "stack_top", 0):
        stack_top = facts.stack_top
    spans.append((program.brk, stack_top))
    spans.sort()
    merged: list[tuple[int, int]] = []
    for start, end in spans:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _covered(spans, start: int, end: int) -> bool:
    pos = bisect_right(spans, (start, 0x200000000)) - 1
    return pos >= 0 and spans[pos][0] <= start and end <= spans[pos][1]


def _symbol_overrun(program: Program, ea: int, width: int):
    for symbol in program.symbols.values():
        if symbol.section == "text" or symbol.size <= 0:
            continue
        if symbol.address <= ea < symbol.address + symbol.size \
                and ea + width > symbol.address + symbol.size:
            return symbol
    return None


def check_bounds(program: Program, solution: Solution) -> list[Finding]:
    spans = _data_spans(program)
    cfg = solution.cfg
    findings: list[Finding] = []

    def visit(i, inst, state):
        info = OP_INFO[inst.op]
        if state is None or not info.mem_width:
            return
        base = state[inst.rs]
        if not kb.is_const(base):
            return
        if info.mem_mode == "c":
            ea = (base[1] + inst.imm) & MASK32
        elif info.mem_mode == "x":
            index = state[inst.rx]
            if not kb.is_const(index):
                return
            ea = (base[1] + index[1]) & MASK32
        else:  # post-increment: address is the raw base
            ea = base[1]
        width = info.mem_width
        addr = cfg.addr_of(i)
        what = disassemble(inst)
        function = cfg.function_of(addr)
        if not _covered(spans, ea, ea + width):
            overrun = _symbol_overrun(program, ea, width)
            if overrun is not None:
                findings.append(Finding(
                    "SAN302", SEVERITY_ERROR, addr, function,
                    f"`{what}` reads {width} bytes at 0x{ea:08x}, running "
                    f"{ea + width - overrun.address - overrun.size} bytes "
                    f"past the end of `{overrun.name}` "
                    f"({overrun.size} bytes at 0x{overrun.address:08x})",
                    hint="check the index bound: the last element ends at "
                         f"0x{overrun.address + overrun.size:08x}",
                ))
            else:
                findings.append(Finding(
                    "SAN301", SEVERITY_ERROR, addr, function,
                    f"`{what}` accesses 0x{ea:08x}, which is outside "
                    "every mapped data region of the linked program",
                    hint="the address is a link-time constant; fix the "
                         "symbol reference or the offset arithmetic",
                ))

    solution.walk(visit)
    return findings
