"""Stack-discipline checker (SAN201, SAN202).

Rides the per-function symbolic solutions computed by the convention
checker:

* **SAN201** — a memory access whose effective address is provably
  *below* the current stack pointer. Data there is dead: any interrupt,
  signal, or (in this simulator) syscall boundary may clobber it, and
  the O32 ABI forbids relying on it.
* **SAN202** — a load from the function's own frame at an offset no
  instruction in the function ever stores to. The "ever" is function-
  global and flow-insensitive on purpose: path-sensitive must-write
  tracking would flag loop-carried slots that are in fact initialised,
  and a slot *no* instruction writes is the unambiguous bug worth
  reporting. Reads of the caller's frame (non-negative entry-``$sp``
  offsets — incoming stack arguments) are exempt, and the check is
  suppressed entirely when a frame address escapes the function (passed
  to a call or syscall, or stored to memory), since the callee may then
  legitimately initialise frame slots on our behalf.
"""

from __future__ import annotations

from repro.analysis.sanitize.convention import ConventionAnalysis
from repro.analysis.sanitize.frame import frame_slot, is_sp_relative
from repro.analysis.sanitize.report import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
)
from repro.isa.disassembler import disassemble
from repro.isa.opcodes import OP_INFO, Op
from repro.isa.registers import Reg

_ARG_REGS = (Reg.A0, Reg.A1, Reg.A2, Reg.A3)


def check_stack(conv: ConventionAnalysis) -> list[Finding]:
    findings: list[Finding] = []
    cfg = conv.cfg
    for name in sorted(conv.checks):
        check = conv.checks[name]
        findings.extend(_check_function(cfg, name, check))
    return findings


def _check_function(cfg, name, check) -> list[Finding]:
    span = check.span
    solution = check.solution

    # pass 1: every frame slot any instruction writes, plus escapes
    written: set = set()
    escaped = False

    def collect(i, inst, state):
        nonlocal escaped
        if state is None:
            return
        regs = state[0]
        op = inst.op
        info = OP_INFO[op]
        if op is Op.JAL or op is Op.JALR or op is Op.SYSCALL:
            if any(is_sp_relative(regs[r]) for r in _ARG_REGS):
                escaped = True
        elif info.mem_width and info.is_store:
            # post-increment accesses the raw base (offset applies after)
            slot = frame_slot(regs[inst.rs],
                              0 if info.mem_mode == "p" else inst.imm)
            if slot is not None:
                written.add(slot)
                if info.mem_width == 8:
                    written.add((slot[0], slot[1] + 4))
            if (not info.mem_fp and is_sp_relative(regs[inst.rt])):
                escaped = True  # a frame address written to memory

    solution.walk(collect, blocks=span.blocks)

    # pass 2: per-site checks against the pre-instruction state
    findings: list[Finding] = []

    def visit(i, inst, state):
        info = OP_INFO[inst.op]
        if state is None or not info.mem_width or info.mem_mode == "x":
            return
        regs = state[0]
        base = regs[inst.rs]
        if not is_sp_relative(base):
            return
        slot = frame_slot(base, 0 if info.mem_mode == "p" else inst.imm)
        region, offset = slot
        addr = cfg.addr_of(i)
        what = disassemble(inst)
        sp = regs[Reg.SP]
        sp_slot = frame_slot(sp, 0)
        if sp_slot is not None and sp_slot[0] == region \
                and offset < sp_slot[1]:
            findings.append(Finding(
                "SAN201", SEVERITY_ERROR, addr, name,
                f"`{what}` accesses {sp_slot[1] - offset} bytes below the "
                "stack pointer (dead stack memory)",
                hint="grow the frame to cover the slot, or move the "
                     "access above $sp",
            ))
            return
        if escaped or info.is_store:
            return
        if region == "sp" and offset >= 0:
            return  # caller frame: incoming stack argument
        if slot not in written and (region, offset & ~3) not in written:
            findings.append(Finding(
                "SAN202", SEVERITY_WARNING, addr, name,
                f"`{what}` reads a frame slot "
                f"({_render_region(region)}{offset:+d}) that no "
                f"instruction in `{name}` ever writes",
                hint="initialise the slot before reading it (the load "
                     "observes whatever the previous frame left there)",
            ))

    solution.walk(visit, blocks=span.blocks)
    return findings


def _render_region(region) -> str:
    if region == "sp":
        return "entry-sp"
    return f"aligned-sp@{region[1]:#x}"
