"""Trace-level prediction-failure accounting (Tables 3 and 4).

One functional pass per program collects, simultaneously:

* Table 1 reference behaviour (via :class:`ReferenceProfile`),
* prediction failure rates for loads and stores at 16- and 32-byte block
  sizes ("the prediction circuitry performs 4 or 5 bits of full addition
  in the block offset portion"),
* the same rates excluding register+register-mode accesses (Table 4's
  "No R+R" columns),
* I- and D-cache miss ratios and TLB behaviour for the Table 3/4 columns.

This is much faster than the full timing model and is exactly what the
paper's Tables 3 and 4 report (the timing-dependent columns -- cycles --
come from :mod:`repro.pipeline`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.refclass import ReferenceProfile
from repro.cache.cache import Cache, CacheConfig
from repro.cache.tlb import TLB
from repro.cpu.executor import CPU, TraceRecord
from repro.fac.config import FacConfig
from repro.fac.predictor import FastAddressCalculator
from repro.isa.opcodes import OP_INFO
from repro.isa.program import Program
from repro.utils.bits import to_signed32


@dataclass
class PredictionStats:
    """Failure counts for one predictor geometry."""

    block_size: int = 32
    loads: int = 0
    stores: int = 0
    load_failures: int = 0
    store_failures: int = 0
    # excluding register+register mode accesses
    norr_loads: int = 0
    norr_stores: int = 0
    norr_load_failures: int = 0
    norr_store_failures: int = 0
    # which verification signal fired (a failure can raise several)
    signal_counts: dict = field(default_factory=lambda: {
        "overflow": 0, "gen_carry": 0, "large_neg_const": 0,
        "neg_index_reg": 0, "tag_mismatch": 0,
    })

    @property
    def load_failure_rate(self) -> float:
        return self.load_failures / self.loads if self.loads else 0.0

    @property
    def store_failure_rate(self) -> float:
        return self.store_failures / self.stores if self.stores else 0.0

    @property
    def norr_load_failure_rate(self) -> float:
        return self.norr_load_failures / self.norr_loads if self.norr_loads else 0.0

    @property
    def norr_store_failure_rate(self) -> float:
        return self.norr_store_failures / self.norr_stores if self.norr_stores else 0.0

    @property
    def overall_failure_rate(self) -> float:
        total = self.loads + self.stores
        failed = self.load_failures + self.store_failures
        return failed / total if total else 0.0


@dataclass
class TraceAnalysis:
    """Everything one functional pass produces."""

    profile: ReferenceProfile
    predictions: dict[int, PredictionStats]  # keyed by block size
    icache_miss_ratio: float = 0.0
    dcache_miss_ratio: float = 0.0
    tlb_miss_ratio: float = 0.0
    memory_usage: int = 0
    instructions: int = 0
    stdout: str = ""
    # {block_size: {pc: [accesses, failures]}} when per-PC tracking is on
    per_pc: dict[int, dict[int, list[int]]] | None = None


class TraceAnalyzer:
    """Single-pass trace analyzer."""

    def __init__(self, block_sizes: tuple[int, ...] = (16, 32),
                 cache_size: int = 16 * 1024, full_tag_add: bool = True,
                 per_pc: bool = False):
        self.profile = ReferenceProfile()
        # optional {block_size: {pc: [accesses, failures]}} tracking, used
        # by the static-analysis soundness checks (repro.analysis.static_fac)
        self.per_pc: dict[int, dict[int, list[int]]] | None = (
            {bs: {} for bs in block_sizes} if per_pc else None
        )
        self.predictors = {
            bs: FastAddressCalculator(
                FacConfig(cache_size=cache_size, block_size=bs,
                          full_tag_add=full_tag_add)
            )
            for bs in block_sizes
        }
        self.stats = {bs: PredictionStats(block_size=bs) for bs in block_sizes}
        self.icache = Cache(CacheConfig(size=16 * 1024, block_size=32,
                                        name="icache"))
        self.dcache = Cache(CacheConfig(size=16 * 1024, block_size=32,
                                        name="dcache"))
        self.tlb = TLB()
        self._last_iblock = -1

    def observe(self, rec: TraceRecord) -> None:
        self.profile.observe(rec)
        iblock = rec.pc >> 5
        if iblock != self._last_iblock:
            self._last_iblock = iblock
            self.icache.access(rec.pc)
        inst = rec.inst
        info = OP_INFO[inst.op]
        if not info.mem_width:
            return
        self.dcache.access(rec.ea, info.is_store)
        self.tlb.access(rec.ea)
        mode = info.mem_mode
        if mode == "p":
            failed = False  # address needs no addition: always correct
            offset = 0
        else:
            offset = rec.offset_value if mode == "c" \
                else to_signed32(rec.offset_value)
        for block_size, predictor in self.predictors.items():
            stats = self.stats[block_size]
            if mode == "p":
                failed = False
            else:
                # allocation-free verdict first; only failures (rare)
                # materialize the Prediction for its signal breakdown
                failed = predictor.fails(rec.base_value, offset, mode == "x")
                if failed:
                    signals = predictor.predict(
                        rec.base_value, offset, mode == "x"
                    ).signals
                    counts = stats.signal_counts
                    counts["overflow"] += signals.overflow
                    counts["gen_carry"] += signals.gen_carry
                    counts["large_neg_const"] += signals.large_neg_const
                    counts["neg_index_reg"] += signals.neg_index_reg
                    counts["tag_mismatch"] += signals.tag_mismatch
            if self.per_pc is not None:
                entry = self.per_pc[block_size].setdefault(rec.pc, [0, 0])
                entry[0] += 1
                entry[1] += failed
            if info.is_load:
                stats.loads += 1
                stats.load_failures += failed
                if mode != "x":
                    stats.norr_loads += 1
                    stats.norr_load_failures += failed
            else:
                stats.stores += 1
                stats.store_failures += failed
                if mode != "x":
                    stats.norr_stores += 1
                    stats.norr_store_failures += failed

    # ------------------------------------------------------------------ #
    # streaming trace protocol (CPU.run_trace / tracefile.replay_into)

    trace_mem = observe
    trace_branch = observe

    def trace_plain(self, pc, inst) -> None:
        """Record-free fast lane: for a non-memory, non-branch
        instruction :meth:`observe` only counts it and probes the
        icache model."""
        self.profile.instructions += 1
        iblock = pc >> 5
        if iblock != self._last_iblock:
            self._last_iblock = iblock
            self.icache.access(pc)

    def finish(self, cpu: CPU) -> TraceAnalysis:
        return self.result(memory_usage=cpu.memory_usage,
                           instructions=cpu.instructions_retired,
                           stdout=cpu.stdout())

    def result(self, memory_usage: int = 0, instructions: int | None = None,
               stdout: str = "") -> TraceAnalysis:
        """Finish without a live CPU (trace-replay path): the functional
        facts a trace does not carry are passed in explicitly.
        ``instructions`` defaults to the observed record count."""
        return TraceAnalysis(
            profile=self.profile,
            predictions=self.stats,
            icache_miss_ratio=self.icache.miss_ratio,
            dcache_miss_ratio=self.dcache.miss_ratio,
            tlb_miss_ratio=self.tlb.miss_ratio,
            memory_usage=memory_usage,
            instructions=(self.profile.instructions
                          if instructions is None else instructions),
            stdout=stdout,
            per_pc=self.per_pc,
        )


def analyze_program(program: Program, block_sizes: tuple[int, ...] = (16, 32),
                    max_instructions: int = 50_000_000,
                    per_pc: bool = False,
                    engine: str = "predecoded") -> TraceAnalysis:
    """Run ``program`` functionally and collect the full analysis.

    ``engine="predecoded"`` streams the execution through
    :meth:`CPU.run_trace` (no per-instruction record allocation for
    non-memory, non-branch instructions); ``engine="step"`` keeps the
    legacy decode-per-step loop. Both produce identical analyses.
    """
    cpu = CPU(program)
    analyzer = TraceAnalyzer(block_sizes, per_pc=per_pc)
    if engine == "step":
        observe = analyzer.observe
        step = cpu.step
        budget = max_instructions
        while not cpu.halted and budget > 0:
            observe(step())
            budget -= 1
    else:
        cpu.run_trace(analyzer, max_instructions)
    return analyzer.finish(cpu)


def analyze_trace(program: Program, trace_path: str,
                  block_sizes: tuple[int, ...] = (16, 32),
                  per_pc: bool = False, memory_usage: int = 0,
                  stdout: str = "", engine: str = "columnar") -> TraceAnalysis:
    """Collect the full analysis from a recorded trace
    (:mod:`repro.cpu.tracefile`) instead of a live execution.

    One functional capture drives any number of analyzer geometries
    without re-interpreting the program; ``memory_usage`` and ``stdout``
    come from the trace artifact's metadata when available.

    ``engine="columnar"`` (default) decodes the trace into column
    arrays and runs the vectorized batch analyzer
    (:mod:`repro.analysis.batch`); ``engine="records"`` replays the
    stream through the scalar :class:`TraceAnalyzer` one record at a
    time. Both produce snapshot-identical analyses -- the equivalence
    suite asserts it on every benchmark -- so ``records`` exists as the
    oracle, not a fallback."""
    if engine == "columnar":
        from repro.analysis.batch import analyze_trace_columns
        from repro.cpu.coltrace import decode_tracefile

        cols = decode_tracefile(program, trace_path)
        return analyze_trace_columns(
            program, cols, block_sizes=block_sizes, per_pc=per_pc,
            memory_usage=memory_usage, stdout=stdout)
    if engine != "records":
        raise ValueError(f"unknown engine {engine!r}; "
                         "choose 'columnar' or 'records'")
    from repro.cpu.tracefile import replay_into

    analyzer = TraceAnalyzer(block_sizes, per_pc=per_pc)
    replay_into(program, trace_path, analyzer)
    return analyzer.result(memory_usage=memory_usage, stdout=stdout)
