"""Plain-text table and series rendering for the experiment harnesses."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for position, cell in enumerate(row):
            widths[position] = max(widths[position], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(
            cell.rjust(widths[i]) if _is_numeric(cell) else cell.ljust(widths[i])
            for i, cell in enumerate(row)
        ))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence[float],
                  y_format: str = "{:.3f}") -> str:
    """Render one figure series as ``name: x=y x=y ...``."""
    pairs = " ".join(f"{x}={y_format.format(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell.rstrip("%"))
        return True
    except ValueError:
        return False
