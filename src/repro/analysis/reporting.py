"""Plain-text table and series rendering for the experiment harnesses,
plus the machine-readable schemas shared by ``repro lint --json`` and
the observability layer (``repro bench --snapshot``, ``repro profile
--json`` -- see :mod:`repro.obs.metrics` and :mod:`repro.obs.profile`)."""

from __future__ import annotations

from typing import Iterable, Sequence

# Canonical metrics-snapshot schema; defined next to the registry so the
# obs layer has no analysis dependency, re-exported here because report
# producers and consumers historically import schemas from this module.
from repro.obs.metrics import SNAPSHOT_SCHEMA, SNAPSHOT_VERSION

__all__ = [
    "LINT_SCHEMA",
    "LINT_SCHEMA_VERSION",
    "SANITIZE_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "SNAPSHOT_VERSION",
    "format_series",
    "format_table",
    "validate_against_schema",
]

#: Version tag stamped into every ``repro lint --json`` payload (including
#: usage-error payloads) so consumers can dispatch on shape.
LINT_SCHEMA_VERSION = "repro.lint/1"

#: Structural schema (JSON-Schema subset) for ``repro lint --json`` output.
#: Kept here so report producers and consumers share one definition;
#: validate with :func:`validate_against_schema`.
LINT_SCHEMA = {
    "type": "object",
    "required": ["schema", "program", "geometry", "summary", "diagnostics"],
    "properties": {
        "schema": {"enum": [LINT_SCHEMA_VERSION]},
        "program": {"type": "string"},
        "geometry": {
            "type": "object",
            "required": ["cache_size", "block_size", "full_tag_add"],
            "properties": {
                "cache_size": {"type": "integer"},
                "block_size": {"type": "integer"},
                "full_tag_add": {"type": "boolean"},
            },
        },
        "summary": {
            "type": "object",
            "required": [
                "sites", "always", "never", "data_dependent",
                "unreachable", "warnings", "notes",
            ],
            "properties": {
                "sites": {"type": "integer"},
                "always": {"type": "integer"},
                "never": {"type": "integer"},
                "data_dependent": {"type": "integer"},
                "unreachable": {"type": "integer"},
                "warnings": {"type": "integer"},
                "notes": {"type": "integer"},
            },
        },
        "diagnostics": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["code", "severity", "address", "message"],
                "properties": {
                    "code": {"type": "string"},
                    "severity": {"enum": ["warning", "note"]},
                    "address": {"type": "integer"},
                    "function": {"type": ["string", "null"]},
                    "message": {"type": "string"},
                    "hint": {"type": ["string", "null"]},
                },
            },
        },
    },
}

#: Structural schema for ``repro sanitize --json`` output (the version
#: tag itself lives in :mod:`repro.analysis.sanitize.report` next to the
#: producer; checkers and codes are documented there).
SANITIZE_SCHEMA = {
    "type": "object",
    "required": ["schema", "program", "summary", "findings"],
    "properties": {
        "schema": {"enum": ["repro.sanitize/1"]},
        "program": {"type": "string"},
        "summary": {
            "type": "object",
            "required": [
                "functions", "sites", "findings", "errors", "warnings",
                "by_checker",
            ],
            "properties": {
                "functions": {"type": "integer"},
                "sites": {"type": "integer"},
                "findings": {"type": "integer"},
                "errors": {"type": "integer"},
                "warnings": {"type": "integer"},
                "by_checker": {"type": "object"},
            },
        },
        "findings": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["code", "checker", "severity", "address",
                             "message"],
                "properties": {
                    "code": {"type": "string"},
                    "checker": {"type": "string"},
                    "severity": {"enum": ["error", "warning"]},
                    "address": {"type": "integer"},
                    "function": {"type": ["string", "null"]},
                    "message": {"type": "string"},
                    "hint": {"type": ["string", "null"]},
                },
            },
        },
    },
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate_against_schema(value, schema: dict, path: str = "$") -> list[str]:
    """Check ``value`` against the JSON-Schema subset used by
    :data:`LINT_SCHEMA` (type/required/properties/items/enum). Returns a
    list of human-readable problems; empty means valid."""
    problems: list[str] = []
    if "enum" in schema:
        if value not in schema["enum"]:
            problems.append(f"{path}: {value!r} not in {schema['enum']}")
        return problems
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](value) for t in types):
            problems.append(f"{path}: expected {expected}, got "
                            f"{type(value).__name__}")
            return problems
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                problems.append(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in value:
                problems.extend(
                    validate_against_schema(value[key], subschema,
                                            f"{path}.{key}")
                )
    elif isinstance(value, list) and "items" in schema:
        for position, item in enumerate(value):
            problems.extend(
                validate_against_schema(item, schema["items"],
                                        f"{path}[{position}]")
            )
    return problems


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for position, cell in enumerate(row):
            widths[position] = max(widths[position], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(
            cell.rjust(widths[i]) if _is_numeric(cell) else cell.ljust(widths[i])
            for i, cell in enumerate(row)
        ))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence[float],
                  y_format: str = "{:.3f}") -> str:
    """Render one figure series as ``name: x=y x=y ...``."""
    pairs = " ".join(f"{x}={y_format.format(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell.rstrip("%"))
        return True
    except ValueError:
        return False
