"""Trace analyses: reference behaviour (Section 2), prediction rates,
the static FAC-predictability pass (:mod:`repro.analysis.static_fac`),
and the whole-program sanitizer (:mod:`repro.analysis.sanitize`), both
built on the abstract-interpretation framework
(:mod:`repro.analysis.absint`)."""

from repro.analysis.refclass import (
    OFFSET_BUCKETS,
    ReferenceProfile,
    classify_base,
    offset_bucket,
)
from repro.analysis.prediction import (
    PredictionStats,
    TraceAnalysis,
    TraceAnalyzer,
    analyze_program,
    analyze_trace,
)
from repro.analysis.static_fac import (
    StaticAnalysis,
    Verdict,
    analyze_static,
    check_soundness,
    lint_program,
)
from repro.analysis.sanitize import (
    SanitizeReport,
    convention_clobbers,
    sanitize_program,
)

__all__ = [
    "OFFSET_BUCKETS",
    "ReferenceProfile",
    "classify_base",
    "offset_bucket",
    "PredictionStats",
    "TraceAnalysis",
    "TraceAnalyzer",
    "analyze_program",
    "analyze_trace",
    "StaticAnalysis",
    "Verdict",
    "analyze_static",
    "check_soundness",
    "lint_program",
    "SanitizeReport",
    "convention_clobbers",
    "sanitize_program",
]
