"""Trace analyses: reference behaviour (Section 2) and prediction rates."""

from repro.analysis.refclass import (
    OFFSET_BUCKETS,
    ReferenceProfile,
    classify_base,
    offset_bucket,
)
from repro.analysis.prediction import PredictionStats, TraceAnalyzer

__all__ = [
    "OFFSET_BUCKETS",
    "ReferenceProfile",
    "classify_base",
    "offset_bucket",
    "PredictionStats",
    "TraceAnalyzer",
]
