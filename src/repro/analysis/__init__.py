"""Trace analyses: reference behaviour (Section 2), prediction rates,
and the static FAC-predictability pass (:mod:`repro.analysis.static_fac`)."""

from repro.analysis.refclass import (
    OFFSET_BUCKETS,
    ReferenceProfile,
    classify_base,
    offset_bucket,
)
from repro.analysis.prediction import (
    PredictionStats,
    TraceAnalysis,
    TraceAnalyzer,
    analyze_program,
    analyze_trace,
)
from repro.analysis.static_fac import (
    StaticAnalysis,
    Verdict,
    analyze_static,
    check_soundness,
    lint_program,
)

__all__ = [
    "OFFSET_BUCKETS",
    "ReferenceProfile",
    "classify_base",
    "offset_bucket",
    "PredictionStats",
    "TraceAnalysis",
    "TraceAnalyzer",
    "analyze_program",
    "analyze_trace",
    "StaticAnalysis",
    "Verdict",
    "analyze_static",
    "check_soundness",
    "lint_program",
]
