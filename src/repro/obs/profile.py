"""Source-level FAC profiling: the engine behind ``repro profile``.

Combines three views of one program into a per-site table:

* a **functional** pass (:func:`repro.analysis.analyze_program` with
  ``per_pc=True``) supplies exact per-PC access and prediction-failure
  counts at every requested block size -- by construction these agree
  with the Tables 3/4 numbers, and the test suite asserts it;
* a **timing** pass (:func:`repro.pipeline.simulate_program` with an
  aggregating event sink) supplies cache misses, replay cycles, and
  result latencies as the pipeline actually scheduled them;
* the **static** pass (:func:`repro.analysis.analyze_static`) supplies
  the lint verdict for each site, so hot mispredicting sites can be
  cross-checked against ``repro lint`` (an ALWAYS site with a measured
  misprediction would be a soundness bug).

The same functional pass also derives the load-use-distance histogram
(instructions between a load and the first consumer of its result) and
the registry snapshot embedded in ``to_json()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.prediction import TraceAnalysis, TraceAnalyzer
from repro.analysis.static_fac import analyze_static
from repro.cpu.executor import CPU
from repro.fac.config import FacConfig
from repro.isa.disassembler import disassemble
from repro.isa.program import Program
from repro.obs.events import EventBus, FacReplay, MemAccess
from repro.obs.metrics import Histogram, MetricsRegistry, safe_ratio
from repro.pipeline.config import MachineConfig
from repro.pipeline.deps import sources_and_dests
from repro.pipeline.pipeline import PipelineSimulator
from repro.pipeline.result import SimResult

#: Structural schema (JSON-Schema subset) for ``repro profile --json``;
#: validate with :func:`repro.analysis.reporting.validate_against_schema`.
PROFILE_SCHEMA = {
    "type": "object",
    "required": ["schema", "program", "block_sizes", "primary_block_size",
                 "summary", "sites", "metrics"],
    "properties": {
        "schema": {"type": "string"},
        "program": {"type": "string"},
        "block_sizes": {"type": "array", "items": {"type": "integer"}},
        "primary_block_size": {"type": "integer"},
        "summary": {
            "type": "object",
            "required": ["instructions", "cycles", "sites",
                         "replay_cycles", "accesses"],
            "properties": {
                "instructions": {"type": "integer"},
                "cycles": {"type": "integer"},
                "sites": {"type": "integer"},
                "replay_cycles": {"type": "integer"},
                "accesses": {"type": "integer"},
            },
        },
        "sites": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["pc", "disasm", "is_store", "accesses",
                             "failures", "prediction_rate", "misses",
                             "miss_rate", "replay_cycles", "verdict",
                             "counts"],
                "properties": {
                    "pc": {"type": "integer"},
                    "disasm": {"type": "string"},
                    "source": {"type": ["string", "null"]},
                    "function": {"type": ["string", "null"]},
                    "is_store": {"type": "boolean"},
                    "accesses": {"type": "integer"},
                    "failures": {"type": "integer"},
                    "prediction_rate": {"type": "number"},
                    "misses": {"type": "integer"},
                    "miss_rate": {"type": "number"},
                    "replay_cycles": {"type": "integer"},
                    "verdict": {"type": ["string", "null"]},
                    "counts": {"type": "object"},
                },
            },
        },
        "metrics": {"type": "object"},
    },
}


class ProfileSink:
    """Aggregating sink for the timing pass: per-PC cache/replay stats.

    Keeps O(sites) state instead of O(events), so profiling long runs
    stays cheap.
    """

    __slots__ = ("accesses", "misses", "replays", "replay_cycles",
                 "load_latency")

    def __init__(self):
        self.accesses: dict[int, int] = {}
        self.misses: dict[int, int] = {}
        self.replays: dict[int, int] = {}
        self.replay_cycles: dict[int, int] = {}
        self.load_latency = Histogram("profile.load_latency")

    def handle(self, event) -> None:
        if isinstance(event, MemAccess):
            pc = event.pc
            self.accesses[pc] = self.accesses.get(pc, 0) + 1
            if not event.hit:
                self.misses[pc] = self.misses.get(pc, 0) + 1
            if not event.is_store:
                self.load_latency.record(event.result_ready - event.cycle)
        elif isinstance(event, FacReplay):
            pc = event.pc
            self.replays[pc] = self.replays.get(pc, 0) + 1
            self.replay_cycles[pc] = \
                self.replay_cycles.get(pc, 0) + event.penalty


@dataclass
class SiteProfile:
    """One static load/store site, with everything the profiler knows."""

    pc: int
    disasm: str
    source: str | None          # "file:line" from Program.line_table
    function: str | None        # enclosing symbol, from the static pass
    is_store: bool
    accesses: int               # functional count at the primary geometry
    failures: int               # prediction failures, same pass
    misses: int                 # timing-pass dcache misses
    timing_accesses: int        # timing-pass accesses (policy-filtered)
    replays: int                # timing-pass MEM replays
    replay_cycles: int          # cycles lost to those replays
    verdict: str | None         # static lint verdict ('always', ...)
    # {block_size: (accesses, failures)} across every requested geometry
    counts: dict[int, tuple[int, int]] = field(default_factory=dict)

    @property
    def failure_rate(self) -> float:
        return safe_ratio(self.failures, self.accesses)

    @property
    def prediction_rate(self) -> float:
        return 1.0 - self.failure_rate

    @property
    def miss_rate(self) -> float:
        return safe_ratio(self.misses, self.timing_accesses)


@dataclass
class ProfileResult:
    """Output of :func:`profile_program`."""

    program_name: str
    block_sizes: tuple[int, ...]
    primary_block_size: int
    sites: list[SiteProfile]
    sim: SimResult
    analysis: TraceAnalysis
    registry: MetricsRegistry

    @property
    def replay_cycles(self) -> int:
        return sum(site.replay_cycles for site in self.sites)

    #: ``--sort`` orders. Every key ends in ``s.pc`` so ties (including
    #: all-zero columns) break deterministically by address.
    SORT_KEYS = {
        "replays": lambda s: (-s.replay_cycles, -s.accesses, s.pc),
        "misses": lambda s: (-s.misses, -s.accesses, s.pc),
        "predict_rate": lambda s: (s.prediction_rate, -s.accesses, s.pc),
    }

    def hottest(self, top: int | None = None,
                sort: str = "replays") -> list[SiteProfile]:
        """Sites ranked by ``sort`` -- replay cost (default), dcache
        misses, or worst prediction rate first -- tie-broken by pc."""
        try:
            key = self.SORT_KEYS[sort]
        except KeyError:
            raise ValueError(
                f"unknown sort {sort!r}; choose from "
                f"{sorted(self.SORT_KEYS)}") from None
        ranked = sorted(self.sites, key=key)
        return ranked[:top] if top else ranked

    def to_json(self, top: int | None = None,
                sort: str = "replays") -> dict:
        sites = [
            {
                "pc": site.pc,
                "disasm": site.disasm,
                "source": site.source,
                "function": site.function,
                "is_store": site.is_store,
                "accesses": site.accesses,
                "failures": site.failures,
                "prediction_rate": round(site.prediction_rate, 6),
                "misses": site.misses,
                "miss_rate": round(site.miss_rate, 6),
                "replay_cycles": site.replay_cycles,
                "verdict": site.verdict,
                "counts": {
                    str(bs): list(pair)
                    for bs, pair in sorted(site.counts.items())
                },
            }
            for site in self.hottest(top, sort)
        ]
        return {
            "schema": "repro.profile/1",
            "program": self.program_name,
            "block_sizes": list(self.block_sizes),
            "primary_block_size": self.primary_block_size,
            "summary": {
                "instructions": self.analysis.instructions,
                "cycles": self.sim.cycles,
                "sites": len(self.sites),
                "replay_cycles": self.replay_cycles,
                "accesses": sum(site.accesses for site in self.sites),
            },
            "sites": sites,
            "metrics": self.registry.snapshot(
                meta={"program": self.program_name,
                      "block_size": self.primary_block_size}
            ),
        }

    def render_text(self, top: int = 20, sort: str = "replays") -> str:
        from repro.analysis.reporting import format_table

        rows = []
        for site in self.hottest(top, sort):
            rows.append((
                f"0x{site.pc:08x}",
                site.disasm,
                site.source or "?",
                site.accesses,
                f"{100 * site.prediction_rate:.1f}%",
                f"{100 * site.miss_rate:.1f}%",
                site.replay_cycles,
                site.verdict or "?",
            ))
        header = (f"{self.program_name}: {self.analysis.instructions} "
                  f"instructions, {self.sim.cycles} cycles, "
                  f"{self.replay_cycles} replay cycles over "
                  f"{len(self.sites)} sites "
                  f"(block size {self.primary_block_size})")
        table = format_table(
            ("pc", "instruction", "source", "accesses", "predict",
             "miss", "replay cyc", "lint"),
            rows,
        )
        return header + "\n" + table

    def site_at(self, pc: int) -> SiteProfile | None:
        for site in self.sites:
            if site.pc == pc:
                return site
        return None


class _DistanceTracker:
    """:meth:`CPU.run_trace` consumer chaining a :class:`TraceAnalyzer`
    with the load-use distance histogram.

    Distance = retired instructions between a load and the first
    consumer of its destination register (1 = back-to-back use).
    Register dependences are static per instruction, so they are
    resolved once per text word instead of once per retirement.
    """

    def __init__(self, analyzer: TraceAnalyzer, histogram: Histogram):
        self._analyzer = analyzer
        self._record = histogram.record
        self._pending: dict[int, int] = {}  # register slot -> load index
        self._index = 0
        self._deps: dict[int, tuple] = {}   # id(inst) -> (srcs, dests, load)

    def _track(self, inst) -> None:
        deps = self._deps.get(id(inst))
        if deps is None:
            sources, dests = sources_and_dests(inst)
            deps = self._deps[id(inst)] = (sources, dests, inst.info.is_load)
        sources, dests, is_load = deps
        pending = self._pending
        index = self._index
        if pending:
            for slot in sources:
                start = pending.pop(slot, None)
                if start is not None:
                    self._record(index - start)
        if is_load:
            for slot in dests:
                pending[slot] = index
        else:
            for slot in dests:
                pending.pop(slot, None)
        self._index = index + 1

    def trace_plain(self, pc, inst) -> None:
        self._analyzer.trace_plain(pc, inst)
        self._track(inst)

    def trace_mem(self, rec) -> None:
        self._analyzer.observe(rec)
        self._track(rec.inst)

    trace_branch = trace_mem


def _load_use_distances(program: Program, analyzer: TraceAnalyzer,
                        histogram: Histogram,
                        max_instructions: int) -> CPU:
    """One functional pass feeding ``analyzer`` and the distance histogram."""
    cpu = CPU(program)
    cpu.run_trace(_DistanceTracker(analyzer, histogram), max_instructions)
    return cpu


def _functional_pass_columnar(program: Program,
                              block_sizes: tuple[int, ...],
                              cache_size: int, distances: Histogram,
                              max_instructions: int) -> TraceAnalysis:
    """Columnar twin of the scalar functional pass: record the trace
    once (keeping the CPU for memory usage / stdout), decode it into
    columns, and run the vectorized analyzer and load-use kernel.
    Produces the same analysis and histogram as the scalar pass."""
    import os
    import tempfile

    from repro.analysis.batch import analyze_trace_columns, load_use_distances
    from repro.cpu.coltrace import decode_tracefile
    from repro.cpu.tracefile import record_trace

    handle, path = tempfile.mkstemp(suffix=".fact.gz", prefix="repro-prof-")
    os.close(handle)
    try:
        cpu = CPU(program)
        record_trace(program, path, max_instructions, cpu=cpu)
        cols = decode_tracefile(program, path)
    finally:
        os.unlink(path)
    analysis = analyze_trace_columns(
        program, cols, block_sizes=block_sizes, cache_size=cache_size,
        per_pc=True, memory_usage=cpu.memory_usage, stdout=cpu.stdout())
    load_use_distances(program, cols, distances)
    return analysis


def profile_program(
    program: Program,
    name: str = "program",
    block_sizes: tuple[int, ...] = (16, 32),
    primary_block_size: int = 32,
    cache_size: int = 16 * 1024,
    max_instructions: int = 50_000_000,
    engine: str = "columnar",
) -> ProfileResult:
    """Profile every load/store site of ``program``. See module docstring.

    ``engine`` selects the functional pass: ``"columnar"`` (default)
    records + decodes the trace and runs the vectorized batch analyzer,
    ``"records"`` streams execution through the scalar
    :class:`TraceAnalyzer`. Identical results either way (the profiler
    equivalence test asserts it); the timing and static passes are
    engine-independent.
    """
    if primary_block_size not in block_sizes:
        block_sizes = tuple(sorted(set(block_sizes) | {primary_block_size}))
    if engine not in ("columnar", "records"):
        raise ValueError(f"unknown engine {engine!r}; "
                         "choose 'columnar' or 'records'")

    # 1. functional pass: exact per-PC prediction counts + load-use hist
    registry = MetricsRegistry()
    distances = registry.histogram("profile.load_use_distance")
    if engine == "columnar":
        analysis = _functional_pass_columnar(
            program, block_sizes, cache_size, distances, max_instructions)
    else:
        analyzer = TraceAnalyzer(block_sizes, cache_size=cache_size,
                                 per_pc=True)
        cpu = _load_use_distances(program, analyzer, distances,
                                  max_instructions)
        analysis = analyzer.finish(cpu)

    # 2. timing pass: replay cycles, dcache misses, latency distribution
    sink = ProfileSink()
    bus = EventBus([sink])
    fac = FacConfig(cache_size=cache_size, block_size=primary_block_size)
    sim_cpu = CPU(program)
    pipe = PipelineSimulator(MachineConfig(fac=fac), obs=bus)
    # the attached observer makes the pipeline's plain-instruction fast
    # lane defer to full feed(), so the event stream is unchanged
    sim_cpu.run_trace(pipe, max_instructions)
    sim = pipe.finalize(memory_usage=sim_cpu.memory_usage)

    # 3. static pass: lint verdict per site
    static = analyze_static(program, fac)

    # ---- join the three views, one row per functionally-touched site
    per_pc = analysis.per_pc or {}
    primary = per_pc.get(primary_block_size, {})
    replay_hist = registry.histogram("profile.replay_cycles")
    sites = []
    for pc in sorted(primary):
        accesses, failures = primary[pc]
        site_report = static.by_addr.get(pc)
        source = program.source_of(pc)
        replay_cycles = sink.replay_cycles.get(pc, 0)
        if replay_cycles:
            replay_hist.record(replay_cycles)
        sites.append(SiteProfile(
            pc=pc,
            disasm=disassemble(program.instruction_at(pc)),
            source=f"{source[0]}:{source[1]}" if source else None,
            function=site_report.function if site_report else None,
            is_store=program.instruction_at(pc).info.is_store,
            accesses=accesses,
            failures=failures,
            misses=sink.misses.get(pc, 0),
            timing_accesses=sink.accesses.get(pc, 0),
            replays=sink.replays.get(pc, 0),
            replay_cycles=replay_cycles,
            verdict=site_report.verdict.value if site_report else None,
            counts={bs: tuple(counts.get(pc, [0, 0]))
                    for bs, counts in per_pc.items()},
        ))

    registry.histogram("profile.load_latency").merge(sink.load_latency)
    sim.to_registry(registry, prefix="sim")
    return ProfileResult(
        program_name=name,
        block_sizes=tuple(block_sizes),
        primary_block_size=primary_block_size,
        sites=sites,
        sim=sim,
        analysis=analysis,
        registry=registry,
    )
