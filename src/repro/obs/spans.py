"""Hierarchical spans: causally-linked timing on top of the event bus.

A :class:`SpanTracker` hands out integer span ids, records monotonic
start/end timestamps, and keeps the parent link that turns a flat event
stream into a tree -- sweep -> cell -> build/trace/analysis job -> store
get/put. Producers that already hold an :class:`~repro.obs.events.EventBus`
can pass it in; every ``start``/``end`` is then mirrored as a
``span.start`` / ``span.end`` event for live sinks (``repro farm top``,
JSONL logs) while the tracker itself keeps the authoritative record the
run ledger persists (:mod:`repro.farm.ledger`).

Spans cross process boundaries by value: a worker builds its own tracker
(no bus), wraps its work in spans, and ships ``export()`` -- a list of
plain dicts -- back over the result queue. The parent then calls
:meth:`SpanTracker.adopt` to splice those records under the job's span,
remapping ids so they stay unique within the run. On Linux
``time.monotonic`` shares one boot-time base across processes, so child
timestamps land directly on the parent's axis.

The clock is injectable for deterministic tests; nothing here reads the
wall clock.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.events import SpanEnded, SpanStarted

#: ``status`` of a span that was still open when the tracker exported.
OPEN = "open"

#: Sentinel parent for :meth:`SpanTracker.span`: nest under the
#: innermost open ``span()`` block (or become a root if there is none).
CURRENT = object()


@dataclass
class Span:
    """One span: a named interval with a parent link and attributes."""

    span_id: int
    parent_id: int | None
    name: str
    cat: str
    t0: float
    t1: float | None = None
    status: str = OPEN
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    def as_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "cat": self.cat,
            "t0": self.t0,
            "t1": self.t1,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        return cls(
            span_id=record["span_id"], parent_id=record["parent_id"],
            name=record["name"], cat=record["cat"], t0=record["t0"],
            t1=record["t1"], status=record["status"],
            attrs=dict(record.get("attrs") or {}),
        )


class SpanTracker:
    """Issues, times, and retains spans for one run.

    ``obs`` is an optional :class:`~repro.obs.events.EventBus`; when set,
    every start/end is mirrored as a live event. ``clock`` defaults to
    ``time.monotonic`` and is injectable for tests.
    """

    def __init__(self, obs=None, clock=time.monotonic):
        self.obs = obs
        self.clock = clock
        self._next_id = 1
        self.spans: dict[int, Span] = {}
        self._stack: list[int] = []     # open span() blocks, innermost last

    # -------------------------------------------------------------- #
    # recording

    def start(self, name: str, parent: int | None = None,
              cat: str = "span", attrs: dict | None = None) -> int:
        span_id = self._next_id
        self._next_id += 1
        span = Span(span_id=span_id, parent_id=parent, name=name, cat=cat,
                    t0=self.clock(), attrs=dict(attrs or {}))
        self.spans[span_id] = span
        if self.obs is not None:
            self.obs.emit(SpanStarted(span_id=span_id, parent_id=parent,
                                      name=name, cat=cat, t0=span.t0))
        return span_id

    def end(self, span_id: int, status: str = "ok",
            attrs: dict | None = None) -> Span:
        span = self.spans[span_id]
        if span.t1 is None:
            span.t1 = self.clock()
            span.status = status
        if attrs:
            span.attrs.update(attrs)
        if self.obs is not None:
            self.obs.emit(SpanEnded(span_id=span_id, name=span.name,
                                    t1=span.t1, status=span.status))
        return span

    def annotate(self, span_id: int, attrs: dict) -> None:
        self.spans[span_id].attrs.update(attrs)

    @contextmanager
    def span(self, name: str, parent=CURRENT,
             cat: str = "span", attrs: dict | None = None):
        """``with tracker.span("build") as sid:`` -- ends on exit, with
        ``status='error'`` when the body raised.

        With the default ``parent=CURRENT`` the span nests under the
        innermost enclosing ``span()`` block, so instrumented callees
        (e.g. the artifact store's get/put timing) land in the right
        place without explicit parent plumbing. Pass ``parent=None`` to
        force a root, or an id for an explicit parent.
        """
        if parent is CURRENT:
            parent = self._stack[-1] if self._stack else None
        span_id = self.start(name, parent=parent, cat=cat, attrs=attrs)
        self._stack.append(span_id)
        try:
            yield span_id
        except BaseException:
            self.end(span_id, status="error")
            raise
        else:
            self.end(span_id, status="ok")
        finally:
            self._stack.remove(span_id)

    # -------------------------------------------------------------- #
    # cross-process splicing

    def export(self) -> list[dict]:
        """Plain-dict snapshot of every span, in id (creation) order.

        Open spans export with ``t1=None`` / ``status='open'``; the
        consumer (ledger, Chrome export) decides how to terminate them.
        """
        return [self.spans[sid].as_dict() for sid in sorted(self.spans)]

    def adopt(self, records: list[dict],
              parent: int | None = None) -> dict[int, int]:
        """Splice exported spans from another tracker under ``parent``.

        Ids are remapped into this tracker's sequence (preserving the
        internal parent links); records whose parent is not in the batch
        are attached to ``parent``. Returns the old-id -> new-id map.
        """
        mapping: dict[int, int] = {}
        for record in records:
            mapping[record["span_id"]] = self._next_id
            self._next_id += 1
        for record in records:
            span = Span.from_dict(record)
            span.span_id = mapping[record["span_id"]]
            old_parent = record["parent_id"]
            span.parent_id = mapping.get(old_parent, parent) \
                if old_parent is not None else parent
            self.spans[span.span_id] = span
        return mapping


def orphan_spans(records: list[dict]) -> list[int]:
    """Ids of spans whose parent is neither None nor in the record set.

    The farm's acceptance check: a ledger with orphans lost part of its
    causal tree (a worker export that was never adopted, a job that
    never got a span).
    """
    known = {r["span_id"] for r in records}
    return sorted(r["span_id"] for r in records
                  if r["parent_id"] is not None and r["parent_id"] not in known)


def span_roots(records: list[dict]) -> list[dict]:
    """The records with no parent (normally exactly one: the sweep)."""
    return [r for r in records if r["parent_id"] is None]
