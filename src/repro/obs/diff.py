"""Snapshot diffing with per-metric gates: the engine behind
``repro diff OLD.json NEW.json [--gate gates.toml]``.

Both inputs are ``repro.metrics/1`` snapshots (a single sim, an
analysis, or a whole farm sweep merged into one registry). Metrics are
flattened to numeric leaves:

* counter   -> ``path`` = count
* ratio     -> ``path.hits``, ``path.total``, and the derived
               ``path.ratio`` (hits/total)
* histogram -> ``path.total`` (sample count) and ``path.bins``
               (distinct keys); individual bins are too noisy to gate

and each leaf is checked against the first matching gate. Gates live in
a TOML file::

    [default]
    max_rel_delta = 0.0          # strict: any change is a violation

    [[gate]]
    pattern = "*.fac.ratio"      # fnmatch over the leaf path
    max_rel_delta = 0.01         # 1% relative movement allowed
    direction = "down"           # violate only when the value drops

    [[gate]]
    pattern = "*.instructions"
    ignore = true                # never gate this leaf

``direction`` is ``"any"`` (default), ``"up"`` (only increases can
violate -- cycle counts, miss counts), or ``"down"`` (only decreases --
prediction rates, hit ratios). A leaf present on one side only is a
violation unless an ``ignore`` gate matches it. With no gate file every
leaf gets the strict default, so a byte-identical re-run diffs clean and
any drift at all fails the gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fnmatch import fnmatchcase

from repro.obs.metrics import SNAPSHOT_VERSION

_MISSING = object()


@dataclass(frozen=True)
class Gate:
    pattern: str
    max_rel_delta: float = 0.0
    direction: str = "any"          # "any" | "up" | "down"
    ignore: bool = False


@dataclass(frozen=True)
class DiffEntry:
    path: str
    old: float | None               # None: absent on that side
    new: float | None
    rel_delta: float                # 0.0 when equal; inf from-zero growth
    gate: Gate
    violation: bool

    @property
    def changed(self) -> bool:
        return self.old != self.new


@dataclass
class DiffResult:
    entries: list[DiffEntry]
    old_meta: dict
    new_meta: dict

    @property
    def violations(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.violation]

    @property
    def changed(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.changed]

    @property
    def ok(self) -> bool:
        return not self.violations


DEFAULT_GATE = Gate(pattern="*")


def load_gates(path: str) -> list[Gate]:
    """Parse a gates.toml file into an ordered gate list; the implicit
    catch-all default (from ``[default]``, or strict) goes last."""
    import tomllib

    with open(path, "rb") as handle:
        doc = tomllib.load(handle)
    gates = []
    for raw in doc.get("gate", []):
        if "pattern" not in raw:
            raise ValueError("every [[gate]] needs a pattern")
        gates.append(Gate(
            pattern=str(raw["pattern"]),
            max_rel_delta=float(raw.get("max_rel_delta", 0.0)),
            direction=str(raw.get("direction", "any")),
            ignore=bool(raw.get("ignore", False)),
        ))
    default = doc.get("default", {})
    gates.append(Gate(
        pattern="*",
        max_rel_delta=float(default.get("max_rel_delta", 0.0)),
        direction=str(default.get("direction", "any")),
        ignore=bool(default.get("ignore", False)),
    ))
    for gate in gates:
        if gate.direction not in ("any", "up", "down"):
            raise ValueError(f"gate {gate.pattern!r}: bad direction "
                             f"{gate.direction!r}")
    return gates


def flatten_snapshot(snapshot: dict) -> dict[str, float]:
    """Numeric leaves of one ``repro.metrics/1`` snapshot."""
    schema = snapshot.get("schema")
    if schema != SNAPSHOT_VERSION:
        raise ValueError(f"unsupported snapshot schema {schema!r}; "
                         f"expected {SNAPSHOT_VERSION!r}")
    flat: dict[str, float] = {}
    for path, payload in snapshot.get("metrics", {}).items():
        kind = payload.get("type")
        if kind == "counter":
            flat[path] = payload["count"]
        elif kind == "ratio":
            hits = payload["hits"]
            total = payload["total"]
            flat[path + ".hits"] = hits
            flat[path + ".total"] = total
            flat[path + ".ratio"] = hits / total if total else 0.0
        elif kind == "histogram":
            counts = payload.get("counts", {})
            flat[path + ".total"] = sum(counts.values())
            flat[path + ".bins"] = len(counts)
        else:
            raise ValueError(f"unknown metric type {kind!r} at {path!r}")
    return flat


def _match_gate(path: str, gates: list[Gate]) -> Gate:
    for gate in gates:
        if fnmatchcase(path, gate.pattern):
            return gate
    return DEFAULT_GATE


def _violates(old: float, new: float, rel: float, gate: Gate) -> bool:
    if gate.ignore:
        return False
    if new == old:
        return False
    if gate.direction == "up" and new < old:
        return False
    if gate.direction == "down" and new > old:
        return False
    return abs(rel) > gate.max_rel_delta


def diff_snapshots(old: dict, new: dict,
                   gates: list[Gate] | None = None) -> DiffResult:
    """Flatten and compare two snapshots under the gate list."""
    gates = gates if gates is not None else [DEFAULT_GATE]
    old_flat = flatten_snapshot(old)
    new_flat = flatten_snapshot(new)
    entries = []
    for path in sorted(set(old_flat) | set(new_flat)):
        a = old_flat.get(path, _MISSING)
        b = new_flat.get(path, _MISSING)
        gate = _match_gate(path, gates)
        if a is _MISSING or b is _MISSING:
            entries.append(DiffEntry(
                path=path,
                old=None if a is _MISSING else a,
                new=None if b is _MISSING else b,
                rel_delta=float("inf"),
                gate=gate,
                violation=not gate.ignore,
            ))
            continue
        if a == b:
            rel = 0.0
        elif a == 0:
            rel = float("inf")
        else:
            rel = (b - a) / abs(a)
        entries.append(DiffEntry(
            path=path, old=a, new=b, rel_delta=rel, gate=gate,
            violation=_violates(a, b, rel, gate),
        ))
    return DiffResult(entries=entries,
                      old_meta=old.get("meta", {}),
                      new_meta=new.get("meta", {}))


def load_snapshot(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


# ------------------------------------------------------------------ #
# rendering


def _fmt(value: float | None) -> str:
    if value is None:
        return "(absent)"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6f}"
    return f"{int(value)}"


def render_diff(result: DiffResult, show_all: bool = False) -> str:
    lines = []
    shown = result.entries if show_all else result.changed
    for entry in shown:
        mark = "FAIL" if entry.violation else ("  ~ " if entry.changed
                                               else "  = ")
        if entry.old is None or entry.new is None:
            delta = ""
        elif entry.rel_delta == float("inf"):
            delta = "  (from zero)"
        else:
            delta = f"  ({entry.rel_delta:+.4%})"
        lines.append(f"{mark} {entry.path}: {_fmt(entry.old)} -> "
                     f"{_fmt(entry.new)}{delta}"
                     + (f"  [gate {entry.gate.pattern} "
                        f"±{entry.gate.max_rel_delta:.2%} "
                        f"{entry.gate.direction}]"
                        if entry.violation else ""))
    n_viol = len(result.violations)
    lines.append(
        f"{len(result.entries)} metrics compared, "
        f"{len(result.changed)} changed, {n_viol} gate violation"
        + ("" if n_viol == 1 else "s")
    )
    return "\n".join(lines) + "\n"
