"""Event-stream capture: the engine behind ``repro trace``.

Runs one timing simulation with an attached sink and writes the event
stream to a file-like object, either as JSON Lines (one event per line,
in emission order) or as a Chrome trace-event JSON document loadable in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
"""

from __future__ import annotations

from repro.fac.config import FacConfig
from repro.isa.disassembler import disassemble
from repro.isa.program import Program
from repro.obs.events import EventBus
from repro.obs.sinks import ChromeTraceSink, JsonlSink
from repro.pipeline.config import MachineConfig
from repro.pipeline.pipeline import simulate_program
from repro.pipeline.result import SimResult

FORMATS = ("chrome", "jsonl")


def disasm_labels(program: Program) -> dict[int, str]:
    """pc -> disassembly text for every instruction (trace slice names)."""
    base = program.text_base
    return {
        base + index * 4: disassemble(inst)
        for index, inst in enumerate(program.instructions)
    }


def trace_program(
    program: Program,
    stream,
    fmt: str = "chrome",
    config: MachineConfig | None = None,
    max_instructions: int = 50_000_000,
) -> SimResult:
    """Simulate ``program`` on the FAC machine, streaming events to
    ``stream`` in the requested format. Returns the timing result."""
    if fmt not in FORMATS:
        raise ValueError(f"unknown trace format {fmt!r}; choose from {FORMATS}")
    if config is None:
        config = MachineConfig(fac=FacConfig())
    if fmt == "chrome":
        sink = ChromeTraceSink(stream, labels=disasm_labels(program))
    else:
        sink = JsonlSink(stream)
    bus = EventBus([sink])
    result = simulate_program(program, config,
                              max_instructions=max_instructions, obs=bus)
    bus.close()
    return result
