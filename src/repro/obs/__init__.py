"""``repro.obs`` -- the unified telemetry layer.

Three pillars:

* :mod:`repro.obs.events` -- typed structured events and the
  :class:`~repro.obs.events.EventBus` threaded through the simulator
  stack (pipeline, caches, TLB, store buffer, CPU),
* :mod:`repro.obs.metrics` -- the hierarchical metrics registry with the
  uniform ``as_dict()``/``merge()`` container protocol and versioned
  snapshots,
* :mod:`repro.obs.sinks` -- pluggable event consumers: null, in-memory,
  JSONL, and Chrome trace-event JSON (Perfetto-loadable),
* :mod:`repro.obs.spans` -- hierarchical wall-clock spans
  (:class:`~repro.obs.spans.SpanTracker`) with parent links and
  cross-process adoption; the farm threads these through every sweep.

Higher-level drivers live in submodules imported on demand (they pull in
the whole simulator stack): :mod:`repro.obs.profile` for source-level FAC
profiling (``repro profile``), :mod:`repro.obs.trace` for event-stream
capture (``repro trace``), :mod:`repro.obs.flight` for the bounded
pipeline flight recorder (``repro pipeview``), :mod:`repro.obs.explain`
for the misprediction root-cause explainer (``repro explain``),
:mod:`repro.obs.diff` for gated snapshot comparison (``repro diff``),
and :mod:`repro.obs.report` for the static HTML dashboard
(``repro report``).

The default is observability *off*: every producer takes ``obs=None``
and guards each emission with one attribute test, keeping the
un-instrumented hot path within a few percent of the pre-obs simulator
(``benchmarks/test_obs_overhead.py`` enforces the bound).
"""

from repro.obs.events import (
    EVENT_TYPES,
    BranchResolved,
    CacheAccess,
    Event,
    EventBus,
    FacPredict,
    FacReplay,
    HttpRequestServed,
    InstRetired,
    MemAccess,
    StoreBufferFullStall,
    StoreBufferInsert,
    Syscall,
    TlbAccess,
)
from repro.obs.metrics import (
    SNAPSHOT_SCHEMA,
    SNAPSHOT_VERSION,
    Counter,
    Histogram,
    MetricsRegistry,
    RatioStat,
    TimingHistogram,
    safe_ratio,
)
from repro.obs.sinks import (
    AccessLogSink,
    ChromeTraceSink,
    CollectingSink,
    JsonlSink,
    NullSink,
)
from repro.obs.spans import Span, SpanTracker, orphan_spans, span_roots

__all__ = [
    "EVENT_TYPES",
    "BranchResolved",
    "CacheAccess",
    "Event",
    "EventBus",
    "FacPredict",
    "FacReplay",
    "HttpRequestServed",
    "InstRetired",
    "MemAccess",
    "StoreBufferFullStall",
    "StoreBufferInsert",
    "Syscall",
    "TlbAccess",
    "SNAPSHOT_SCHEMA",
    "SNAPSHOT_VERSION",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "RatioStat",
    "TimingHistogram",
    "safe_ratio",
    "AccessLogSink",
    "ChromeTraceSink",
    "CollectingSink",
    "JsonlSink",
    "NullSink",
    "Span",
    "SpanTracker",
    "orphan_spans",
    "span_roots",
]
