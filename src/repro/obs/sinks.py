"""Event sinks: null, collecting, JSONL, and Chrome trace-event JSON.

Sinks implement one method, ``handle(event)``, plus an optional
``close()`` called by :meth:`repro.obs.events.EventBus.close`. Output is
deterministic: events are written in emission order, dict fields in
dataclass field order, and no wall-clock values are recorded.
"""

from __future__ import annotations

import json
import threading
import time

from repro.obs.events import (
    Event,
    FacReplay,
    HttpRequestServed,
    InstRetired,
    MemAccess,
    Syscall,
)


class NullSink:
    """Discards everything. The explicit form of 'tracing off'.

    Producers given ``obs=None`` never even build event objects; a bus
    with only a NullSink pays event construction but writes nothing --
    useful for measuring instrumentation cost in isolation.
    """

    __slots__ = ()

    def handle(self, event: Event) -> None:
        pass


class CollectingSink:
    """Buffers events in memory; the workhorse for tests and profilers."""

    __slots__ = ("events",)

    def __init__(self):
        self.events: list[Event] = []

    def handle(self, event: Event) -> None:
        self.events.append(event)

    def by_kind(self, kind: str) -> list[Event]:
        return [e for e in self.events if e.kind == kind]


class JsonlSink:
    """One JSON object per line, in emission order.

    ``stream`` is any text file-like object; the sink does not close it
    (the caller owns the handle).
    """

    __slots__ = ("stream", "count")

    def __init__(self, stream):
        self.stream = stream
        self.count = 0

    def handle(self, event: Event) -> None:
        self.stream.write(json.dumps(event.as_dict(), separators=(",", ":")))
        self.stream.write("\n")
        self.count += 1


class AccessLogSink:
    """Structured JSONL access log for the serving layer.

    Handles only :class:`HttpRequestServed` events (everything else
    passes through untouched), stamping each line with a wall-clock
    ``ts`` — access logs are operational records, not deterministic
    artifacts, so the no-wall-clock rule of the other sinks does not
    apply here. Lines are flushed as written so ``tail -f`` works, and
    writes are serialized under a lock because the asyncio server may
    complete requests from multiple tasks interleaved with worker-thread
    emissions.
    """

    __slots__ = ("path", "count", "_stream", "_lock", "_clock")

    def __init__(self, path, clock=time.time):
        self.path = path
        self.count = 0
        self._stream = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self._clock = clock

    def handle(self, event: Event) -> None:
        if not isinstance(event, HttpRequestServed):
            return
        line = {"ts": round(self._clock(), 6), **event.as_dict()}
        payload = json.dumps(line, separators=(",", ":"))
        with self._lock:
            self._stream.write(payload + "\n")
            self._stream.flush()
            self.count += 1

    def close(self) -> None:
        with self._lock:
            if not self._stream.closed:
                self._stream.close()


class ChromeTraceSink:
    """Chrome trace-event JSON, loadable in Perfetto / chrome://tracing.

    Rendering model (one process, cycle == 1 microsecond):

    * each retired instruction is a complete ("X") slice on the thread
      of its issue slot, from IF (``issue - 2``) through WB,
    * FAC replays, data/instruction cache misses, and syscalls are
      instant ("i") events on dedicated threads,
    * thread names are emitted as metadata ("M") events up front.

    ``labels`` optionally maps pc -> display string (disassembly); when
    absent the mnemonic is used.
    """

    _FAC_TID = 100
    _MISS_TID = 101
    _SYSCALL_TID = 102

    def __init__(self, stream, labels: dict[int, str] | None = None):
        self.stream = stream
        self.labels = labels or {}
        self._events: list[dict] = []
        self._tids: set[int] = set()
        self._closed = False
        # explicitly registered tracks: (pid, tid) -> (name, sort_index)
        # and pid -> (name, sort_index); auto-discovered tids on pid 0
        # get default labels in _metadata()
        self._tracks: dict[tuple[int, int], tuple[str, int]] = {}
        self._processes: dict[int, tuple[str, int]] = {}
        # per-track stacks of open "B" events, so an aborted run can be
        # closed into parseable JSON (see close())
        self._open: dict[tuple[int, int], list[str]] = {}
        self._last_ts = 0

    # -------------------------------------------------------------- #
    # explicit track registration (used by FlightRecorder.to_chrome and
    # any producer that wants named, ordered tracks in Perfetto)

    def register_process(self, pid: int, name: str,
                         sort_index: int | None = None) -> None:
        self._processes[pid] = (name, pid if sort_index is None else sort_index)

    def register_track(self, pid: int, tid: int, name: str,
                       sort_index: int | None = None) -> None:
        self._tracks[(pid, tid)] = (name, tid if sort_index is None else sort_index)

    def emit_slice(self, name: str, cat: str, ts: int, dur: int,
                   pid: int, tid: int, args: dict | None = None) -> None:
        """Append one complete ("X") slice on an arbitrary track."""
        event = {
            "name": name, "cat": cat, "ph": "X",
            "ts": ts, "dur": dur, "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def emit_instant(self, name: str, cat: str, ts: int,
                     pid: int, tid: int, args: dict | None = None) -> None:
        """Append one thread-scoped instant ("i") event."""
        event = {
            "name": name, "cat": cat, "ph": "i", "s": "t",
            "ts": ts, "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def emit_begin(self, name: str, cat: str, ts: int,
                   pid: int, tid: int, args: dict | None = None) -> None:
        """Open a duration ("B") event; pair with :meth:`emit_end`.

        Unlike "X" slices, B/E pairs can be written before the end time
        is known -- the shape live producers need. Any still-open pair is
        terminated by :meth:`close`, so an aborted run yields a parseable
        trace instead of truncated JSON.
        """
        event = {
            "name": name, "cat": cat, "ph": "B",
            "ts": ts, "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = args
        self._events.append(event)
        self._open.setdefault((pid, tid), []).append(name)
        self._last_ts = max(self._last_ts, ts)

    def emit_end(self, ts: int, pid: int, tid: int,
                 args: dict | None = None) -> None:
        """Close the innermost open "B" event on ``(pid, tid)``."""
        stack = self._open.get((pid, tid))
        if not stack:
            raise ValueError(f"emit_end with no open event on "
                             f"pid={pid} tid={tid}")
        stack.pop()
        event = {"ph": "E", "ts": ts, "pid": pid, "tid": tid}
        if args:
            event["args"] = args
        self._events.append(event)
        self._last_ts = max(self._last_ts, ts)

    # -------------------------------------------------------------- #

    def handle(self, event: Event) -> None:
        if isinstance(event, InstRetired):
            start = event.issue - 2
            end = max(event.ready, event.issue + 1)
            name = self.labels.get(event.pc) or event.op
            args = {
                "pc": f"0x{event.pc:08x}",
                "issue": event.issue,
                "ready": event.ready,
            }
            if event.mem is not None:
                args["mem"] = event.mem
            self._tids.add(event.slot)
            self._events.append({
                "name": name, "cat": "pipeline", "ph": "X",
                "ts": start, "dur": end - start,
                "pid": 0, "tid": event.slot, "args": args,
            })
        elif isinstance(event, FacReplay):
            self._tids.add(self._FAC_TID)
            self._events.append({
                "name": "FAC replay", "cat": "fac", "ph": "i", "s": "t",
                "ts": event.cycle, "pid": 0, "tid": self._FAC_TID,
                "args": {"pc": f"0x{event.pc:08x}",
                         "penalty": event.penalty},
            })
        elif isinstance(event, MemAccess):
            if not event.hit:
                self._tids.add(self._MISS_TID)
                self._events.append({
                    "name": "dcache miss", "cat": "cache",
                    "ph": "i", "s": "t", "ts": event.cycle, "pid": 0,
                    "tid": self._MISS_TID,
                    "args": {"pc": f"0x{event.pc:08x}",
                             "ea": f"0x{event.ea:08x}",
                             "write": event.is_store},
                })
        elif isinstance(event, Syscall):
            self._tids.add(self._SYSCALL_TID)
            self._events.append({
                "name": f"syscall {event.name}", "cat": "os",
                "ph": "i", "s": "t", "ts": 0, "pid": 0,
                "tid": self._SYSCALL_TID,
                "args": {"pc": f"0x{event.pc:08x}",
                         "service": event.service},
            })

    # -------------------------------------------------------------- #

    def _metadata(self) -> list[dict]:
        """Process/thread naming + ordering metadata ("M") events.

        Perfetto shows bare numeric pids/tids unless a trace carries
        ``process_name`` / ``thread_name`` metadata, and orders tracks
        arbitrarily without ``*_sort_index`` -- so every track this sink
        ever touched gets all of name, process label, and sort index.
        """
        names = {
            self._FAC_TID: "FAC replays",
            self._MISS_TID: "cache misses",
            self._SYSCALL_TID: "syscalls",
        }
        processes = dict(self._processes)
        if self._tids or not processes:
            processes.setdefault(0, ("repro pipeline", 0))
        tracks = dict(self._tracks)
        for tid in self._tids:
            tracks.setdefault(
                (0, tid), (names.get(tid, f"issue slot {tid}"), tid))
        for pid, _tid in tracks:
            processes.setdefault(pid, (f"process {pid}", pid))

        meta = []
        for pid in sorted(processes):
            pname, psort = processes[pid]
            meta.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": pname},
            })
            meta.append({
                "name": "process_sort_index", "ph": "M", "pid": pid,
                "tid": 0, "args": {"sort_index": psort},
            })
        for pid, tid in sorted(tracks):
            tname, tsort = tracks[(pid, tid)]
            meta.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": tname},
            })
            meta.append({
                "name": "thread_sort_index", "ph": "M", "pid": pid,
                "tid": tid, "args": {"sort_index": tsort},
            })
        return meta

    def close(self) -> None:
        """Write the accumulated trace as one JSON document.

        Open "B" events (a run that aborted mid-sweep) are terminated
        with synthetic "E" events carrying ``incomplete: true`` at the
        last timestamp seen, so the document always parses and Perfetto
        renders the partial timeline instead of rejecting the file.
        """
        if self._closed:
            return
        self._closed = True
        for (pid, tid), stack in sorted(self._open.items()):
            while stack:
                stack.pop()
                self._events.append({
                    "ph": "E", "ts": self._last_ts, "pid": pid, "tid": tid,
                    "args": {"incomplete": True},
                })
        document = {
            "displayTimeUnit": "ms",
            "traceEvents": self._metadata() + self._events,
        }
        json.dump(document, self.stream, separators=(",", ":"))
        self.stream.write("\n")

    # Context-manager form: ``with ChromeTraceSink(stream) as sink: ...``
    # guarantees the terminating close() even when the run aborts.

    def __enter__(self) -> "ChromeTraceSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
