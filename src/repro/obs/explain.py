"""FAC misprediction root-cause explainer: the engine behind
``repro explain``.

For each memory site (optionally narrowed to ``--pc``/``--line``) the
explainer runs the program once, replaying every access through the
:class:`~repro.fac.predictor.FastAddressCalculator` twice -- the
allocation-free :meth:`fails` verdict the timing model uses, and the
full :meth:`predict` circuit with its
:class:`~repro.fac.predictor.FailureSignals` -- and cross-checks the two
against each other, against the static analyzer's verdict
(``possible``/``certain`` signal sets), and against the FAC1xx lint
diagnostics anchored at the site. The first failing access is kept as a
worked example, decoded into the tag / set-index / block-offset bit
fields of Figure 4 so the user can see *which bits* broke the carry-free
addition.

Replay cost uses the timing model's rule: a verification failure re-runs
the access in MEM, one extra cycle per failure (plus the issue-policy
shadow it casts on the following cycle, which is workload-dependent and
not attributed per-site here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.static_fac.interp import StaticAnalysis, analyze_static
from repro.analysis.static_fac.lint import Diagnostic, lint_program
from repro.cpu.executor import CPU
from repro.fac.config import FacConfig
from repro.fac.predictor import SIGNAL_LABELS, FastAddressCalculator
from repro.isa.disassembler import disassemble
from repro.isa.opcodes import OP_INFO
from repro.isa.program import Program
from repro.utils.bits import to_signed32

_MODE_NAMES = {"c": "register+constant", "x": "register+register",
               "p": "post-increment"}


def split_fields(addr: int, b: int, s: int) -> tuple[int, int, int]:
    """Decompose a 32-bit address into (tag, set-index, block-offset)."""
    return addr >> s, (addr >> b) & ((1 << (s - b)) - 1), addr & ((1 << b) - 1)


@dataclass
class FailureExample:
    """The first failing access at a site, fully decoded."""

    base: int
    offset: int
    predicted: int
    actual: int
    signals: tuple[str, ...]       # every signal that fired (attr names)
    primary: str                   # primary_reason label


@dataclass
class ExplainSite:
    """Everything known about one memory site."""

    pc: int
    disasm: str
    mode: str
    is_store: bool
    source: str | None = None
    function: str | None = None
    # dynamic
    accesses: int = 0
    speculated: int = 0            # accesses the policy allowed to speculate
    failures: int = 0
    signal_counts: dict = field(default_factory=dict)  # primary label -> n
    observed: set = field(default_factory=set)         # attr names fired
    example: FailureExample | None = None
    cross_mismatches: int = 0      # fails() vs predict().success disagreements
    # static
    static_verdict: str | None = None
    static_possible: frozenset = frozenset()
    static_certain: frozenset = frozenset()
    diagnostics: list = field(default_factory=list)
    # analytical model: {block_size: predicted miss ratio} for this
    # site's reference stream (``repro explain --sweep``)
    sweep: dict[int, float] | None = None

    @property
    def replay_cycles(self) -> int:
        return self.failures

    @property
    def consistent(self) -> bool:
        """Dynamic observations agree with ``fails()`` and the static
        analysis (observed signals within the static ``possible`` set)."""
        if self.cross_mismatches:
            return False
        if self.static_verdict is None:
            return True
        if self.static_verdict == "always" and self.failures:
            return False
        if self.static_verdict == "never" and self.speculated \
                and self.failures != self.speculated:
            return False
        return self.observed <= set(self.static_possible)

    def to_dict(self) -> dict:
        return {
            "pc": self.pc,
            "disasm": self.disasm,
            "mode": self.mode,
            "is_store": self.is_store,
            "source": self.source,
            "function": self.function,
            "accesses": self.accesses,
            "speculated": self.speculated,
            "failures": self.failures,
            "replay_cycles": self.replay_cycles,
            "signal_counts": dict(sorted(self.signal_counts.items())),
            "observed_signals": sorted(self.observed),
            "static_verdict": self.static_verdict,
            "static_possible": sorted(self.static_possible),
            "static_certain": sorted(self.static_certain),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "consistent": self.consistent,
            "sweep": None if self.sweep is None else {
                str(bs): round(ratio, 6)
                for bs, ratio in sorted(self.sweep.items())
            },
            "example": None if self.example is None else {
                "base": self.example.base,
                "offset": self.example.offset,
                "predicted": self.example.predicted,
                "actual": self.example.actual,
                "signals": list(self.example.signals),
                "primary": self.example.primary,
            },
        }


@dataclass
class ExplainReport:
    sites: list[ExplainSite]
    analysis: StaticAnalysis
    instructions: int

    def site_at(self, pc: int) -> ExplainSite | None:
        for site in self.sites:
            if site.pc == pc:
                return site
        return None


class _Collector:
    """run_trace consumer: only ``trace_mem``, everything else free."""

    def __init__(self, fac: FastAddressCalculator, want: set[int] | None,
                 collect_eas: bool = False):
        self.fac = fac
        self.want = want
        self.sites: dict[int, ExplainSite] = {}
        # per-site effective-address streams for the analytical sweep
        self.eas: dict[int, list[int]] | None = {} if collect_eas else None

    def trace_mem(self, rec) -> None:
        pc = rec.pc
        if self.want is not None and pc not in self.want:
            return
        site = self.sites.get(pc)
        info = OP_INFO[rec.inst.op]
        if site is None:
            site = ExplainSite(
                pc=pc, disasm=disassemble(rec.inst),
                mode=info.mem_mode, is_store=info.is_store,
            )
            self.sites[pc] = site
        if self.eas is not None:
            self.eas.setdefault(pc, []).append(rec.ea)
        site.accesses += 1
        mode = info.mem_mode
        if mode == "p":
            # the address IS the base register: always speculated, exact
            site.speculated += 1
            return
        fac = self.fac
        if not fac.should_speculate(mode == "x", info.is_store):
            return
        site.speculated += 1
        offset = rec.offset_value if mode == "c" \
            else to_signed32(rec.offset_value)
        failed = fac.fails(rec.base_value, offset, mode == "x")
        prediction = fac.predict(rec.base_value, offset, mode == "x")
        if prediction.success == failed:        # they must be opposites
            site.cross_mismatches += 1
        if not failed:
            return
        site.failures += 1
        signals = prediction.signals
        fired = tuple(name for name in SIGNAL_LABELS
                      if getattr(signals, name))
        site.observed.update(fired)
        primary = signals.primary_reason
        site.signal_counts[primary] = site.signal_counts.get(primary, 0) + 1
        if site.example is None:
            site.example = FailureExample(
                base=rec.base_value, offset=offset,
                predicted=prediction.predicted, actual=prediction.actual,
                signals=fired, primary=primary,
            )


# ------------------------------------------------------------------ #


def resolve_line(program: Program, filename: str, line: int) -> list[int]:
    """pcs whose source location matches ``filename:line``; the file
    matches on exact name or trailing path components."""
    out = []
    for addr, file, ln in program.line_table:
        if ln != line:
            continue
        if file == filename or file.endswith("/" + filename):
            out.append(addr)
    return out


def explain_program(
    program: Program,
    fac_config: FacConfig | None = None,
    pcs: set[int] | None = None,
    max_instructions: int = 50_000_000,
    sweep: bool = False,
) -> ExplainReport:
    """Run ``program`` and build the per-site explanation report.

    With ``sweep=True`` each site also gets predicted direct-mapped
    miss ratios across block sizes 8-128 for its own reference stream,
    from the reuse-profile model
    (:class:`repro.cache.analytical.AnalyticalCacheModel`) -- no
    per-geometry replays.
    """
    config = fac_config or FacConfig()
    fac = FastAddressCalculator(config)
    collector = _Collector(fac, pcs, collect_eas=sweep)
    cpu = CPU(program)
    retired = cpu.run_trace(collector, max_instructions)

    if sweep:
        from repro.cache.analytical import AnalyticalCacheModel

        for pc, stream in collector.eas.items():
            model = AnalyticalCacheModel(stream)
            collector.sites[pc].sweep = model.sweep(
                cache_size=config.cache_size)

    analysis = analyze_static(program, config)
    lint = lint_program(program, config, analysis=analysis)
    by_addr: dict[int, list[Diagnostic]] = {}
    for diag in lint.diagnostics:
        by_addr.setdefault(diag.address, []).append(diag)

    sites = sorted(collector.sites.values(), key=lambda s: s.pc)
    for site in sites:
        report = analysis.by_addr.get(site.pc)
        if report is not None:
            site.static_verdict = report.verdict.value
            site.static_possible = report.possible
            site.static_certain = report.certain
            site.function = report.function
        src = program.source_of(site.pc)
        if src is not None:
            site.source = f"{src[0]}:{src[1]}"
        site.diagnostics = by_addr.get(site.pc, [])
    return ExplainReport(sites=sites, analysis=analysis,
                         instructions=retired)


# ------------------------------------------------------------------ #
# rendering


def _field_row(label: str, tag: int, index: int, block: int) -> str:
    return f"    {label:<10s} tag=0x{tag:05x}  index=0x{index:03x}  " \
           f"block=0x{block:02x}"


def render_site(site: ExplainSite, fac: FastAddressCalculator) -> str:
    b, s = fac.config.b_bits, fac.config.s_bits
    lines = []
    where = site.source or ""
    if site.function:
        where += f"  ({site.function})" if where else f"({site.function})"
    header = f"0x{site.pc:08x}  {site.disasm}"
    if where:
        header += f"    [{where}]"
    lines.append(header)
    lines.append(
        f"  mode={_MODE_NAMES.get(site.mode, site.mode)}"
        f"  store={'yes' if site.is_store else 'no'}"
        f"  static={site.static_verdict or 'n/a'}"
    )
    pct = 100.0 * site.failures / site.speculated if site.speculated else 0.0
    lines.append(
        f"  dynamic: {site.accesses} accesses, {site.speculated} speculated, "
        f"{site.failures} replays ({pct:.1f}%), "
        f"replay cost {site.replay_cycles} cycles"
    )
    if site.signal_counts:
        parts = [f"{name} x{count}"
                 for name, count in sorted(site.signal_counts.items())]
        lines.append(f"  signals: {', '.join(parts)}")
    ex = site.example
    if ex is not None:
        sign = "+" if ex.offset >= 0 else ""
        lines.append(
            f"  example failure: base=0x{ex.base:08x} "
            f"offset={sign}{ex.offset} -> ea=0x{ex.actual:08x}"
        )
        lines.append(_field_row("base", *split_fields(ex.base, b, s)))
        off_bits = ex.offset & 0xFFFFFFFF
        lines.append(_field_row("offset", *split_fields(off_bits, b, s)))
        lines.append(_field_row("actual", *split_fields(ex.actual, b, s)))
        lines.append(_field_row("predicted",
                                *split_fields(ex.predicted, b, s)))
        lines.append(f"    fired: {', '.join(ex.signals)} "
                     f"(primary: {ex.primary})")
    if site.sweep:
        cells = [f"{bs}B {100.0 * ratio:.2f}%"
                 for bs, ratio in sorted(site.sweep.items())]
        lines.append(f"  predicted miss ratio (analytical model, "
                     f"{fac.config.cache_size >> 10}K direct-mapped): "
                     + "  ".join(cells))
    if site.static_possible or site.static_certain:
        lines.append(
            f"  static: possible={{{', '.join(sorted(site.static_possible))}}}"
            f" certain={{{', '.join(sorted(site.static_certain))}}}"
        )
    for diag in site.diagnostics:
        lines.append(f"  lint: {diag.code} {diag.severity}: {diag.message}")
    ok = "agree" if site.consistent else "DISAGREE"
    lines.append(
        f"  cross-check: fails() vs predict() vs static: {ok}"
        f" ({site.cross_mismatches} mismatches)"
    )
    return "\n".join(lines)


def render_report(report: ExplainReport,
                  fac: FastAddressCalculator) -> str:
    if not report.sites:
        return "no memory accesses matched\n"
    blocks = [render_site(site, fac) for site in report.sites]
    total_fail = sum(s.failures for s in report.sites)
    total_spec = sum(s.speculated for s in report.sites)
    footer = (
        f"{len(report.sites)} sites, {total_spec} speculated accesses, "
        f"{total_fail} replays, {report.instructions} instructions retired"
    )
    return "\n\n".join(blocks) + "\n\n" + footer + "\n"
