"""Hierarchical metrics registry with a uniform container protocol.

Every metric implements the same small protocol:

* ``as_dict()``  -- a JSON-serializable, self-describing dict
                    (``{"type": ..., ...}``),
* ``merge(other)`` -- absorb another instance of the same type
                    (sharded / multi-run aggregation),
* ``reset()``    -- zero the metric in place.

Four concrete metrics cover everything the simulators and the serving
layer need:

* :class:`Counter`   -- a monotonically increasing event count,
* :class:`RatioStat` -- hits over accesses (cache hit ratio,
                       prediction accuracy),
* :class:`Histogram` -- sparse integer histogram with CDF support
                       (offset sizes, replay penalties, load-use
                       distances),
* :class:`TimingHistogram` -- log-bucketed duration histogram with
                       quantile estimates (request latency, queue
                       wait); mergeable across shards like the rest.

These are the canonical definitions; :mod:`repro.utils.stats` re-exports
them for backwards compatibility.

A :class:`MetricsRegistry` names metrics hierarchically with dot-separated
paths (``"fac.replay_penalty"``) and serializes to a **versioned snapshot**
(:data:`SNAPSHOT_VERSION`); the structural schema lives in
:data:`SNAPSHOT_SCHEMA` and is shared with
:mod:`repro.analysis.reporting`. Snapshots are deterministic: paths are
sorted, histogram keys are sorted, and no wall-clock fields are emitted
unless the caller passes them explicitly in ``meta``.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable, Iterator

#: Version tag carried by every snapshot. Bump the trailing integer when
#: the snapshot structure changes incompatibly (see docs/observability.md
#: for the version policy).
SNAPSHOT_VERSION = "repro.metrics/1"

#: Structural schema (the JSON-Schema subset understood by
#: :func:`repro.analysis.reporting.validate_against_schema`) for
#: :meth:`MetricsRegistry.snapshot` output.
SNAPSHOT_SCHEMA = {
    "type": "object",
    "required": ["schema", "meta", "metrics"],
    "properties": {
        "schema": {"type": "string"},
        "meta": {"type": "object"},
        "metrics": {"type": "object"},
    },
}


def safe_ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator``, or 0.0 for an empty denominator.

    The one aggregation idiom every stats consumer used to hand-roll.
    """
    return numerator / denominator if denominator else 0.0


class Counter:
    """A named event counter with a convenient ``rate`` helper."""

    __slots__ = ("name", "count")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.count = 0

    def incr(self, amount: int = 1) -> None:
        self.count += amount

    def rate(self, total: int) -> float:
        """Return count / total, or 0.0 when ``total`` is zero."""
        return safe_ratio(self.count, total)

    def reset(self) -> None:
        self.count = 0

    def as_dict(self) -> dict:
        return {"type": self.kind, "count": self.count}

    def merge(self, other: "Counter") -> None:
        self.count += other.count

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Counter({self.name}={self.count})"


class RatioStat:
    """Hits over accesses, e.g. cache hit ratio or prediction accuracy."""

    __slots__ = ("name", "hits", "total")

    kind = "ratio"

    def __init__(self, name: str):
        self.name = name
        self.hits = 0
        self.total = 0

    def record(self, hit: bool) -> None:
        self.total += 1
        if hit:
            self.hits += 1

    @property
    def misses(self) -> int:
        return self.total - self.hits

    @property
    def hit_ratio(self) -> float:
        return safe_ratio(self.hits, self.total)

    @property
    def miss_ratio(self) -> float:
        return 1.0 - self.hit_ratio if self.total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.total = 0

    def as_dict(self) -> dict:
        return {"type": self.kind, "hits": self.hits, "total": self.total}

    def merge(self, other: "RatioStat") -> None:
        self.hits += other.hits
        self.total += other.total

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RatioStat({self.name}: {self.hits}/{self.total})"


class Histogram:
    """Sparse integer histogram with cumulative-distribution support.

    Used for the paper's Figure 3 offset-size distributions and the
    profiler's replay-penalty / load-use-distance distributions.
    """

    kind = "histogram"

    def __init__(self, name: str = ""):
        self.name = name
        self._counts: dict[int, int] = defaultdict(int)

    def record(self, key: int, amount: int = 1) -> None:
        self._counts[key] += amount

    def count(self, key: int) -> int:
        return self._counts.get(key, 0)

    @property
    def total(self) -> int:
        return sum(self._counts.values())

    def keys(self) -> Iterator[int]:
        return iter(sorted(self._counts))

    def items(self) -> Iterable[tuple[int, int]]:
        return sorted(self._counts.items())

    def cumulative(self, keys: Iterable[int]) -> list[float]:
        """Fraction of samples with key <= k, for each k in ``keys``.

        ``keys`` must be given in ascending order.
        """
        total = self.total
        if total == 0:
            return [0.0 for _ in keys]
        items = sorted(self._counts.items())
        result = []
        running = 0
        idx = 0
        for k in keys:
            while idx < len(items) and items[idx][0] <= k:
                running += items[idx][1]
                idx += 1
            result.append(running / total)
        return result

    def reset(self) -> None:
        self._counts.clear()

    def as_dict(self) -> dict:
        # JSON keys must be strings; sort numerically for determinism.
        return {
            "type": self.kind,
            "counts": {str(k): v for k, v in sorted(self._counts.items())},
        }

    def merge(self, other: "Histogram") -> None:
        for key, amount in other._counts.items():
            self._counts[key] += amount

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Histogram({self.name}, n={self.total}, bins={len(self)})"


class TimingHistogram:
    """Log-bucketed duration histogram with conservative quantiles.

    Durations (seconds) land in geometrically spaced buckets: bucket
    ``i`` covers ``(BASE * GROWTH**(i-1), BASE * GROWTH**i]``, with a
    dedicated underflow bucket for samples at or below :data:`BASE`.
    With ``GROWTH = 2**0.25`` every bucket is ~19% wide, so quantile
    estimates carry at most that relative error — and the estimate is
    always the bucket's *upper* bound (clamped to the exact observed
    min/max), i.e. it never understates a latency. That bias is what
    makes it safe to gate SLOs on.

    Count, sum, min, and max are tracked exactly. The sparse
    ``{bucket_index: count}`` layout merges and snapshots like
    :class:`Histogram`.
    """

    kind = "timing"

    #: Lower edge of the first real bucket: 1 microsecond.
    BASE = 1e-6
    #: Geometric bucket growth factor (four buckets per octave).
    GROWTH = 2 ** 0.25

    _LOG_GROWTH = math.log(GROWTH)

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0
        self._counts: dict[int, int] = defaultdict(int)

    @classmethod
    def bucket_index(cls, seconds: float) -> int:
        """Bucket index for a duration; 0 is the underflow bucket."""
        if seconds <= cls.BASE:
            return 0
        return max(1, math.ceil(math.log(seconds / cls.BASE) / cls._LOG_GROWTH))

    @classmethod
    def bucket_upper_bound(cls, index: int) -> float:
        """Inclusive upper edge of bucket ``index`` in seconds."""
        return cls.BASE * cls.GROWTH ** index

    def record(self, seconds: float) -> None:
        if seconds < 0:
            seconds = 0.0
        self.count += 1
        self.sum += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        self._counts[self.bucket_index(seconds)] += 1

    @property
    def mean(self) -> float:
        return safe_ratio(self.sum, self.count)

    def quantile(self, q: float) -> float:
        """Conservative quantile estimate in seconds (0.0 when empty).

        Walks buckets in order until the cumulative count reaches
        ``q * count`` and returns that bucket's upper bound, clamped to
        the exact observed ``[min, max]`` range.
        """
        if self.count == 0:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        rank = q * self.count
        running = 0
        for index, amount in sorted(self._counts.items()):
            running += amount
            if running >= rank:
                estimate = self.bucket_upper_bound(index)
                return min(max(estimate, self.min), self.max)
        return self.max  # pragma: no cover - rank <= count always hits

    def buckets(self) -> Iterable[tuple[int, int]]:
        """Sorted ``(bucket_index, count)`` pairs."""
        return sorted(self._counts.items())

    def reset(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0
        self._counts.clear()

    def as_dict(self) -> dict:
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "buckets": {str(k): v for k, v in sorted(self._counts.items())},
        }

    def merge(self, other: "TimingHistogram") -> None:
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        for index, amount in other._counts.items():
            self._counts[index] += amount

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TimingHistogram({self.name}, n={self.count})"


_METRIC_TYPES = {
    cls.kind: cls for cls in (Counter, RatioStat, Histogram, TimingHistogram)
}


class MetricsRegistry:
    """Get-or-create store of named metrics with dot-path hierarchy.

    Paths are plain strings (``"dcache.accesses"``); the hierarchy is a
    naming convention, not a tree of objects, which keeps lookups cheap
    and snapshots flat.
    """

    def __init__(self):
        self._metrics: dict[str, object] = {}

    # -------------------------------------------------------------- #
    # get-or-create accessors

    def _get(self, path: str, cls):
        metric = self._metrics.get(path)
        if metric is None:
            metric = cls(path)
            self._metrics[path] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {path!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, path: str) -> Counter:
        return self._get(path, Counter)

    def ratio(self, path: str) -> RatioStat:
        return self._get(path, RatioStat)

    def histogram(self, path: str) -> Histogram:
        return self._get(path, Histogram)

    def timing(self, path: str) -> TimingHistogram:
        return self._get(path, TimingHistogram)

    # -------------------------------------------------------------- #

    def __contains__(self, path: str) -> bool:
        return path in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def paths(self) -> list[str]:
        return sorted(self._metrics)

    def subtree(self, prefix: str) -> dict[str, object]:
        """All metrics whose path starts with ``prefix + '.'``."""
        dotted = prefix + "."
        return {p: m for p, m in sorted(self._metrics.items())
                if p.startswith(dotted)}

    def merge(self, other: "MetricsRegistry") -> None:
        """Absorb ``other``; same-path metrics must be the same type."""
        for path, metric in other._metrics.items():
            self._get(path, type(metric)).merge(metric)

    def reset(self) -> None:
        for metric in self._metrics.values():
            metric.reset()

    # -------------------------------------------------------------- #
    # snapshots

    def snapshot(self, meta: dict | None = None) -> dict:
        """Versioned, deterministic JSON form of every metric.

        No wall-clock or host fields are added: two runs of the same
        deterministic workload produce byte-identical snapshots. Callers
        that *want* timestamps put them in ``meta`` explicitly.
        """
        return {
            "schema": SNAPSHOT_VERSION,
            "meta": dict(meta or {}),
            "metrics": {
                path: metric.as_dict()
                for path, metric in sorted(self._metrics.items())
            },
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output."""
        if snapshot.get("schema") != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported snapshot schema {snapshot.get('schema')!r}; "
                f"expected {SNAPSHOT_VERSION!r}"
            )
        registry = cls()
        for path, payload in snapshot.get("metrics", {}).items():
            metric_cls = _METRIC_TYPES.get(payload.get("type"))
            if metric_cls is None:
                raise ValueError(f"unknown metric type {payload.get('type')!r}")
            metric = registry._get(path, metric_cls)
            if metric_cls is Counter:
                metric.count = int(payload["count"])
            elif metric_cls is RatioStat:
                metric.hits = int(payload["hits"])
                metric.total = int(payload["total"])
            elif metric_cls is TimingHistogram:
                metric.count = int(payload["count"])
                metric.sum = float(payload["sum"])
                metric.min = float(payload["min"]) if metric.count else math.inf
                metric.max = float(payload["max"])
                for key, amount in payload["buckets"].items():
                    metric._counts[int(key)] += int(amount)
            else:
                for key, amount in payload["counts"].items():
                    metric.record(int(key), int(amount))
        return registry

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<MetricsRegistry {len(self._metrics)} metrics>"
