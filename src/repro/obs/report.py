"""Static HTML dashboard from farm artifacts: ``repro report``.

The report is built from one suite-sweep snapshot
(:func:`repro.farm.snapshots.suite_snapshot`) -- either computed on the
spot through the artifact store or loaded from a previously saved JSON
file -- and rendered as a single self-contained ``index.html``: plain
tables, no scripts, no external assets, deterministic byte output for
identical snapshots (safe to diff in CI and to publish as a build
artifact). The raw snapshot rides along as ``snapshot.json`` so the
dashboard is also the input of a later ``repro diff``.
"""

from __future__ import annotations

import html
import json
import os

from repro.obs.diff import flatten_snapshot

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #4a4e8f; padding-bottom: .3rem; }
table { border-collapse: collapse; margin: 1rem 0 2rem; }
th, td { border: 1px solid #c5c8e8; padding: .35rem .7rem;
         text-align: right; font-variant-numeric: tabular-nums; }
th { background: #eef0fb; }
td.name, th.name { text-align: left; font-weight: 600; }
.bad  { background: #fde8e8; }
.good { background: #e8f7ec; }
pre { background: #f6f7fb; padding: 1rem; overflow-x: auto;
      font-size: .85rem; }
.meta { color: #666; font-size: .9rem; }
"""


def _fmt_ratio(value: float) -> str:
    return f"{100.0 * value:.2f}%"


def _get(flat: dict, path: str, default: float = 0.0) -> float:
    return flat.get(path, default)


def build_report_html(snapshot: dict) -> str:
    """Render one suite-sweep snapshot as a self-contained HTML page."""
    flat = flatten_snapshot(snapshot)
    meta = snapshot.get("meta", {})
    benchmarks = meta.get("benchmarks", [])
    machines = meta.get("machines", [])

    out = ["<!doctype html>", "<html><head><meta charset='utf-8'>",
           "<title>repro suite report</title>",
           f"<style>{_CSS}</style></head><body>",
           "<h1>repro suite report</h1>",
           "<p class='meta'>Fast address calculation suite sweep &mdash; "
           f"benchmarks: {html.escape(', '.join(benchmarks) or '(none)')}; "
           f"machines: {html.escape(', '.join(machines) or '(none)')}; "
           f"software support: {'on' if meta.get('software') else 'off'}"
           "</p>"]

    # ---- timing table: one row per benchmark ----------------------- #
    if benchmarks and machines:
        base = machines[0]
        out.append("<h2>Timing</h2><table><tr><th class='name'>benchmark"
                   "</th>")
        for machine in machines:
            out.append(f"<th>{html.escape(machine)} cycles</th>"
                       f"<th>{html.escape(machine)} IPC</th>")
        if len(machines) > 1:
            out.append(f"<th>speedup vs {html.escape(base)}</th>")
        out.append("<th>dcache miss</th></tr>")
        for name in benchmarks:
            out.append(f"<tr><td class='name'>{html.escape(name)}</td>")
            base_cycles = _get(flat, f"{name}.{base}.cycles")
            last_cycles = base_cycles
            for machine in machines:
                cycles = _get(flat, f"{name}.{machine}.cycles")
                insts = _get(flat, f"{name}.{machine}.instructions")
                ipc = insts / cycles if cycles else 0.0
                out.append(f"<td>{int(cycles)}</td><td>{ipc:.3f}</td>")
                last_cycles = cycles
            if len(machines) > 1:
                speedup = base_cycles / last_cycles if last_cycles else 0.0
                klass = "good" if speedup >= 1.0 else "bad"
                out.append(f"<td class='{klass}'>{speedup:.3f}&times;</td>")
            miss = 1.0 - _get(flat, f"{name}.{base}.dcache.ratio")
            out.append(f"<td>{_fmt_ratio(miss)}</td></tr>")
        out.append("</table>")

    # ---- prediction table ------------------------------------------ #
    if benchmarks:
        pred_cols = sorted({
            path.split(".")[1]
            for path in flat
            if path.count(".") == 2 and path.split(".")[1].startswith("pred")
            and path.endswith(".ratio")
        })
        fac_machines = [m for m in machines
                        if f"{benchmarks[0]}.{m}.fac.ratio" in flat
                        and _get(flat, f"{benchmarks[0]}.{m}.fac.total")]
        if pred_cols or fac_machines:
            out.append("<h2>FAC prediction rates</h2><table>"
                       "<tr><th class='name'>benchmark</th>")
            for col in pred_cols:
                out.append(f"<th>{html.escape(col)} (functional)</th>")
            for machine in fac_machines:
                out.append(f"<th>{html.escape(machine)} (timed)</th>"
                           f"<th>{html.escape(machine)} replays</th>")
            out.append("</tr>")
            for name in benchmarks:
                out.append(f"<tr><td class='name'>{html.escape(name)}</td>")
                for col in pred_cols:
                    rate = _get(flat, f"{name}.{col}.ratio")
                    out.append(f"<td>{_fmt_ratio(rate)}</td>")
                for machine in fac_machines:
                    rate = _get(flat, f"{name}.{machine}.fac.ratio")
                    replays = _get(flat,
                                   f"{name}.{machine}.fac_mispredicted")
                    out.append(f"<td>{_fmt_ratio(rate)}</td>"
                               f"<td>{int(replays)}</td>")
                out.append("</tr>")
            out.append("</table>")

    # ---- raw leaves, grep-able ------------------------------------- #
    out.append("<h2>All metrics</h2><pre>")
    for path in sorted(flat):
        value = flat[path]
        if isinstance(value, float) and not value.is_integer():
            out.append(f"{html.escape(path)} = {value:.6f}")
        else:
            out.append(f"{html.escape(path)} = {int(value)}")
    out.append("</pre></body></html>")
    return "\n".join(out) + "\n"


def write_report(out_dir: str, snapshot: dict) -> str:
    """Write ``index.html`` + ``snapshot.json`` under ``out_dir``;
    returns the path of the HTML file."""
    os.makedirs(out_dir, exist_ok=True)
    index = os.path.join(out_dir, "index.html")
    with open(index, "w", encoding="utf-8") as handle:
        handle.write(build_report_html(snapshot))
    with open(os.path.join(out_dir, "snapshot.json"), "w",
              encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return index
