"""Pipeline flight recorder: a bounded ring buffer of recent pipeline
activity, rendered as an ANSI waterfall (``repro pipeview``) or exported
to the Chrome-trace sink with named per-stage tracks.

The recorder is a ``run_trace`` *consumer* that taps a
:class:`~repro.pipeline.pipeline.PipelineSimulator` rather than an event
sink attached to it: an attached :class:`~repro.obs.events.EventBus`
forces the pipeline's ``trace_plain`` fast lane into the record-building
slow path, while the tap keeps the zero-allocation contract. The
recorder hands the pipeline a preallocated ring (``pipe._flight``) whose
slots the pipeline's own hot loops overwrite in place -- a handful of
int stores per retired instruction, no call frames, no allocation; the
detached pipeline pays one attribute test per instruction for the hook.
Without ``--around`` triggers the recorder's consumer hooks *are* the
pipeline's bound methods, so recording adds zero dispatch overhead.
(The tapped pipeline must be built with ``obs=None`` and no ``trace``
list for the fast lane to stay fast; the recorder works either way, it
is just no longer free.)

Each ring slot captures, per retired instruction:

* the five-stage occupancy window IF/ID/EX/MEM/WB, reconstructed from
  the issue cycle the pipeline assigned (IF = issue-2, ID = issue-1,
  EX = issue), the planned cache-access cycle, and the result-ready
  cycle,
* the issue-frontier advance since the previous instruction (hazard /
  structural stalls show up as advances greater than the steady-state
  group rotation),
* the FAC outcome -- not speculated, predicted, or replayed -- and, for
  replays, the *specific* verification signal that fired (recomputed
  lazily at dump time from the recorded :class:`TraceRecord`, so the
  record path stays allocation-free).

The ring holds ``window_cycles * issue_width`` slots; ``entries()``
additionally clips to the trailing ``window_cycles`` of issue cycles.
``--around`` support: a pc trigger keeps recording for half a window
after the trigger pc retires, a cycle trigger freezes once issue passes
``cycle + window/2``; in both cases the recorder keeps *driving* the
wrapped pipeline so timing is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.executor import CPU
from repro.fac.config import FacConfig
from repro.isa.disassembler import disassemble
from repro.isa.program import Program
from repro.obs.sinks import ChromeTraceSink
from repro.pipeline.config import MachineConfig
from repro.pipeline.pipeline import PipelineSimulator
from repro.pipeline.result import SimResult
from repro.utils.bits import to_signed32

#: Pipeline stages, in track order for the Chrome export.
STAGE_NAMES = ("IF", "ID", "EX", "MEM", "WB")

# FAC outcome codes, decoded into :class:`FlightEntry.fac`. The ring
# slot itself stores the pipeline's raw success flag (None / True /
# False); the mapping happens at decode time.
FAC_NONE = 0      # not a memory access
FAC_NOSPEC = 1    # access not speculated (policy, or FAC-less machine)
FAC_PREDICT = 2   # speculated, verification passed
FAC_REPLAY = 3    # speculated, verification failed -> MEM-stage replay
FAC_CODES = {FAC_NONE: "-", FAC_NOSPEC: "nospec",
             FAC_PREDICT: "predict", FAC_REPLAY: "replay"}

# Ring slot field indices (written by the pipeline's inline ring tap,
# see PipelineSimulator._flight). Neither the retirement sequence number
# nor the issue-frontier advance is stored: slots are placed at
# ``seq % cap``, so both fall out of the ring position at decode time.
_PC, _PAYLOAD, _KIND, _ISSUE, _READY, _MEM, _FAC, _FLAG = range(8)


@dataclass(frozen=True)
class FlightEntry:
    """One decoded ring slot, in retirement order."""

    seq: int            # retirement sequence number (monotonic)
    pc: int
    kind: int           # predecode kind: 0 plain, 1 mem, 2 ctrl
    disasm: str
    issue: int          # EX stage cycle; IF = issue-2, ID = issue-1
    ready: int          # result-ready (WB) cycle
    mem: int | None     # cache-access cycle (mem ops only)
    stall: int          # issue-frontier advance over the predecessor
    fac: int            # FAC_* code
    reason: str | None  # verification signal name (replays only)
    flag: int           # mem: 1 hit / 0 miss; ctrl: 1 mispredict; else -1

    @property
    def fac_name(self) -> str:
        return FAC_CODES[self.fac]


class FlightRecorder:
    """Bounded recorder of recent per-instruction pipeline activity."""

    __slots__ = ("_pipe", "window_cycles", "_cap", "_slots", "_seqcell",
                 "_frozen", "_around_pc", "_freeze_cycle", "_countdown",
                 "_watch", "_tp", "_feed",
                 "trace_plain", "trace_mem", "trace_branch")

    def __init__(self, pipe: PipelineSimulator, window_cycles: int = 256,
                 around_pc: int | None = None,
                 around_cycle: int | None = None):
        self._pipe = pipe
        self.window_cycles = max(1, window_cycles)
        cap = max(16, self.window_cycles * pipe.config.issue_width)
        self._cap = cap
        # preallocated slots, overwritten in place at seq % cap; the
        # sentinel kind -1 marks never-written
        self._slots = [[0, None, -1, 0, 0, -1, None, -1]
                       for _ in range(cap)]
        # ring cursor in a cell shared with the pipeline's ring tap
        self._seqcell = [0]
        self._frozen = False
        self._around_pc = around_pc
        self._freeze_cycle = (None if around_cycle is None
                              else around_cycle + self.window_cycles // 2)
        self._countdown = -1
        self._watch = around_pc is not None or around_cycle is not None
        # bound hooks of the wrapped pipeline, looked up once
        self._tp = pipe.trace_plain
        self._feed = pipe.feed
        # hand the ring to the pipeline: its hot loops write the slots
        # inline (see PipelineSimulator._flight)
        pipe._flight = (self._slots, cap, self._seqcell)
        if self._watch:
            self.trace_plain = self._trace_plain_watch
            self.trace_mem = self._trace_mem_watch
            self.trace_branch = self._trace_branch_watch
        else:
            # no trigger can ever freeze the ring, so the recorder adds
            # nothing at all on top of the pipeline's inline ring tap:
            # run_trace drives the pipeline's own hooks directly
            self.trace_plain = pipe.trace_plain
            self.trace_mem = pipe.feed
            self.trace_branch = pipe.feed

    # -------------------------------------------------------------- #
    # run_trace consumer hooks (``--around`` watch mode only)
    #
    # The ring itself is written by the pipeline; these wrappers only
    # watch for the trigger and detach the ring tap once the trailing
    # half-window has been captured.

    def _trace_plain_watch(self, pc, inst) -> None:
        self._tp(pc, inst)
        if self._watch:
            self._check_trigger(pc, self._pipe._cur_cycle)

    def _trace_mem_watch(self, rec) -> None:
        issue = self._feed(rec)
        if self._watch:
            self._check_trigger(rec.pc, issue)

    _trace_branch_watch = _trace_mem_watch

    def _freeze(self) -> None:
        self._frozen = True
        self._watch = False
        self._pipe._flight = None   # stop recording, keep simulating

    def _check_trigger(self, pc: int, issue: int) -> None:
        if self._countdown >= 0:
            self._countdown -= 1
            if self._countdown < 0:
                self._freeze()
        elif self._around_pc is not None and pc == self._around_pc:
            self._countdown = self._cap // 2
            self._around_pc = None
        elif self._freeze_cycle is not None and issue >= self._freeze_cycle:
            self._freeze()

    # -------------------------------------------------------------- #
    # decoding

    def entries(self) -> list[FlightEntry]:
        """Decode the ring into retirement order, clipped to the last
        ``window_cycles`` issue cycles. Lazy work (sequence numbers,
        stall reconstruction, ready cycles for non-memory ops, FAC
        failure signals, disassembly) happens here."""
        pipe = self._pipe
        facts = pipe._facts
        total = self._seqcell[0]
        if total == 0:
            return []
        cap = self._cap
        count = cap if total > cap else total
        first = total - count
        newest = max(self._slots[s % cap][_ISSUE]
                     for s in range(first, total))
        floor = newest - self.window_cycles
        out = []
        prev_issue = None
        for seq in range(first, total):
            slot = self._slots[seq % cap]
            issue = slot[_ISSUE]
            # the oldest surviving record has no predecessor to diff
            stall = 0 if prev_issue is None else max(0, issue - prev_issue)
            prev_issue = issue
            if issue <= floor:
                continue
            kind = slot[_KIND]
            payload = slot[_PAYLOAD]
            if kind == 0:
                # plain slots leave _MEM/_FAC/_FLAG stale; the payload
                # is the bare instruction on the record-free fast lane,
                # or a full TraceRecord when the pipeline has a trace
                # list or event bus attached
                inst = getattr(payload, "inst", payload)
                out.append(FlightEntry(
                    seq=seq, pc=slot[_PC], kind=0,
                    disasm=disassemble(inst), issue=issue,
                    ready=slot[_READY], mem=None, stall=stall,
                    fac=FAC_NONE, reason=None, flag=-1,
                ))
                continue
            inst = payload.inst
            if kind == 1:
                success = slot[_FAC]
                fac = (FAC_NOSPEC if success is None
                       else FAC_PREDICT if success else FAC_REPLAY)
                mem = slot[_MEM]
            else:
                fac = FAC_NONE
                mem = None
            reason = None
            if fac == FAC_REPLAY and pipe.fac is not None:
                info = facts[id(inst)][1]
                mode = info.mem_mode
                offset = (payload.offset_value if mode == "c"
                          else to_signed32(payload.offset_value))
                prediction = pipe.fac.predict(payload.base_value, offset,
                                              mode == "x")
                reason = prediction.signals.primary_reason
            out.append(FlightEntry(
                seq=seq, pc=slot[_PC], kind=kind,
                disasm=disassemble(inst), issue=issue,
                ready=slot[_READY], mem=mem, stall=stall, fac=fac,
                reason=reason, flag=slot[_FLAG],
            ))
        return out

    # -------------------------------------------------------------- #
    # text dump (golden-file tested: deterministic, no colour)

    def dump(self) -> str:
        """One line per entry, fixed-width, deterministic."""
        lines = []
        for e in self.entries():
            mem = f"{e.mem:d}" if e.mem is not None else "-"
            if e.kind == 1:
                flag = "hit" if e.flag == 1 else "miss"
            elif e.kind == 2:
                flag = "mispred" if e.flag == 1 else "ok"
            else:
                flag = "-"
            lines.append(
                f"{e.seq:>8} 0x{e.pc:08x} i={e.issue:<8d} r={e.ready:<8d} "
                f"m={mem:<8s} +{e.stall:<3d} {e.fac_name:<7s} {flag:<7s} "
                f"{e.reason or '-':<21s} {e.disasm}"
            )
        return "\n".join(lines) + ("\n" if lines else "")

    # -------------------------------------------------------------- #
    # ANSI waterfall

    def render(self, color: bool = False, max_span: int = 120) -> str:
        """Pipeline waterfall: one row per instruction, one column per
        cycle. Stage letters: F(etch) D(ecode) X(execute) S(peculative
        EX-stage cache access) R(eplay) M(em-stage access) W(riteback);
        ``m`` fills miss-wait cycles."""
        entries = self.entries()
        if not entries:
            return "(flight recorder is empty)\n"
        hi = max(max(e.ready, e.issue + 1) for e in entries)
        lo = min(e.issue - 2 for e in entries)
        if hi - lo + 1 > max_span:
            lo = hi - max_span + 1
            entries = [e for e in entries if e.issue - 2 >= lo]
        span = hi - lo + 1

        def paint(text, code):
            if not color:
                return text
            return f"\x1b[{code}m{text}\x1b[0m"

        gutter = 40
        # cycle ruler, one tick per 10 columns
        ruler = [" "] * span
        for col in range(span):
            cycle = lo + col
            if cycle % 10 == 0:
                tick = str(cycle)
                for j, ch in enumerate(tick):
                    if col + j < span:
                        ruler[col + j] = ch
        lines = ["cycle".ljust(gutter) + "".join(ruler)]

        for e in entries:
            cells = {}
            cells[e.issue - 2 - lo] = "F"
            cells[e.issue - 1 - lo] = "D"
            if e.kind == 1:
                if e.fac == FAC_REPLAY:
                    cells[e.issue - lo] = paint("S", "31")      # red
                    cells[e.issue + 1 - lo] = paint("R", "31;1")
                    first_wait = e.issue + 2
                elif e.fac == FAC_PREDICT:
                    cells[e.issue - lo] = paint("S", "32")      # green
                    first_wait = e.issue + 1
                else:
                    cells[e.issue - lo] = "X"
                    if e.mem is not None and e.mem != e.issue:
                        cells[e.mem - lo] = (paint("M", "33")
                                             if e.flag == 0 else "M")
                    first_wait = (e.mem if e.mem is not None else e.issue) + 1
                for c in range(first_wait, e.ready):
                    cells.setdefault(c - lo, paint("m", "33"))
                cells.setdefault(e.ready - lo, "W")
            else:
                for c in range(e.issue, e.ready):
                    cells.setdefault(c - lo, "X")
                cells.setdefault(e.ready - lo, "W")
            row = [" "] * span
            for col, ch in cells.items():
                if 0 <= col < span:
                    row[col] = ch
            note = ""
            if e.reason is not None:
                note = "  <- " + e.reason
                if color:
                    note = paint(note, "31")
            elif e.kind == 2 and e.flag == 1:
                note = "  <- branch-mispredict"
            elif e.kind == 1 and e.flag == 0:
                note = "  <- dcache-miss"
            label = f"{e.seq:>7} 0x{e.pc:08x} {e.disasm}"
            if len(label) > gutter - 1:
                label = label[:gutter - 2] + "…"
            lines.append(label.ljust(gutter) + "".join(row) + note)
        return "\n".join(lines) + "\n"

    # -------------------------------------------------------------- #
    # Chrome export: named per-stage tracks

    def to_chrome(self, stream) -> None:
        """Write the window as Chrome trace JSON with one named track
        per pipeline stage (process "pipeline stages", pid 1)."""
        sink = ChromeTraceSink(stream)
        sink.register_process(1, "pipeline stages", sort_index=1)
        for tid, stage in enumerate(STAGE_NAMES):
            sink.register_track(1, tid, stage, sort_index=tid)
        for e in self.entries():
            args = {"pc": f"0x{e.pc:08x}", "seq": e.seq}
            if e.fac != FAC_NONE:
                args["fac"] = e.fac_name
            if e.reason is not None:
                args["reason"] = e.reason
            name = e.disasm
            sink.emit_slice(name, "stage", e.issue - 2, 1, 1, 0, args)
            sink.emit_slice(name, "stage", e.issue - 1, 1, 1, 1, args)
            if e.kind == 1:
                ex_dur = 2 if e.fac == FAC_REPLAY else 1
                sink.emit_slice(name, "stage", e.issue, ex_dur, 1, 2, args)
                if e.mem is not None:
                    mem_dur = max(1, e.ready - e.mem)
                    sink.emit_slice(name, "stage", e.mem, mem_dur, 1, 3, args)
            else:
                sink.emit_slice(name, "stage",
                                e.issue, max(1, e.ready - e.issue), 1, 2, args)
            sink.emit_slice(name, "stage", e.ready, 1, 1, 4, args)
        sink.close()


# ------------------------------------------------------------------ #


def record_flight(
    program: Program,
    config: MachineConfig | None = None,
    window_cycles: int = 256,
    around_pc: int | None = None,
    around_cycle: int | None = None,
    max_instructions: int = 50_000_000,
) -> tuple[FlightRecorder, SimResult]:
    """Run ``program`` on the FAC machine with a flight recorder
    attached; returns the recorder (holding the trailing window) and
    the timing result."""
    if config is None:
        config = MachineConfig(fac=FacConfig())
    cpu = CPU(program)
    pipe = PipelineSimulator(config)
    recorder = FlightRecorder(pipe, window_cycles=window_cycles,
                              around_pc=around_pc, around_cycle=around_cycle)
    cpu.run_trace(recorder, max_instructions)
    result = pipe.finalize(memory_usage=cpu.memory_usage)
    return recorder, result
