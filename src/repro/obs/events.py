"""Typed structured events and the bus that carries them.

Every observable action in the simulator stack is a small dataclass with
a class-level ``kind`` tag. Producers (pipeline, caches, TLB, store
buffer, CPU) hold an optional :class:`EventBus` and guard every emission
with ``if obs is not None`` -- when observability is off (the default)
the only cost is that one attribute test, so the un-instrumented hot
path stays within a few percent of the pre-instrumentation simulator
(enforced by ``benchmarks/test_obs_overhead.py``).

Event taxonomy (full field reference in docs/observability.md):

==================  ====================================================
kind                meaning
==================  ====================================================
``inst.retired``    one instruction through the timing pipeline (stage
                    occupancy: issue/ready/mem cycles, issue slot)
``fac.predict``     one speculative EX-stage address calculation, with
                    the verification outcome and failure *reason*
``fac.replay``      the MEM-stage replay an unsuccessful prediction
                    forces (1 extra cycle, plus a burned cache port)
``mem.access``      one data-cache access with everything the profiler
                    needs: pc, ea, hit, speculation outcome, latency
``cache.access``    tag-store activity on any cache (hit/miss/eviction/
                    writeback), from :class:`repro.cache.cache.Cache`
``tlb.access``      data-TLB translation hit/miss
``sb.insert``       a store entered the store buffer
``sb.full_stall``   pipeline stalled on a full store buffer
``branch``          conditional branch resolved (taken, BTB outcome)
``syscall``         system call retired by the functional simulator
``farm.scheduled``  an experiment job entered the farm's job graph
``farm.started``    a farm job was dispatched to a worker (store miss)
``farm.finished``   a farm job completed (``cached`` = artifact hit)
``farm.failed``     a farm job failed permanently; the sweep continues
``farm.job.crashed``  a worker died mid-job (signal/OOM), reason attached
``farm.job.timeout``  a job attempt exceeded the per-job timeout
``farm.job.retry``    a crashed/timed-out job was requeued for another try
``span.start``      a hierarchical span opened (repro.obs.spans)
``span.end``        a span closed, with its status
==================  ====================================================
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields


class Event:
    """Base class: ``kind`` tag plus a cheap dict serializer."""

    kind = "event"
    __slots__ = ()

    def as_dict(self) -> dict:
        out = {"event": self.kind}
        for f in fields(self):
            out[f.name] = getattr(self, f.name)
        return out


@dataclass(slots=True)
class InstRetired(Event):
    """Pipeline stage occupancy of one retired instruction."""

    kind = "inst.retired"
    seq: int            # retirement index (0-based)
    pc: int
    op: str             # mnemonic
    issue: int          # EX cycle (IF = issue-2, ID = issue-1)
    ready: int          # result-ready cycle (WB)
    mem: int | None     # cache-access cycle for memory ops, else None
    slot: int           # issue slot within the cycle (0..issue_width-1)


@dataclass(slots=True)
class FacPredict(Event):
    """One speculative address calculation and its verification."""

    kind = "fac.predict"
    pc: int
    cycle: int
    is_store: bool
    success: bool
    reason: str | None  # primary failure reason, None on success


@dataclass(slots=True)
class FacReplay(Event):
    """MEM-stage replay forced by a failed prediction."""

    kind = "fac.replay"
    pc: int
    cycle: int          # the replay (MEM) cycle
    penalty: int        # extra result-latency cycles (1)


@dataclass(slots=True)
class MemAccess(Event):
    """One data-cache access as the pipeline timed it."""

    kind = "mem.access"
    pc: int
    cycle: int          # issue (EX) cycle
    ea: int
    is_store: bool
    hit: bool
    speculated: bool    # attempted in EX via fast address calculation
    fac_success: bool | None  # None when not speculated
    fac_reason: str | None
    result_ready: int


@dataclass(slots=True)
class CacheAccess(Event):
    """Tag-store activity on one cache."""

    kind = "cache.access"
    level: str          # config.name: 'icache', 'dcache', ...
    address: int
    is_write: bool
    hit: bool
    evicted: bool       # a victim block was replaced
    writeback: bool     # ... and it was dirty


@dataclass(slots=True)
class TlbAccess(Event):
    kind = "tlb.access"
    address: int
    hit: bool


@dataclass(slots=True)
class StoreBufferInsert(Event):
    kind = "sb.insert"
    cycle: int
    occupancy: int      # entries after the insert


@dataclass(slots=True)
class StoreBufferFullStall(Event):
    kind = "sb.full_stall"
    cycle: int


@dataclass(slots=True)
class BranchResolved(Event):
    kind = "branch"
    pc: int
    cycle: int
    taken: bool
    mispredicted: bool


@dataclass(slots=True)
class Syscall(Event):
    kind = "syscall"
    pc: int
    service: int
    name: str


# ------------------------------------------------------------------ #
# farm lifecycle events (repro.farm.scheduler)

@dataclass(slots=True)
class FarmJobScheduled(Event):
    """A job entered the farm's graph (before hit/miss is known)."""

    kind = "farm.scheduled"
    job_id: str
    job_kind: str       # build | trace | analysis | sim


@dataclass(slots=True)
class FarmJobStarted(Event):
    """A job was dispatched to a worker (store miss)."""

    kind = "farm.started"
    job_id: str
    job_kind: str
    worker: int         # worker index, -1 for inline execution
    attempt: int        # 1-based


@dataclass(slots=True)
class FarmJobFinished(Event):
    """A job completed: from the store (``cached``) or computed."""

    kind = "farm.finished"
    job_id: str
    job_kind: str
    cached: bool        # True = artifact-store hit, nothing ran


@dataclass(slots=True)
class FarmJobFailed(Event):
    """A job failed permanently (error, crash, timeout, or upstream)."""

    kind = "farm.failed"
    job_id: str
    job_kind: str
    error: str
    attempts: int


@dataclass(slots=True)
class FarmJobCrashed(Event):
    """A worker died mid-job (hard exit, signal, OOM kill).

    Emitted once per crashed *attempt*, before the scheduler decides
    between :class:`FarmJobRetry` and :class:`FarmJobFailed` -- so a
    downstream consumer can distinguish crash-then-recovered from
    crash-then-gave-up.
    """

    kind = "farm.job.crashed"
    job_id: str
    job_kind: str
    reason: str
    attempt: int        # the attempt that crashed (1-based)


@dataclass(slots=True)
class FarmJobTimeout(Event):
    """A job attempt exceeded the per-job timeout and was killed."""

    kind = "farm.job.timeout"
    job_id: str
    job_kind: str
    timeout: float      # the configured per-attempt budget, seconds
    attempt: int


@dataclass(slots=True)
class FarmJobRetry(Event):
    """A crashed/timed-out job was requeued for another attempt."""

    kind = "farm.job.retry"
    job_id: str
    job_kind: str
    reason: str
    next_attempt: int   # the attempt number the retry will run as


# ------------------------------------------------------------------ #
# hierarchical spans (repro.obs.spans)

@dataclass(slots=True)
class SpanStarted(Event):
    """A span opened; ``parent_id`` links the causal tree."""

    kind = "span.start"
    span_id: int
    parent_id: int | None
    name: str
    cat: str
    t0: float           # monotonic seconds


@dataclass(slots=True)
class SpanEnded(Event):
    kind = "span.end"
    span_id: int
    name: str
    t1: float
    status: str         # 'ok' | 'error' | ...


# --------------------------------------------------------------------- #
# serving-layer events


@dataclass(slots=True)
class HttpRequestServed(Event):
    """One HTTP request completed by ``repro serve`` (access-log line).

    ``route`` is the template ("GET /v1/jobs/{id}"), ``path`` the
    concrete URL path; ``tenant``/``job_id`` are empty strings when the
    request has neither.
    """

    kind = "serve.http.request"
    trace_id: str
    method: str
    route: str
    path: str
    status: int
    duration_seconds: float
    tenant: str
    job_id: str


#: kind -> event class, for sinks that reconstruct events.
EVENT_TYPES = {
    cls.kind: cls
    for cls in (
        InstRetired, FacPredict, FacReplay, MemAccess, CacheAccess,
        TlbAccess, StoreBufferInsert, StoreBufferFullStall,
        BranchResolved, Syscall,
        FarmJobScheduled, FarmJobStarted, FarmJobFinished, FarmJobFailed,
        FarmJobCrashed, FarmJobTimeout, FarmJobRetry,
        SpanStarted, SpanEnded,
        HttpRequestServed,
    )
}


class EventBus:
    """Fan-out from producers to sinks.

    A bus with no sinks is legal and nearly free, but the supported
    zero-overhead idiom is to pass ``obs=None`` to producers -- then not
    even the event objects are constructed.

    Subscription is thread-safe: ``attach``/``detach`` swap an immutable
    sink tuple under a lock while ``emit`` reads whatever tuple is
    current without locking, so the instrumented hot path pays nothing
    and a publisher mid-fan-out never observes a half-mutated sink list
    (it finishes the snapshot it started with). This is what lets the
    serve layer's SSE fan-out subscribe and unsubscribe while the farm's
    multiprocessing result pump is publishing from another thread.
    """

    __slots__ = ("sinks", "_lock")

    def __init__(self, sinks: list | tuple = ()):
        self.sinks = tuple(sinks)
        self._lock = threading.Lock()

    def attach(self, sink) -> None:
        with self._lock:
            self.sinks = self.sinks + (sink,)

    def detach(self, sink) -> None:
        """Remove ``sink`` (by identity); unknown sinks are ignored.

        A publisher that already entered ``emit`` may still deliver one
        final event to the detached sink -- consumers that need a hard
        cut-off (e.g. :func:`subscribe_async`) close on their own side.
        """
        with self._lock:
            self.sinks = tuple(s for s in self.sinks if s is not sink)

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.handle(event)

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


# ------------------------------------------------------------------ #
# asyncio bridge (repro.serve SSE fan-out)

#: Queue sentinel marking the end of an :class:`AsyncSubscription`.
_SUBSCRIPTION_CLOSED = object()


class _QueueBridgeSink:
    """Bus-side half of :func:`subscribe_async`.

    ``handle`` may be called from any thread (farm workers publish via
    the scheduler's result-pump thread); it hops onto the subscriber's
    event loop with ``call_soon_threadsafe``, the one asyncio entry
    point that is documented thread-safe. The queue is unbounded, so no
    event is ever dropped -- backpressure is the consumer's problem,
    which for SSE streaming is exactly right.
    """

    __slots__ = ("loop", "queue", "closed")

    def __init__(self, loop, queue):
        self.loop = loop
        self.queue = queue
        self.closed = False

    def handle(self, event) -> None:
        if self.closed:
            return
        try:
            self.loop.call_soon_threadsafe(self.queue.put_nowait, event)
        except RuntimeError:  # loop already closed; drop silently
            self.closed = True


class AsyncSubscription:
    """Queue-backed async view of an :class:`EventBus`.

    Iterate (``async for event in sub``) or call :meth:`get` until it
    returns ``None``; :meth:`close` detaches from the bus and terminates
    the iteration after every already-queued event has been consumed --
    close is a flush point, not a discard.
    """

    def __init__(self, bus: EventBus, sink: _QueueBridgeSink):
        self.bus = bus
        self._sink = sink
        self.queue = sink.queue

    async def get(self):
        """The next event, or ``None`` once closed and drained."""
        item = await self.queue.get()
        if item is _SUBSCRIPTION_CLOSED:
            return None
        return item

    def close(self) -> None:
        """Detach from the bus and end the iteration (idempotent)."""
        if self._sink.closed:
            return
        self.bus.detach(self._sink)
        self._sink.closed = True
        # Deliver the sentinel on the loop so it lands *after* any
        # events a concurrent publisher already scheduled.
        try:
            self._sink.loop.call_soon_threadsafe(
                self.queue.put_nowait, _SUBSCRIPTION_CLOSED)
        except RuntimeError:  # loop gone; nothing left to wake
            pass

    def __aiter__(self):
        return self

    async def __anext__(self):
        item = await self.get()
        if item is None:
            raise StopAsyncIteration
        return item


def subscribe_async(bus: EventBus, loop=None, queue=None) -> AsyncSubscription:
    """Subscribe to ``bus`` from asyncio code.

    Returns an :class:`AsyncSubscription` whose queue receives every
    event published on ``bus`` from *any* thread, in publication order
    per publisher, delivered on ``loop`` (default: the running loop).
    This is the supported way to couple the farm's thread-side event
    stream to an asyncio consumer (the serve layer's SSE fan-out)
    without racing the multiprocessing result pump.
    """
    import asyncio

    if loop is None:
        loop = asyncio.get_running_loop()
    if queue is None:
        queue = asyncio.Queue()
    sink = _QueueBridgeSink(loop, queue)
    bus.attach(sink)
    return AsyncSubscription(bus, sink)
