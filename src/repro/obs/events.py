"""Typed structured events and the bus that carries them.

Every observable action in the simulator stack is a small dataclass with
a class-level ``kind`` tag. Producers (pipeline, caches, TLB, store
buffer, CPU) hold an optional :class:`EventBus` and guard every emission
with ``if obs is not None`` -- when observability is off (the default)
the only cost is that one attribute test, so the un-instrumented hot
path stays within a few percent of the pre-instrumentation simulator
(enforced by ``benchmarks/test_obs_overhead.py``).

Event taxonomy (full field reference in docs/observability.md):

==================  ====================================================
kind                meaning
==================  ====================================================
``inst.retired``    one instruction through the timing pipeline (stage
                    occupancy: issue/ready/mem cycles, issue slot)
``fac.predict``     one speculative EX-stage address calculation, with
                    the verification outcome and failure *reason*
``fac.replay``      the MEM-stage replay an unsuccessful prediction
                    forces (1 extra cycle, plus a burned cache port)
``mem.access``      one data-cache access with everything the profiler
                    needs: pc, ea, hit, speculation outcome, latency
``cache.access``    tag-store activity on any cache (hit/miss/eviction/
                    writeback), from :class:`repro.cache.cache.Cache`
``tlb.access``      data-TLB translation hit/miss
``sb.insert``       a store entered the store buffer
``sb.full_stall``   pipeline stalled on a full store buffer
``branch``          conditional branch resolved (taken, BTB outcome)
``syscall``         system call retired by the functional simulator
``farm.scheduled``  an experiment job entered the farm's job graph
``farm.started``    a farm job was dispatched to a worker (store miss)
``farm.finished``   a farm job completed (``cached`` = artifact hit)
``farm.failed``     a farm job failed permanently; the sweep continues
``farm.job.crashed``  a worker died mid-job (signal/OOM), reason attached
``farm.job.timeout``  a job attempt exceeded the per-job timeout
``farm.job.retry``    a crashed/timed-out job was requeued for another try
``span.start``      a hierarchical span opened (repro.obs.spans)
``span.end``        a span closed, with its status
==================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, fields


class Event:
    """Base class: ``kind`` tag plus a cheap dict serializer."""

    kind = "event"
    __slots__ = ()

    def as_dict(self) -> dict:
        out = {"event": self.kind}
        for f in fields(self):
            out[f.name] = getattr(self, f.name)
        return out


@dataclass(slots=True)
class InstRetired(Event):
    """Pipeline stage occupancy of one retired instruction."""

    kind = "inst.retired"
    seq: int            # retirement index (0-based)
    pc: int
    op: str             # mnemonic
    issue: int          # EX cycle (IF = issue-2, ID = issue-1)
    ready: int          # result-ready cycle (WB)
    mem: int | None     # cache-access cycle for memory ops, else None
    slot: int           # issue slot within the cycle (0..issue_width-1)


@dataclass(slots=True)
class FacPredict(Event):
    """One speculative address calculation and its verification."""

    kind = "fac.predict"
    pc: int
    cycle: int
    is_store: bool
    success: bool
    reason: str | None  # primary failure reason, None on success


@dataclass(slots=True)
class FacReplay(Event):
    """MEM-stage replay forced by a failed prediction."""

    kind = "fac.replay"
    pc: int
    cycle: int          # the replay (MEM) cycle
    penalty: int        # extra result-latency cycles (1)


@dataclass(slots=True)
class MemAccess(Event):
    """One data-cache access as the pipeline timed it."""

    kind = "mem.access"
    pc: int
    cycle: int          # issue (EX) cycle
    ea: int
    is_store: bool
    hit: bool
    speculated: bool    # attempted in EX via fast address calculation
    fac_success: bool | None  # None when not speculated
    fac_reason: str | None
    result_ready: int


@dataclass(slots=True)
class CacheAccess(Event):
    """Tag-store activity on one cache."""

    kind = "cache.access"
    level: str          # config.name: 'icache', 'dcache', ...
    address: int
    is_write: bool
    hit: bool
    evicted: bool       # a victim block was replaced
    writeback: bool     # ... and it was dirty


@dataclass(slots=True)
class TlbAccess(Event):
    kind = "tlb.access"
    address: int
    hit: bool


@dataclass(slots=True)
class StoreBufferInsert(Event):
    kind = "sb.insert"
    cycle: int
    occupancy: int      # entries after the insert


@dataclass(slots=True)
class StoreBufferFullStall(Event):
    kind = "sb.full_stall"
    cycle: int


@dataclass(slots=True)
class BranchResolved(Event):
    kind = "branch"
    pc: int
    cycle: int
    taken: bool
    mispredicted: bool


@dataclass(slots=True)
class Syscall(Event):
    kind = "syscall"
    pc: int
    service: int
    name: str


# ------------------------------------------------------------------ #
# farm lifecycle events (repro.farm.scheduler)

@dataclass(slots=True)
class FarmJobScheduled(Event):
    """A job entered the farm's graph (before hit/miss is known)."""

    kind = "farm.scheduled"
    job_id: str
    job_kind: str       # build | trace | analysis | sim


@dataclass(slots=True)
class FarmJobStarted(Event):
    """A job was dispatched to a worker (store miss)."""

    kind = "farm.started"
    job_id: str
    job_kind: str
    worker: int         # worker index, -1 for inline execution
    attempt: int        # 1-based


@dataclass(slots=True)
class FarmJobFinished(Event):
    """A job completed: from the store (``cached``) or computed."""

    kind = "farm.finished"
    job_id: str
    job_kind: str
    cached: bool        # True = artifact-store hit, nothing ran


@dataclass(slots=True)
class FarmJobFailed(Event):
    """A job failed permanently (error, crash, timeout, or upstream)."""

    kind = "farm.failed"
    job_id: str
    job_kind: str
    error: str
    attempts: int


@dataclass(slots=True)
class FarmJobCrashed(Event):
    """A worker died mid-job (hard exit, signal, OOM kill).

    Emitted once per crashed *attempt*, before the scheduler decides
    between :class:`FarmJobRetry` and :class:`FarmJobFailed` -- so a
    downstream consumer can distinguish crash-then-recovered from
    crash-then-gave-up.
    """

    kind = "farm.job.crashed"
    job_id: str
    job_kind: str
    reason: str
    attempt: int        # the attempt that crashed (1-based)


@dataclass(slots=True)
class FarmJobTimeout(Event):
    """A job attempt exceeded the per-job timeout and was killed."""

    kind = "farm.job.timeout"
    job_id: str
    job_kind: str
    timeout: float      # the configured per-attempt budget, seconds
    attempt: int


@dataclass(slots=True)
class FarmJobRetry(Event):
    """A crashed/timed-out job was requeued for another attempt."""

    kind = "farm.job.retry"
    job_id: str
    job_kind: str
    reason: str
    next_attempt: int   # the attempt number the retry will run as


# ------------------------------------------------------------------ #
# hierarchical spans (repro.obs.spans)

@dataclass(slots=True)
class SpanStarted(Event):
    """A span opened; ``parent_id`` links the causal tree."""

    kind = "span.start"
    span_id: int
    parent_id: int | None
    name: str
    cat: str
    t0: float           # monotonic seconds


@dataclass(slots=True)
class SpanEnded(Event):
    kind = "span.end"
    span_id: int
    name: str
    t1: float
    status: str         # 'ok' | 'error' | ...


#: kind -> event class, for sinks that reconstruct events.
EVENT_TYPES = {
    cls.kind: cls
    for cls in (
        InstRetired, FacPredict, FacReplay, MemAccess, CacheAccess,
        TlbAccess, StoreBufferInsert, StoreBufferFullStall,
        BranchResolved, Syscall,
        FarmJobScheduled, FarmJobStarted, FarmJobFinished, FarmJobFailed,
        FarmJobCrashed, FarmJobTimeout, FarmJobRetry,
        SpanStarted, SpanEnded,
    )
}


class EventBus:
    """Fan-out from producers to sinks.

    A bus with no sinks is legal and nearly free, but the supported
    zero-overhead idiom is to pass ``obs=None`` to producers -- then not
    even the event objects are constructed.
    """

    __slots__ = ("sinks",)

    def __init__(self, sinks: list | tuple = ()):
        self.sinks = list(sinks)

    def attach(self, sink) -> None:
        self.sinks.append(sink)

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.handle(event)

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
