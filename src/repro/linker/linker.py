"""The linker.

Responsibilities, mirroring the paper's GNU GLD modifications (Section 4,
"Global Pointer Accesses"):

* concatenate text sections and resolve intra/inter-unit branch targets,
* lay out the data segment: "far" data first, then the gp-addressable
  *global region* holding every symbol accessed relative to ``$gp``,
* choose the global-pointer value.  Without FAC support the global region
  starts wherever the far data ends (an essentially arbitrary address) and
  ``$gp`` points at its base.  With ``align_gp=True`` the region is
  relocated to a power-of-two boundary **larger than the largest offset
  applied to it**, and all offsets are positive -- which makes carry-free
  addition exact for every global-pointer access,
* resolve HI16/LO16/GPREL16/CALL26/WORD32 relocations,
* compute the initial break (heap base) and stack pointer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import LinkError
from repro.isa.opcodes import Op
from repro.isa.program import (
    DataDef,
    LinkFacts,
    ObjectUnit,
    Program,
    RelocKind,
    Symbol,
)
from repro.mem.layout import DATA_BASE, STACK_TOP, TEXT_BASE
from repro.utils.bits import align_up, next_pow2


@dataclass
class LinkOptions:
    """Knobs controlling program layout."""

    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    stack_top: int = STACK_TOP
    entry_symbol: str = "__start"
    # FAC software support: relocate the global region to a power-of-two
    # boundary larger than the largest gp offset, offsets all positive.
    align_gp: bool = False
    # FAC software support: the startup code aligns the initial stack
    # pointer to the program-wide stack alignment (Section 4).
    align_stack: bool = False
    stack_align: int = 256
    # Realistic layout jitter. Real binaries place headers/crt data ahead
    # of the data segment and argv/env blocks above the initial stack
    # pointer, so neither the global region base nor $sp starts on a
    # convenient power-of-two boundary (the paper's Figure 5 example has
    # sp = 0x7fff5b84). Without this bias the tiny test programs would
    # get accidental alignment and Table 3 would look far too good.
    data_bias: int = 0x5B8
    stack_bias: int = 0x478
    # Padding between the data segment end and the initial break.
    heap_gap: int = 0x1000


def link(units: list[ObjectUnit], options: LinkOptions | None = None) -> Program:
    """Link ``units`` into a runnable program image."""
    options = options or LinkOptions()
    return _Linker(units, options).run()


class _Linker:
    def __init__(self, units: list[ObjectUnit], options: LinkOptions):
        self.units = units
        self.options = options
        self.symbols: dict[str, Symbol] = {}
        self.text = []
        self.line_table: list[tuple[int, str, int]] = []
        self.unit_bases: dict[int, int] = {}  # id(unit) -> text base addr
        self.def_addr: dict[int, int] = {}    # id(DataDef) -> placed address

    def run(self) -> Program:
        self._merge_text()
        gp_value, data_end = self._layout_data()
        self._resolve_text_labels()
        self._resolve_text_relocs(gp_value)
        entry = self._entry_address()
        brk = align_up(data_end + self.options.heap_gap, 0x1000)
        sp_value = self.options.stack_top - self.options.stack_bias
        if self.options.align_stack:
            sp_value &= -self.options.stack_align
        else:
            sp_value &= -8
        program = Program(
            instructions=self.text,
            text_base=self.options.text_base,
            entry=entry,
            gp_value=gp_value,
            sp_value=sp_value,
            brk=brk,
        )
        program.symbols = self.symbols
        self._build_data_image(program)
        program.link_facts = LinkFacts(
            gp_value=gp_value,
            gp_region_base=self._gp_region_base,
            gp_region_size=self._gp_region_size,
            align_gp=self.options.align_gp,
            sp_value=sp_value,
            stack_align=(self.options.stack_align if self.options.align_stack
                         else 8),
            data_base=self.options.data_base,
            data_end=data_end,
            stack_top=self.options.stack_top,
        )
        for unit in self.units:
            program.frame_facts.update(unit.frame_facts)
            program.struct_facts.update(unit.struct_facts)
        program.line_table = self.line_table
        return program

    # ------------------------------------------------------------------ #
    # text

    def _merge_text(self) -> None:
        base = self.options.text_base
        for unit in self.units:
            self.unit_bases[id(unit)] = base
            # Merge ``.loc`` marks into the program-wide line table. A
            # unit whose text does not open with a mark gets a gap entry
            # so the previous unit's attribution cannot spill into it.
            if unit.text and not (unit.line_marks
                                  and unit.line_marks[0][0] == 0):
                self.line_table.append((base, "", 0))
            for index, file, line in unit.line_marks:
                self.line_table.append((base + index * 4, file, line))
            for offset, inst in enumerate(unit.text):
                inst.addr = base + offset * 4
                self.text.append(inst)
            for label, index in unit.text_labels.items():
                address = base + index * 4
                if label in unit.exported or label == "main" or label == "__start":
                    if label in self.symbols:
                        raise LinkError(f"duplicate text symbol {label!r}")
                    self.symbols[label] = Symbol(label, address, section="text")
            base += len(unit.text) * 4

    def _resolve_text_labels(self) -> None:
        """Convert local branch targets from indexes to absolute addresses."""
        for unit in self.units:
            base = self.unit_bases[id(unit)]
            for index, inst in enumerate(unit.text):
                if inst.label is not None and inst.target is not None:
                    inst.target = base + inst.target * 4

    # ------------------------------------------------------------------ #
    # data layout

    def _collect_defs(self) -> tuple[list[DataDef], list[DataDef]]:
        gp_refs = {
            reloc.symbol
            for unit in self.units
            for reloc in unit.text_relocs
            if reloc.kind == RelocKind.GPREL16
        }
        names: set[str] = set()
        gp_defs: list[DataDef] = []
        far_defs: list[DataDef] = []
        for unit in self.units:
            for definition in unit.data:
                if definition.name in names:
                    raise LinkError(f"duplicate data symbol {definition.name!r}")
                names.add(definition.name)
                if definition.gp_addressable or definition.name in gp_refs:
                    gp_defs.append(definition)
                else:
                    far_defs.append(definition)
        return gp_defs, far_defs

    def _layout_data(self) -> tuple[int, int]:
        gp_defs, far_defs = self._collect_defs()
        cursor = self.options.data_base + self.options.data_bias
        for definition in far_defs:
            cursor = align_up(cursor, definition.align)
            self._define_data_symbol(definition, cursor)
            cursor += definition.size

        region_size = 0
        for definition in gp_defs:
            region_size = align_up(region_size, definition.align) + definition.size

        if self.options.align_gp:
            # Paper: relocate the global region to a power-of-two boundary
            # larger than the largest offset applied to the global pointer.
            boundary = next_pow2(max(region_size, 1))
            region_base = align_up(cursor, boundary)
        else:
            # Global region lands wherever far data ends; its base address
            # has arbitrary low bits so carry-free addition often fails.
            region_base = align_up(cursor, 8)
        gp_value = region_base
        self._gp_region_base = region_base
        self._gp_region_size = region_size

        cursor = region_base
        for definition in gp_defs:
            cursor = align_up(cursor, definition.align)
            offset = cursor - gp_value
            if offset + definition.size > 0x8000:
                raise LinkError(
                    f"global region overflow: {definition.name!r} at gp+{offset} "
                    f"(size {definition.size})"
                )
            self._define_data_symbol(definition, cursor)
            cursor += definition.size
        return gp_value, cursor

    def _define_data_symbol(self, definition: DataDef, address: int) -> None:
        self.symbols[definition.name] = Symbol(
            definition.name,
            address,
            size=definition.size,
            section="bss" if definition.is_bss else "data",
        )
        self.def_addr[id(definition)] = address

    # ------------------------------------------------------------------ #
    # relocation

    def _symbol_value(self, name: str) -> int:
        symbol = self.symbols.get(name)
        if symbol is None:
            raise LinkError(f"undefined symbol {name!r}")
        return symbol.address

    def _resolve_text_relocs(self, gp_value: int) -> None:
        for unit in self.units:
            base = self.unit_bases[id(unit)]
            for reloc in unit.text_relocs:
                inst = unit.text[reloc.offset]
                local = unit.text_labels.get(reloc.symbol)
                if local is not None:
                    value = base + local * 4 + reloc.addend
                else:
                    value = self._symbol_value(reloc.symbol) + reloc.addend
                if reloc.kind == RelocKind.HI16:
                    inst.imm = ((value + 0x8000) >> 16) & 0xFFFF
                elif reloc.kind == RelocKind.LO16:
                    low = value & 0xFFFF
                    inst.imm = low - 0x10000 if low & 0x8000 else low
                elif reloc.kind == RelocKind.GPREL16:
                    offset = value - gp_value
                    if not -0x8000 <= offset < 0x8000:
                        raise LinkError(
                            f"gp-relative offset {offset} to {reloc.symbol!r} "
                            "does not fit in 16 bits"
                        )
                    inst.imm = offset
                elif reloc.kind == RelocKind.CALL26:
                    if inst.op not in (Op.J, Op.JAL):
                        raise LinkError("CALL26 relocation on non-jump")
                    inst.target = value
                else:
                    raise LinkError(f"bad text relocation kind {reloc.kind}")

    # ------------------------------------------------------------------ #
    # data image

    def _build_data_image(self, program: Program) -> None:
        for unit in self.units:
            for definition in unit.data:
                address = self.def_addr[id(definition)]
                if definition.is_bss and not definition.relocs:
                    program.bss_spans.append((address, definition.size))
                    continue
                payload = bytearray(definition.payload)
                for reloc in definition.relocs:
                    if reloc.kind != RelocKind.WORD32:
                        raise LinkError(f"bad data relocation kind {reloc.kind}")
                    value = self._symbol_value(reloc.symbol) + reloc.addend
                    struct.pack_into("<I", payload, reloc.offset, value & 0xFFFFFFFF)
                program.data_image.append((address, bytes(payload)))

    def _entry_address(self) -> int:
        symbol = self.symbols.get(self.options.entry_symbol)
        if symbol is None:
            symbol = self.symbols.get("main")
        if symbol is None:
            raise LinkError(
                f"no entry symbol {self.options.entry_symbol!r} or 'main'"
            )
        return symbol.address

