"""Linker: merges object units into a runnable :class:`Program` image."""

from repro.linker.linker import LinkOptions, link

__all__ = ["LinkOptions", "link"]
