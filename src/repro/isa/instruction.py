"""The in-memory instruction representation.

Instructions are mutable records (labels become addresses at link time)
with ``__slots__`` for compactness: the timing simulator touches millions
of these. Field usage by format:

* integer 3-register ops: ``rd = rs OP rt``
* immediates: ``rt = rs OP imm`` (``rt`` is the destination, MIPS style)
* shifts by immediate: ``rd = rt OP shamt`` (stored in ``imm``)
* loads: ``rt`` (or ``ft``) destination, ``rs`` base; constant mode uses
  ``imm``, indexed mode uses ``rx`` as the index register, post-increment
  mode uses ``imm`` as the post-access adjustment of ``rs``
* stores: ``rt`` (or ``ft``) is the value source; addressing as loads
* branches: ``rs``/``rt`` compared, ``target`` is the resolved absolute
  address (a local instruction index before linking)
* jumps: ``target`` absolute address, or ``label`` before resolution
* FP three-register: ``fd = fs OP ft``
"""

from __future__ import annotations

from repro.isa.opcodes import Op, OP_INFO


class Instruction:
    """One extended-MIPS instruction."""

    __slots__ = (
        "op", "rd", "rs", "rt", "rx",
        "fd", "fs", "ft",
        "imm", "target", "label", "addr",
    )

    def __init__(
        self,
        op: Op,
        rd: int = 0,
        rs: int = 0,
        rt: int = 0,
        rx: int = 0,
        fd: int = 0,
        fs: int = 0,
        ft: int = 0,
        imm: int = 0,
        target: int | None = None,
        label: str | None = None,
    ):
        self.op = op
        self.rd = rd
        self.rs = rs
        self.rt = rt
        self.rx = rx
        self.fd = fd
        self.fs = fs
        self.ft = ft
        self.imm = imm
        self.target = target
        self.label = label
        self.addr = 0  # assigned by the linker

    @property
    def info(self):
        return OP_INFO[self.op]

    @property
    def is_load(self) -> bool:
        return OP_INFO[self.op].is_load

    @property
    def is_store(self) -> bool:
        return OP_INFO[self.op].is_store

    @property
    def is_mem(self) -> bool:
        return OP_INFO[self.op].mem_width > 0

    def copy(self) -> "Instruction":
        inst = Instruction(
            self.op, self.rd, self.rs, self.rt, self.rx,
            self.fd, self.fs, self.ft, self.imm, self.target, self.label,
        )
        inst.addr = self.addr
        return inst

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return all(
            getattr(self, slot) == getattr(other, slot)
            for slot in self.__slots__
            if slot != "addr"
        )

    def __hash__(self):  # pragma: no cover - instructions are not hashed
        return id(self)

    def __repr__(self) -> str:
        from repro.isa.disassembler import disassemble

        try:
            return f"<{disassemble(self)}>"
        except Exception:
            return f"<Instruction {self.op.name}>"
