"""Extended-MIPS instruction set architecture.

The paper's target is "functionally identical to the MIPS-I ISA" with two
extensions and one removal (Section 5.1):

* register+register addressing mode for loads and stores,
* post-increment / post-decrement addressing,
* no architected delay slots (branches and loads take effect immediately).

This package provides the register model, opcode metadata, the
:class:`~repro.isa.instruction.Instruction` representation, a binary
encoder/decoder, a two-pass assembler producing relocatable object units,
and a disassembler.
"""

from repro.isa.registers import Reg, FReg, REG_NAMES, reg_name, parse_reg
from repro.isa.opcodes import Op, OpClass, op_info
from repro.isa.instruction import Instruction
from repro.isa.program import DataDef, ObjectUnit, Program, Relocation, RelocKind, Symbol
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble
from repro.isa.encoding import decode, encode
from repro.isa.listing import generate_listing

__all__ = [
    "Reg",
    "FReg",
    "REG_NAMES",
    "reg_name",
    "parse_reg",
    "Op",
    "OpClass",
    "op_info",
    "Instruction",
    "DataDef",
    "ObjectUnit",
    "Program",
    "Relocation",
    "RelocKind",
    "Symbol",
    "assemble",
    "disassemble",
    "encode",
    "decode",
    "generate_listing",
]
