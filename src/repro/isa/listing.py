"""Objdump-style program listings.

Renders a linked :class:`~repro.isa.program.Program` as an annotated
listing: addresses, encoded words, disassembly, symbol labels, and a
data-segment/symbol-table summary. Useful for debugging generated code
and for eyeballing what the FAC software support changed.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa.disassembler import disassemble
from repro.isa.encoding import encode
from repro.isa.program import Program


def generate_listing(program: Program, include_data: bool = True) -> str:
    """Render ``program`` as a text listing."""
    by_address: dict[int, list[str]] = {}
    for symbol in program.symbols.values():
        if symbol.section == "text":
            by_address.setdefault(symbol.address, []).append(symbol.name)

    lines = ["TEXT SEGMENT", ""]
    for inst in program.instructions:
        for name in by_address.get(inst.addr, ()):
            lines.append(f"{name}:")
        try:
            word = f"{encode(inst, inst.addr):08x}"
        except EncodingError:
            word = "????????"
        lines.append(f"  {inst.addr:08x}:  {word}  {disassemble(inst)}")

    if include_data:
        lines += ["", "DATA SYMBOLS", ""]
        data_symbols = sorted(
            (s for s in program.symbols.values() if s.section != "text"),
            key=lambda s: s.address,
        )
        for symbol in data_symbols:
            lines.append(
                f"  {symbol.address:08x}  {symbol.size:>7}  "
                f"{symbol.section:<5} {symbol.name}"
            )
        lines += [
            "",
            f"entry:    0x{program.entry:08x}",
            f"gp:       0x{program.gp_value:08x}",
            f"sp:       0x{program.sp_value:08x}",
            f"brk:      0x{program.brk:08x}",
            f"text:     {program.text_size} bytes",
        ]
    return "\n".join(lines)
