"""Opcode enumeration and per-opcode metadata.

The metadata table drives the assembler (operand formats), the timing
simulator (functional-unit class), and the memory system (access width,
signedness, and addressing mode). Addressing modes follow the paper's
extended MIPS:

* ``c`` -- register + 16-bit signed constant (``lw $t0, 8($sp)``)
* ``x`` -- register + register (``lwx $t0, $t1($t2)``, address = rs + index)
* ``p`` -- post-increment/decrement (``lwpi $t0, ($t1)+4``; the base
  register is incremented by the constant *after* the access, so the
  effective address is the raw base value -- these always predict
  correctly since no addition is needed to form the address)
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum, auto


class OpClass(IntEnum):
    """Functional-unit class, mapping to the latencies of Table 5."""

    ALU = auto()       # integer ALU: 1 cycle
    LOAD = auto()      # load/store unit
    STORE = auto()
    BRANCH = auto()    # resolved in EX by an integer ALU
    JUMP = auto()
    IMULT = auto()     # integer multiply: 3 cycles
    IDIV = auto()      # integer divide: 20 cycles, non-pipelined
    FPADD = auto()     # FP add/compare/convert: 2 cycles
    FPMULT = auto()    # FP multiply: 4 cycles
    FPDIV = auto()     # FP divide: 12 cycles, non-pipelined
    SYSTEM = auto()


class Op(IntEnum):
    """All opcodes of the extended-MIPS target."""

    # integer register-register
    ADD = auto(); ADDU = auto(); SUB = auto(); SUBU = auto()
    AND = auto(); OR = auto(); XOR = auto(); NOR = auto()
    SLT = auto(); SLTU = auto()
    SLLV = auto(); SRLV = auto(); SRAV = auto()
    # shifts by immediate
    SLL = auto(); SRL = auto(); SRA = auto()
    # register-immediate
    ADDI = auto(); ADDIU = auto(); ANDI = auto(); ORI = auto(); XORI = auto()
    SLTI = auto(); SLTIU = auto(); LUI = auto()
    # multiply / divide
    MULT = auto(); MULTU = auto(); DIV = auto(); DIVU = auto()
    MFHI = auto(); MFLO = auto()
    # loads, register+constant
    LB = auto(); LBU = auto(); LH = auto(); LHU = auto(); LW = auto()
    # stores, register+constant
    SB = auto(); SH = auto(); SW = auto()
    # loads/stores, register+register (extended mode)
    LBX = auto(); LBUX = auto(); LHX = auto(); LHUX = auto(); LWX = auto()
    SBX = auto(); SHX = auto(); SWX = auto()
    # post-increment loads/stores (extended mode)
    LWPI = auto(); SWPI = auto()
    # FP (double-precision) memory
    LDC1 = auto(); SDC1 = auto(); LDXC1 = auto(); SDXC1 = auto()
    # branches (no delay slots)
    BEQ = auto(); BNE = auto(); BLEZ = auto(); BGTZ = auto(); BLTZ = auto(); BGEZ = auto()
    # jumps
    J = auto(); JAL = auto(); JR = auto(); JALR = auto()
    # FP arithmetic (double precision)
    ADD_D = auto(); SUB_D = auto(); MUL_D = auto(); DIV_D = auto()
    NEG_D = auto(); ABS_D = auto(); MOV_D = auto(); SQRT_D = auto()
    # FP converts and int<->FP moves
    CVT_D_W = auto(); CVT_W_D = auto(); TRUNC_W_D = auto()
    MTC1 = auto(); MFC1 = auto()
    # FP compares and condition branches
    C_EQ_D = auto(); C_LT_D = auto(); C_LE_D = auto()
    BC1T = auto(); BC1F = auto()
    # system
    SYSCALL = auto(); BREAK = auto(); NOP = auto()


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode."""

    mnemonic: str
    fmt: str                 # assembler operand format key
    klass: OpClass
    is_load: bool = False
    is_store: bool = False
    mem_width: int = 0       # bytes accessed (0 for non-memory ops)
    mem_signed: bool = False
    mem_fp: bool = False
    mem_mode: str = ""       # '', 'c', 'x', or 'p'


# Operand format keys (see assembler):
#   r3     rd, rs, rt            sh     rd, rt, shamt
#   i2     rt, rs, imm           lui    rt, imm
#   md     rs, rt  (mult/div)    mf     rd      (mfhi/mflo)
#   mc     rt, imm(rs)           mx     rt, rindex(rs)
#   mp     rt, (rs)+imm
#   fmc    ft, imm(rs)           fmx    ft, rindex(rs)
#   b2     rs, rt, label         b1     rs, label
#   j      label                 jr     rs
#   jalr   rd, rs
#   f3     fd, fs, ft            f2     fd, fs
#   fcmp   fs, ft                fb     label
#   mtc1   rt, fs                mfc1   rd, fs
#   none   (no operands)

_ALU = OpClass.ALU

OP_INFO: dict[Op, OpInfo] = {
    Op.ADD: OpInfo("add", "r3", _ALU),
    Op.ADDU: OpInfo("addu", "r3", _ALU),
    Op.SUB: OpInfo("sub", "r3", _ALU),
    Op.SUBU: OpInfo("subu", "r3", _ALU),
    Op.AND: OpInfo("and", "r3", _ALU),
    Op.OR: OpInfo("or", "r3", _ALU),
    Op.XOR: OpInfo("xor", "r3", _ALU),
    Op.NOR: OpInfo("nor", "r3", _ALU),
    Op.SLT: OpInfo("slt", "r3", _ALU),
    Op.SLTU: OpInfo("sltu", "r3", _ALU),
    Op.SLLV: OpInfo("sllv", "r3", _ALU),
    Op.SRLV: OpInfo("srlv", "r3", _ALU),
    Op.SRAV: OpInfo("srav", "r3", _ALU),
    Op.SLL: OpInfo("sll", "sh", _ALU),
    Op.SRL: OpInfo("srl", "sh", _ALU),
    Op.SRA: OpInfo("sra", "sh", _ALU),
    Op.ADDI: OpInfo("addi", "i2", _ALU),
    Op.ADDIU: OpInfo("addiu", "i2", _ALU),
    Op.ANDI: OpInfo("andi", "i2", _ALU),
    Op.ORI: OpInfo("ori", "i2", _ALU),
    Op.XORI: OpInfo("xori", "i2", _ALU),
    Op.SLTI: OpInfo("slti", "i2", _ALU),
    Op.SLTIU: OpInfo("sltiu", "i2", _ALU),
    Op.LUI: OpInfo("lui", "lui", _ALU),
    Op.MULT: OpInfo("mult", "md", OpClass.IMULT),
    Op.MULTU: OpInfo("multu", "md", OpClass.IMULT),
    Op.DIV: OpInfo("div", "md", OpClass.IDIV),
    Op.DIVU: OpInfo("divu", "md", OpClass.IDIV),
    Op.MFHI: OpInfo("mfhi", "mf", _ALU),
    Op.MFLO: OpInfo("mflo", "mf", _ALU),
    Op.LB: OpInfo("lb", "mc", OpClass.LOAD, is_load=True, mem_width=1, mem_signed=True, mem_mode="c"),
    Op.LBU: OpInfo("lbu", "mc", OpClass.LOAD, is_load=True, mem_width=1, mem_mode="c"),
    Op.LH: OpInfo("lh", "mc", OpClass.LOAD, is_load=True, mem_width=2, mem_signed=True, mem_mode="c"),
    Op.LHU: OpInfo("lhu", "mc", OpClass.LOAD, is_load=True, mem_width=2, mem_mode="c"),
    Op.LW: OpInfo("lw", "mc", OpClass.LOAD, is_load=True, mem_width=4, mem_signed=True, mem_mode="c"),
    Op.SB: OpInfo("sb", "mc", OpClass.STORE, is_store=True, mem_width=1, mem_mode="c"),
    Op.SH: OpInfo("sh", "mc", OpClass.STORE, is_store=True, mem_width=2, mem_mode="c"),
    Op.SW: OpInfo("sw", "mc", OpClass.STORE, is_store=True, mem_width=4, mem_mode="c"),
    Op.LBX: OpInfo("lbx", "mx", OpClass.LOAD, is_load=True, mem_width=1, mem_signed=True, mem_mode="x"),
    Op.LBUX: OpInfo("lbux", "mx", OpClass.LOAD, is_load=True, mem_width=1, mem_mode="x"),
    Op.LHX: OpInfo("lhx", "mx", OpClass.LOAD, is_load=True, mem_width=2, mem_signed=True, mem_mode="x"),
    Op.LHUX: OpInfo("lhux", "mx", OpClass.LOAD, is_load=True, mem_width=2, mem_mode="x"),
    Op.LWX: OpInfo("lwx", "mx", OpClass.LOAD, is_load=True, mem_width=4, mem_signed=True, mem_mode="x"),
    Op.SBX: OpInfo("sbx", "mx", OpClass.STORE, is_store=True, mem_width=1, mem_mode="x"),
    Op.SHX: OpInfo("shx", "mx", OpClass.STORE, is_store=True, mem_width=2, mem_mode="x"),
    Op.SWX: OpInfo("swx", "mx", OpClass.STORE, is_store=True, mem_width=4, mem_mode="x"),
    Op.LWPI: OpInfo("lwpi", "mp", OpClass.LOAD, is_load=True, mem_width=4, mem_signed=True, mem_mode="p"),
    Op.SWPI: OpInfo("swpi", "mp", OpClass.STORE, is_store=True, mem_width=4, mem_mode="p"),
    Op.LDC1: OpInfo("ldc1", "fmc", OpClass.LOAD, is_load=True, mem_width=8, mem_fp=True, mem_mode="c"),
    Op.SDC1: OpInfo("sdc1", "fmc", OpClass.STORE, is_store=True, mem_width=8, mem_fp=True, mem_mode="c"),
    Op.LDXC1: OpInfo("ldxc1", "fmx", OpClass.LOAD, is_load=True, mem_width=8, mem_fp=True, mem_mode="x"),
    Op.SDXC1: OpInfo("sdxc1", "fmx", OpClass.STORE, is_store=True, mem_width=8, mem_fp=True, mem_mode="x"),
    Op.BEQ: OpInfo("beq", "b2", OpClass.BRANCH),
    Op.BNE: OpInfo("bne", "b2", OpClass.BRANCH),
    Op.BLEZ: OpInfo("blez", "b1", OpClass.BRANCH),
    Op.BGTZ: OpInfo("bgtz", "b1", OpClass.BRANCH),
    Op.BLTZ: OpInfo("bltz", "b1", OpClass.BRANCH),
    Op.BGEZ: OpInfo("bgez", "b1", OpClass.BRANCH),
    Op.J: OpInfo("j", "j", OpClass.JUMP),
    Op.JAL: OpInfo("jal", "j", OpClass.JUMP),
    Op.JR: OpInfo("jr", "jr", OpClass.JUMP),
    Op.JALR: OpInfo("jalr", "jalr", OpClass.JUMP),
    Op.ADD_D: OpInfo("add.d", "f3", OpClass.FPADD),
    Op.SUB_D: OpInfo("sub.d", "f3", OpClass.FPADD),
    Op.MUL_D: OpInfo("mul.d", "f3", OpClass.FPMULT),
    Op.DIV_D: OpInfo("div.d", "f3", OpClass.FPDIV),
    Op.NEG_D: OpInfo("neg.d", "f2", OpClass.FPADD),
    Op.ABS_D: OpInfo("abs.d", "f2", OpClass.FPADD),
    Op.MOV_D: OpInfo("mov.d", "f2", OpClass.FPADD),
    Op.SQRT_D: OpInfo("sqrt.d", "f2", OpClass.FPDIV),
    Op.CVT_D_W: OpInfo("cvt.d.w", "f2", OpClass.FPADD),
    Op.CVT_W_D: OpInfo("cvt.w.d", "f2", OpClass.FPADD),
    Op.TRUNC_W_D: OpInfo("trunc.w.d", "f2", OpClass.FPADD),
    Op.MTC1: OpInfo("mtc1", "mtc1", _ALU),
    Op.MFC1: OpInfo("mfc1", "mfc1", _ALU),
    Op.C_EQ_D: OpInfo("c.eq.d", "fcmp", OpClass.FPADD),
    Op.C_LT_D: OpInfo("c.lt.d", "fcmp", OpClass.FPADD),
    Op.C_LE_D: OpInfo("c.le.d", "fcmp", OpClass.FPADD),
    Op.BC1T: OpInfo("bc1t", "fb", OpClass.BRANCH),
    Op.BC1F: OpInfo("bc1f", "fb", OpClass.BRANCH),
    Op.SYSCALL: OpInfo("syscall", "none", OpClass.SYSTEM),
    Op.BREAK: OpInfo("break", "none", OpClass.SYSTEM),
    Op.NOP: OpInfo("nop", "none", _ALU),
}

MNEMONIC_TO_OP = {info.mnemonic: op for op, info in OP_INFO.items()}

MEMORY_OPS = frozenset(op for op, info in OP_INFO.items() if info.mem_width)
LOAD_OPS = frozenset(op for op, info in OP_INFO.items() if info.is_load)
STORE_OPS = frozenset(op for op, info in OP_INFO.items() if info.is_store)
BRANCH_OPS = frozenset(
    op for op, info in OP_INFO.items() if info.klass in (OpClass.BRANCH, OpClass.JUMP)
)
INDEXED_OPS = frozenset(op for op, info in OP_INFO.items() if info.mem_mode == "x")


def op_info(op: Op) -> OpInfo:
    """Return the static metadata record for ``op``."""
    return OP_INFO[op]
