"""Binary encoding of the extended-MIPS ISA.

The standard MIPS-I subset uses the real MIPS-I encodings (SPECIAL,
REGIMM, I- and J-formats, COP1). The paper's extensions -- indexed and
post-increment addressing -- have no MIPS-I encoding, so they are placed
in the SPECIAL2 (0x1C) major opcode with function codes documented below;
this mirrors how MIPS later added ``lwxc1``-style indexed accesses.

Branch and jump targets require the instruction's own address, so
``encode``/``decode`` accept a ``pc`` argument (the address of the
instruction itself; targets are encoded relative to ``pc + 4``).
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op

_SPECIAL_FUNCT = {
    Op.SLL: 0x00, Op.SRL: 0x02, Op.SRA: 0x03,
    Op.SLLV: 0x04, Op.SRLV: 0x06, Op.SRAV: 0x07,
    Op.JR: 0x08, Op.JALR: 0x09,
    Op.SYSCALL: 0x0C, Op.BREAK: 0x0D,
    Op.MFHI: 0x10, Op.MFLO: 0x12,
    Op.MULT: 0x18, Op.MULTU: 0x19, Op.DIV: 0x1A, Op.DIVU: 0x1B,
    Op.ADD: 0x20, Op.ADDU: 0x21, Op.SUB: 0x22, Op.SUBU: 0x23,
    Op.AND: 0x24, Op.OR: 0x25, Op.XOR: 0x26, Op.NOR: 0x27,
    Op.SLT: 0x2A, Op.SLTU: 0x2B,
}
_FUNCT_SPECIAL = {v: k for k, v in _SPECIAL_FUNCT.items()}

_IMM_OPCODE = {
    Op.BEQ: 0x04, Op.BNE: 0x05, Op.BLEZ: 0x06, Op.BGTZ: 0x07,
    Op.ADDI: 0x08, Op.ADDIU: 0x09, Op.SLTI: 0x0A, Op.SLTIU: 0x0B,
    Op.ANDI: 0x0C, Op.ORI: 0x0D, Op.XORI: 0x0E, Op.LUI: 0x0F,
    Op.LB: 0x20, Op.LH: 0x21, Op.LW: 0x23, Op.LBU: 0x24, Op.LHU: 0x25,
    Op.SB: 0x28, Op.SH: 0x29, Op.SW: 0x2B,
    Op.LDC1: 0x35, Op.SDC1: 0x3D,
}
_OPCODE_IMM = {v: k for k, v in _IMM_OPCODE.items()}

# SPECIAL2 function codes for the paper's extended addressing modes.
_X_FUNCT = {
    Op.LWX: 0x00, Op.LBX: 0x01, Op.LBUX: 0x02, Op.LHX: 0x03, Op.LHUX: 0x04,
    Op.SWX: 0x08, Op.SBX: 0x09, Op.SHX: 0x0A,
    Op.LDXC1: 0x10, Op.SDXC1: 0x11,
}
_FUNCT_X = {v: k for k, v in _X_FUNCT.items()}

# Post-increment modes live in otherwise-unused primary opcodes.
_PI_OPCODE = {Op.LWPI: 0x33, Op.SWPI: 0x37}
_OPCODE_PI = {v: k for k, v in _PI_OPCODE.items()}

_FP_FUNCT = {
    Op.ADD_D: 0x00, Op.SUB_D: 0x01, Op.MUL_D: 0x02, Op.DIV_D: 0x03,
    Op.SQRT_D: 0x04, Op.ABS_D: 0x05, Op.MOV_D: 0x06, Op.NEG_D: 0x07,
    Op.TRUNC_W_D: 0x0D, Op.CVT_W_D: 0x24,
    Op.C_EQ_D: 0x32, Op.C_LT_D: 0x3C, Op.C_LE_D: 0x3E,
}
_FUNCT_FP = {v: k for k, v in _FP_FUNCT.items()}

_COP1 = 0x11
_FMT_D = 0x11
_FMT_W = 0x14


def _imm16(value: int) -> int:
    if not -32768 <= value < 65536:
        raise EncodingError(f"immediate {value} does not fit in 16 bits")
    return value & 0xFFFF


def encode(inst: Instruction, pc: int = 0) -> int:
    """Encode ``inst`` (at address ``pc``) into a 32-bit word."""
    op = inst.op
    if op == Op.NOP:
        return 0
    if op in _SPECIAL_FUNCT:
        funct = _SPECIAL_FUNCT[op]
        if op in (Op.SLL, Op.SRL, Op.SRA):
            return (inst.rt << 16) | (inst.rd << 11) | ((inst.imm & 0x1F) << 6) | funct
        if op == Op.JR:
            return (inst.rs << 21) | funct
        if op == Op.JALR:
            return (inst.rs << 21) | (inst.rd << 11) | funct
        if op in (Op.MULT, Op.MULTU, Op.DIV, Op.DIVU):
            return (inst.rs << 21) | (inst.rt << 16) | funct
        if op in (Op.MFHI, Op.MFLO):
            return (inst.rd << 11) | funct
        if op in (Op.SYSCALL, Op.BREAK):
            return funct
        return (inst.rs << 21) | (inst.rt << 16) | (inst.rd << 11) | funct
    if op in (Op.BLTZ, Op.BGEZ):
        rt_code = 0 if op == Op.BLTZ else 1
        offset = _branch_offset(inst, pc)
        return (0x01 << 26) | (inst.rs << 21) | (rt_code << 16) | offset
    if op in (Op.J, Op.JAL):
        if inst.target is None:
            raise EncodingError("unresolved jump target")
        code = 0x02 if op == Op.J else 0x03
        return (code << 26) | ((inst.target >> 2) & 0x03FFFFFF)
    if op in _IMM_OPCODE:
        major = _IMM_OPCODE[op]
        if op in (Op.BEQ, Op.BNE):
            offset = _branch_offset(inst, pc)
            return (major << 26) | (inst.rs << 21) | (inst.rt << 16) | offset
        if op in (Op.BLEZ, Op.BGTZ):
            offset = _branch_offset(inst, pc)
            return (major << 26) | (inst.rs << 21) | offset
        if op == Op.LUI:
            return (major << 26) | (inst.rt << 16) | _imm16(inst.imm)
        if op in (Op.LDC1, Op.SDC1):
            return (major << 26) | (inst.rs << 21) | (inst.ft << 16) | _imm16(inst.imm)
        return (major << 26) | (inst.rs << 21) | (inst.rt << 16) | _imm16(inst.imm)
    if op in _X_FUNCT:
        funct = _X_FUNCT[op]
        value = inst.ft if op in (Op.LDXC1, Op.SDXC1) else inst.rt
        return (0x1C << 26) | (inst.rs << 21) | (inst.rx << 16) | (value << 11) | funct
    if op in _PI_OPCODE:
        major = _PI_OPCODE[op]
        return (major << 26) | (inst.rs << 21) | (inst.rt << 16) | _imm16(inst.imm)
    if op in _FP_FUNCT:
        funct = _FP_FUNCT[op]
        return (
            (_COP1 << 26) | (_FMT_D << 21) | (inst.ft << 16)
            | (inst.fs << 11) | (inst.fd << 6) | funct
        )
    if op == Op.CVT_D_W:
        return (_COP1 << 26) | (_FMT_W << 21) | (inst.fs << 11) | (inst.fd << 6) | 0x21
    if op == Op.MTC1:
        return (_COP1 << 26) | (0x04 << 21) | (inst.rt << 16) | (inst.fs << 11)
    if op == Op.MFC1:
        return (_COP1 << 26) | (0x00 << 21) | (inst.rd << 16) | (inst.fs << 11)
    if op in (Op.BC1T, Op.BC1F):
        flag = 1 if op == Op.BC1T else 0
        offset = _branch_offset(inst, pc)
        return (_COP1 << 26) | (0x08 << 21) | (flag << 16) | offset
    raise EncodingError(f"cannot encode {op.name}")


def _branch_offset(inst: Instruction, pc: int) -> int:
    if inst.target is None:
        raise EncodingError("unresolved branch target")
    delta = (inst.target - (pc + 4)) >> 2
    if not -32768 <= delta < 32768:
        raise EncodingError(f"branch displacement {delta} out of range")
    return delta & 0xFFFF


def decode(word: int, pc: int = 0) -> Instruction:
    """Decode a 32-bit word (at address ``pc``) into an instruction."""
    if word == 0:
        return Instruction(Op.NOP)
    major = (word >> 26) & 0x3F
    rs = (word >> 21) & 0x1F
    rt = (word >> 16) & 0x1F
    rd = (word >> 11) & 0x1F
    shamt = (word >> 6) & 0x1F
    funct = word & 0x3F
    imm = word & 0xFFFF
    simm = imm - 0x10000 if imm & 0x8000 else imm

    if major == 0x00:
        op = _FUNCT_SPECIAL.get(funct)
        if op is None:
            raise EncodingError(f"unknown SPECIAL funct 0x{funct:02x}")
        if op in (Op.SLL, Op.SRL, Op.SRA):
            return Instruction(op, rd=rd, rt=rt, imm=shamt)
        if op == Op.JR:
            return Instruction(op, rs=rs)
        if op == Op.JALR:
            return Instruction(op, rd=rd, rs=rs)
        if op in (Op.MULT, Op.MULTU, Op.DIV, Op.DIVU):
            return Instruction(op, rs=rs, rt=rt)
        if op in (Op.MFHI, Op.MFLO):
            return Instruction(op, rd=rd)
        if op in (Op.SYSCALL, Op.BREAK):
            return Instruction(op)
        return Instruction(op, rd=rd, rs=rs, rt=rt)
    if major == 0x01:
        op = Op.BLTZ if rt == 0 else Op.BGEZ
        return Instruction(op, rs=rs, target=pc + 4 + (simm << 2))
    if major in (0x02, 0x03):
        op = Op.J if major == 0x02 else Op.JAL
        target = (word & 0x03FFFFFF) << 2
        return Instruction(op, target=target)
    if major == 0x1C:
        op = _FUNCT_X.get(funct)
        if op is None:
            raise EncodingError(f"unknown SPECIAL2 funct 0x{funct:02x}")
        if op in (Op.LDXC1, Op.SDXC1):
            return Instruction(op, rs=rs, rx=rt, ft=rd)
        return Instruction(op, rs=rs, rx=rt, rt=rd)
    if major in _OPCODE_PI:
        return Instruction(_OPCODE_PI[major], rs=rs, rt=rt, imm=simm)
    if major == _COP1:
        fmt = rs
        if fmt == 0x00:
            return Instruction(Op.MFC1, rd=rt, fs=rd)
        if fmt == 0x04:
            return Instruction(Op.MTC1, rt=rt, fs=rd)
        if fmt == 0x08:
            op = Op.BC1T if rt & 1 else Op.BC1F
            return Instruction(op, target=pc + 4 + (simm << 2))
        if fmt == _FMT_W and funct == 0x21:
            return Instruction(Op.CVT_D_W, fd=shamt, fs=rd)
        if fmt == _FMT_D:
            op = _FUNCT_FP.get(funct)
            if op is None:
                raise EncodingError(f"unknown COP1.D funct 0x{funct:02x}")
            return Instruction(op, fd=shamt, fs=rd, ft=rt)
        raise EncodingError(f"unknown COP1 fmt 0x{fmt:02x}")
    op = _OPCODE_IMM.get(major)
    if op is None:
        raise EncodingError(f"unknown major opcode 0x{major:02x}")
    if op in (Op.BEQ, Op.BNE):
        return Instruction(op, rs=rs, rt=rt, target=pc + 4 + (simm << 2))
    if op in (Op.BLEZ, Op.BGTZ):
        return Instruction(op, rs=rs, target=pc + 4 + (simm << 2))
    if op == Op.LUI:
        return Instruction(op, rt=rt, imm=imm)
    if op in (Op.LDC1, Op.SDC1):
        return Instruction(op, ft=rt, rs=rs, imm=simm)
    if op in (Op.ANDI, Op.ORI, Op.XORI):
        return Instruction(op, rt=rt, rs=rs, imm=imm)
    return Instruction(op, rt=rt, rs=rs, imm=simm)
