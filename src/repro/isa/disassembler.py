"""Render instructions back to assembly text (round-trips the assembler)."""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OP_INFO
from repro.isa.registers import freg_name, reg_name


def disassemble(inst: Instruction) -> str:
    """Return the canonical assembly text for ``inst``."""
    info = OP_INFO[inst.op]
    mnemonic = info.mnemonic
    fmt = info.fmt
    if fmt == "r3":
        ops = f"{reg_name(inst.rd)}, {reg_name(inst.rs)}, {reg_name(inst.rt)}"
    elif fmt == "sh":
        ops = f"{reg_name(inst.rd)}, {reg_name(inst.rt)}, {inst.imm}"
    elif fmt == "i2":
        ops = f"{reg_name(inst.rt)}, {reg_name(inst.rs)}, {inst.imm}"
    elif fmt == "lui":
        ops = f"{reg_name(inst.rt)}, {inst.imm}"
    elif fmt == "md":
        ops = f"{reg_name(inst.rs)}, {reg_name(inst.rt)}"
    elif fmt == "mf":
        ops = reg_name(inst.rd)
    elif fmt == "mc":
        ops = f"{reg_name(inst.rt)}, {inst.imm}({reg_name(inst.rs)})"
    elif fmt == "fmc":
        ops = f"{freg_name(inst.ft)}, {inst.imm}({reg_name(inst.rs)})"
    elif fmt == "mx":
        ops = f"{reg_name(inst.rt)}, {reg_name(inst.rx)}({reg_name(inst.rs)})"
    elif fmt == "fmx":
        ops = f"{freg_name(inst.ft)}, {reg_name(inst.rx)}({reg_name(inst.rs)})"
    elif fmt == "mp":
        ops = f"{reg_name(inst.rt)}, ({reg_name(inst.rs)})+{inst.imm}"
    elif fmt == "b2":
        ops = f"{reg_name(inst.rs)}, {reg_name(inst.rt)}, {_target(inst)}"
    elif fmt == "b1":
        ops = f"{reg_name(inst.rs)}, {_target(inst)}"
    elif fmt == "j":
        ops = _target(inst)
    elif fmt == "jr":
        ops = reg_name(inst.rs)
    elif fmt == "jalr":
        ops = f"{reg_name(inst.rd)}, {reg_name(inst.rs)}"
    elif fmt == "f3":
        ops = f"{freg_name(inst.fd)}, {freg_name(inst.fs)}, {freg_name(inst.ft)}"
    elif fmt == "f2":
        ops = f"{freg_name(inst.fd)}, {freg_name(inst.fs)}"
    elif fmt == "fcmp":
        ops = f"{freg_name(inst.fs)}, {freg_name(inst.ft)}"
    elif fmt == "fb":
        ops = _target(inst)
    elif fmt == "mtc1":
        ops = f"{reg_name(inst.rt)}, {freg_name(inst.fs)}"
    elif fmt == "mfc1":
        ops = f"{reg_name(inst.rd)}, {freg_name(inst.fs)}"
    else:  # none
        ops = ""
    return f"{mnemonic} {ops}".strip()


def _target(inst: Instruction) -> str:
    if inst.label is not None and inst.target is None:
        return inst.label
    if inst.target is None:
        return "?"
    if inst.addr:
        return f"0x{inst.target:08x}"
    return f"@{inst.target}"
