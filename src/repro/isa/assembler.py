"""Two-pass assembler for the extended-MIPS target.

Produces a relocatable :class:`~repro.isa.program.ObjectUnit`. Supported
syntax (one statement per line, ``#`` comments)::

    .text / .data / .sdata          section switches (.sdata is placed in
                                    the gp-addressable global region)
    .globl name                     export a symbol
    .word v[, v...]   .half  .byte  initialized data (values or symbols)
    .double 3.14[, ...]             IEEE-754 doubles
    .asciiz "str"                   NUL-terminated string
    .space n                        n zero bytes
    .align n                        align to 2**n bytes
    .comm name, size[, align]       zero-initialized (bss) allocation

    label:  add $t0, $t1, $t2       plain instructions
            lw  $t0, 8($sp)         register+constant addressing
            lw  $t0, %gprel(g)($gp) gp-relative (GPREL16 relocation)
            lw  $t0, %lo(sym)($t1)  low half of a symbol address
            lwx $t0, $t1($t2)       register+register (addr = $t2 + $t1)
            lwpi $t0, ($t1)+4       post-increment addressing
            lui $t0, %hi(sym)

Pseudo-instructions: ``li``, ``la``, ``move``, ``b``, ``not``, ``neg``,
``beqz``, ``bnez``, ``bge``, ``bgt``, ``ble``, ``blt`` (and unsigned
variants), ``li.d``, ``l.d``/``s.d`` (aliases of ``ldc1``/``sdc1``),
``subi`` and ``subiu``.
"""

from __future__ import annotations

import re
import struct

from repro.errors import AssemblerError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import MNEMONIC_TO_OP, Op, OP_INFO
from repro.isa.program import DataDef, ObjectUnit, Relocation, RelocKind
from repro.isa.registers import Reg, parse_freg, parse_reg

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:")
_MEM_CONST_RE = re.compile(r"^(.*)\((\$\w+)\)$")
_MEM_POSTINC_RE = re.compile(r"^\((\$\w+)\)\s*\+?\s*(-?\w*)$")
_RELOC_RE = re.compile(r"^%(hi|lo|gprel)\((.+)\)$")
_SYM_EXPR_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*([+-]\s*\d+)?$")


def _parse_int(token: str, line: int) -> int:
    token = token.strip()
    try:
        if token.startswith("'") and token.endswith("'") and len(token) >= 3:
            body = token[1:-1]
            decoded = body.encode().decode("unicode_escape")
            if len(decoded) != 1:
                raise ValueError
            return ord(decoded)
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"bad integer {token!r}", line) from None


def _parse_sym_expr(token: str, line: int) -> tuple[str, int]:
    """Parse ``sym``, ``sym+8``, ``sym-4`` into (name, addend)."""
    match = _SYM_EXPR_RE.match(token.strip())
    if not match:
        raise AssemblerError(f"bad symbol expression {token!r}", line)
    addend = int(match.group(2).replace(" ", "")) if match.group(2) else 0
    return match.group(1), addend


class _Assembler:
    def __init__(self, source: str, name: str):
        self.source = source
        self.unit = ObjectUnit(name=name)
        self.section = "text"
        self.current_def: DataDef | None = None
        self.pending_align = 0
        self.anon_counter = 0
        self.dconst_counter = 0
        self.dconst_cache: dict[float, str] = {}
        # (instruction index, label, line) fix-ups for branch/jump targets
        self.branch_fixups: list[tuple[int, str, int]] = []

    # ------------------------------------------------------------------ #
    # driver

    def run(self) -> ObjectUnit:
        for line_no, raw in enumerate(self.source.splitlines(), start=1):
            self._line(raw, line_no)
        self._resolve_branches()
        return self.unit

    def _line(self, raw: str, line: int) -> None:
        text = self._strip_comment(raw).strip()
        while text:
            match = _LABEL_RE.match(text)
            if not match:
                break
            self._define_label(match.group(1), line)
            text = text[match.end():].strip()
        if not text:
            return
        if text.startswith("."):
            self._directive(text, line)
        else:
            self._instruction(text, line)

    @staticmethod
    def _strip_comment(raw: str) -> str:
        out = []
        in_str = False
        for ch in raw:
            if ch == '"':
                in_str = not in_str
            if ch == "#" and not in_str:
                break
            out.append(ch)
        return "".join(out)

    # ------------------------------------------------------------------ #
    # labels and data

    def _define_label(self, name: str, line: int) -> None:
        if self.section == "text":
            if name in self.unit.text_labels:
                raise AssemblerError(f"duplicate label {name!r}", line)
            self.unit.text_labels[name] = len(self.unit.text)
        else:
            definition = DataDef(
                name=name,
                payload=bytearray(),
                align=max(4, 1 << self.pending_align),
                gp_addressable=(self.section == "sdata"),
            )
            self.pending_align = 0
            self.unit.data.append(definition)
            self.current_def = definition

    def _data_def(self, line: int) -> DataDef:
        if self.section == "text":
            raise AssemblerError("data directive in .text section", line)
        if self.current_def is None:
            self.anon_counter += 1
            self.current_def = DataDef(
                name=f"{self.unit.name}$anon{self.anon_counter}",
                payload=bytearray(),
                align=max(4, 1 << self.pending_align),
                gp_addressable=(self.section == "sdata"),
            )
            self.pending_align = 0
            self.unit.data.append(self.current_def)
        return self.current_def

    def _directive(self, text: str, line: int) -> None:
        parts = text.split(None, 1)
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if name in (".text", ".data", ".sdata"):
            self.section = name[1:]
            self.current_def = None
        elif name == ".loc":
            # ``.loc file line``: subsequent text maps to this source
            # position (until the next ``.loc``). Mirrors the GNU as
            # directive; feeds Program.line_table through the linker.
            tokens = rest.split()
            if len(tokens) != 2:
                raise AssemblerError(".loc needs file and line", line)
            mark = (len(self.unit.text), tokens[0], _parse_int(tokens[1], line))
            marks = self.unit.line_marks
            if marks and marks[-1][0] == mark[0]:
                marks[-1] = mark  # no instructions since the last mark
            else:
                marks.append(mark)
        elif name == ".globl" or name == ".global":
            self.unit.exported.add(rest.strip())
        elif name == ".word":
            definition = self._data_def(line)
            for token in self._split_operands(rest):
                self._emit_word(definition, token, line)
        elif name == ".half":
            definition = self._data_def(line)
            for token in self._split_operands(rest):
                definition.payload += struct.pack("<H", _parse_int(token, line) & 0xFFFF)
        elif name == ".byte":
            definition = self._data_def(line)
            for token in self._split_operands(rest):
                definition.payload += struct.pack("<B", _parse_int(token, line) & 0xFF)
        elif name == ".double":
            definition = self._data_def(line)
            self._pad(definition, 8)
            for token in self._split_operands(rest):
                definition.payload += struct.pack("<d", float(token))
            definition.align = max(definition.align, 8)
        elif name == ".asciiz":
            definition = self._data_def(line)
            definition.payload += self._parse_string(rest, line) + b"\x00"
        elif name == ".ascii":
            definition = self._data_def(line)
            definition.payload += self._parse_string(rest, line)
        elif name == ".space":
            definition = self._data_def(line)
            definition.payload += bytes(_parse_int(rest, line))
        elif name == ".align":
            power = _parse_int(rest, line)
            if self.current_def is not None:
                self._pad(self.current_def, 1 << power)
                self.current_def.align = max(self.current_def.align, 1 << power)
            else:
                self.pending_align = max(self.pending_align, power)
        elif name == ".comm":
            tokens = self._split_operands(rest)
            if len(tokens) < 2:
                raise AssemblerError(".comm needs name, size[, align]", line)
            size = _parse_int(tokens[1], line)
            align = _parse_int(tokens[2], line) if len(tokens) > 2 else 8
            self.unit.data.append(
                DataDef(
                    name=tokens[0],
                    payload=bytearray(size),
                    align=align,
                    is_bss=True,
                    gp_addressable=(self.section == "sdata"),
                )
            )
        else:
            raise AssemblerError(f"unknown directive {name!r}", line)

    def _emit_word(self, definition: DataDef, token: str, line: int) -> None:
        token = token.strip()
        if re.match(r"^-?(0[xX])?[0-9a-fA-F]+$", token) or token.startswith("'"):
            definition.payload += struct.pack("<I", _parse_int(token, line) & 0xFFFFFFFF)
        else:
            symbol, addend = _parse_sym_expr(token, line)
            definition.relocs.append(
                Relocation(len(definition.payload), RelocKind.WORD32, symbol, addend)
            )
            definition.payload += b"\x00\x00\x00\x00"

    @staticmethod
    def _pad(definition: DataDef, alignment: int) -> None:
        excess = len(definition.payload) % alignment
        if excess:
            definition.payload += bytes(alignment - excess)

    @staticmethod
    def _parse_string(rest: str, line: int) -> bytes:
        rest = rest.strip()
        if not (rest.startswith('"') and rest.endswith('"') and len(rest) >= 2):
            raise AssemblerError(f"bad string literal {rest!r}", line)
        return rest[1:-1].encode().decode("unicode_escape").encode("latin-1")

    @staticmethod
    def _split_operands(rest: str) -> list[str]:
        """Split on commas that are not inside parentheses or quotes."""
        parts, depth, buf, in_str = [], 0, [], False
        for ch in rest:
            if ch == '"':
                in_str = not in_str
            if ch == "(" and not in_str:
                depth += 1
            elif ch == ")" and not in_str:
                depth -= 1
            if ch == "," and depth == 0 and not in_str:
                parts.append("".join(buf).strip())
                buf = []
            else:
                buf.append(ch)
        tail = "".join(buf).strip()
        if tail:
            parts.append(tail)
        return parts

    # ------------------------------------------------------------------ #
    # instructions

    def _instruction(self, text: str, line: int) -> None:
        if self.section != "text":
            raise AssemblerError("instruction outside .text", line)
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        operands = self._split_operands(parts[1]) if len(parts) > 1 else []
        if self._pseudo(mnemonic, operands, line):
            return
        op = MNEMONIC_TO_OP.get(mnemonic)
        if op is None:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line)
        self._emit(op, operands, line)

    def _emit(self, op: Op, operands: list[str], line: int) -> None:
        fmt = OP_INFO[op].fmt
        inst = Instruction(op)
        need = _FORMAT_ARITY[fmt]
        if len(operands) != need:
            raise AssemblerError(
                f"{OP_INFO[op].mnemonic} expects {need} operands, got {len(operands)}",
                line,
            )
        if fmt == "r3":
            inst.rd = parse_reg(operands[0], line)
            inst.rs = parse_reg(operands[1], line)
            inst.rt = parse_reg(operands[2], line)
        elif fmt == "sh":
            inst.rd = parse_reg(operands[0], line)
            inst.rt = parse_reg(operands[1], line)
            inst.imm = _parse_int(operands[2], line)
        elif fmt == "i2":
            inst.rt = parse_reg(operands[0], line)
            inst.rs = parse_reg(operands[1], line)
            self._immediate(inst, operands[2], line)
        elif fmt == "lui":
            inst.rt = parse_reg(operands[0], line)
            self._immediate(inst, operands[1], line)
        elif fmt == "md":
            inst.rs = parse_reg(operands[0], line)
            inst.rt = parse_reg(operands[1], line)
        elif fmt == "mf":
            inst.rd = parse_reg(operands[0], line)
        elif fmt in ("mc", "fmc"):
            if fmt == "mc":
                inst.rt = parse_reg(operands[0], line)
            else:
                inst.ft = parse_freg(operands[0], line)
            self._mem_const(inst, operands[1], line)
        elif fmt in ("mx", "fmx"):
            if fmt == "mx":
                inst.rt = parse_reg(operands[0], line)
            else:
                inst.ft = parse_freg(operands[0], line)
            match = _MEM_CONST_RE.match(operands[1].strip())
            if not match:
                raise AssemblerError(f"bad indexed operand {operands[1]!r}", line)
            inst.rx = parse_reg(match.group(1).strip(), line)
            inst.rs = parse_reg(match.group(2), line)
        elif fmt == "mp":
            inst.rt = parse_reg(operands[0], line)
            match = _MEM_POSTINC_RE.match(operands[1].strip())
            if not match:
                raise AssemblerError(f"bad post-increment operand {operands[1]!r}", line)
            inst.rs = parse_reg(match.group(1), line)
            inst.imm = _parse_int(match.group(2), line) if match.group(2) else 0
        elif fmt == "b2":
            inst.rs = parse_reg(operands[0], line)
            inst.rt = parse_reg(operands[1], line)
            inst.label = operands[2]
        elif fmt == "b1":
            inst.rs = parse_reg(operands[0], line)
            inst.label = operands[1]
        elif fmt == "j":
            inst.label = operands[0]
        elif fmt == "jr":
            inst.rs = parse_reg(operands[0], line)
        elif fmt == "jalr":
            inst.rd = parse_reg(operands[0], line)
            inst.rs = parse_reg(operands[1], line)
        elif fmt == "f3":
            inst.fd = parse_freg(operands[0], line)
            inst.fs = parse_freg(operands[1], line)
            inst.ft = parse_freg(operands[2], line)
        elif fmt == "f2":
            inst.fd = parse_freg(operands[0], line)
            inst.fs = parse_freg(operands[1], line)
        elif fmt == "fcmp":
            inst.fs = parse_freg(operands[0], line)
            inst.ft = parse_freg(operands[1], line)
        elif fmt == "fb":
            inst.label = operands[0]
        elif fmt == "mtc1":
            inst.rt = parse_reg(operands[0], line)
            inst.fs = parse_freg(operands[1], line)
        elif fmt == "mfc1":
            inst.rd = parse_reg(operands[0], line)
            inst.fs = parse_freg(operands[1], line)
        elif fmt == "none":
            pass
        else:  # pragma: no cover - format table is exhaustive
            raise AssemblerError(f"unhandled format {fmt!r}", line)
        if inst.label is not None:
            self.branch_fixups.append((len(self.unit.text), inst.label, line))
        self.unit.text.append(inst)

    def _immediate(self, inst: Instruction, token: str, line: int) -> None:
        """Parse an immediate operand which may carry a relocation."""
        token = token.strip()
        match = _RELOC_RE.match(token)
        if match:
            kind = {
                "hi": RelocKind.HI16,
                "lo": RelocKind.LO16,
                "gprel": RelocKind.GPREL16,
            }[match.group(1)]
            symbol, addend = _parse_sym_expr(match.group(2), line)
            self.unit.text_relocs.append(
                Relocation(len(self.unit.text), kind, symbol, addend)
            )
            inst.imm = 0
        else:
            inst.imm = _parse_int(token, line)

    def _mem_const(self, inst: Instruction, operand: str, line: int) -> None:
        match = _MEM_CONST_RE.match(operand.strip())
        if not match:
            raise AssemblerError(f"bad memory operand {operand!r}", line)
        inst.rs = parse_reg(match.group(2), line)
        offset = match.group(1).strip() or "0"
        self._immediate(inst, offset, line)

    # ------------------------------------------------------------------ #
    # pseudo-instructions

    def _pseudo(self, mnemonic: str, ops: list[str], line: int) -> bool:
        if mnemonic == "li":
            value = _parse_int(ops[1], line)
            self._expand_li(parse_reg(ops[0], line), value)
        elif mnemonic == "la":
            self._expand_la(parse_reg(ops[0], line), ops[1], line)
        elif mnemonic == "move":
            self._emit(Op.ADDU, [ops[0], ops[1], "$zero"], line)
        elif mnemonic == "b":
            self._emit(Op.BEQ, ["$zero", "$zero", ops[0]], line)
        elif mnemonic == "not":
            self._emit(Op.NOR, [ops[0], ops[1], "$zero"], line)
        elif mnemonic == "neg":
            self._emit(Op.SUB, [ops[0], "$zero", ops[1]], line)
        elif mnemonic == "beqz":
            self._emit(Op.BEQ, [ops[0], "$zero", ops[1]], line)
        elif mnemonic == "bnez":
            self._emit(Op.BNE, [ops[0], "$zero", ops[1]], line)
        elif mnemonic in ("blt", "bltu"):
            op = Op.SLT if mnemonic == "blt" else Op.SLTU
            self._emit(op, ["$at", ops[0], ops[1]], line)
            self._emit(Op.BNE, ["$at", "$zero", ops[2]], line)
        elif mnemonic in ("bge", "bgeu"):
            op = Op.SLT if mnemonic == "bge" else Op.SLTU
            self._emit(op, ["$at", ops[0], ops[1]], line)
            self._emit(Op.BEQ, ["$at", "$zero", ops[2]], line)
        elif mnemonic in ("bgt", "bgtu"):
            op = Op.SLT if mnemonic == "bgt" else Op.SLTU
            self._emit(op, ["$at", ops[1], ops[0]], line)
            self._emit(Op.BNE, ["$at", "$zero", ops[2]], line)
        elif mnemonic in ("ble", "bleu"):
            op = Op.SLT if mnemonic == "ble" else Op.SLTU
            self._emit(op, ["$at", ops[1], ops[0]], line)
            self._emit(Op.BEQ, ["$at", "$zero", ops[2]], line)
        elif mnemonic == "subi":
            self._emit(Op.ADDI, [ops[0], ops[1], str(-_parse_int(ops[2], line))], line)
        elif mnemonic == "subiu":
            self._emit(Op.ADDIU, [ops[0], ops[1], str(-_parse_int(ops[2], line))], line)
        elif mnemonic == "l.d":
            self._emit(Op.LDC1, ops, line)
        elif mnemonic == "s.d":
            self._emit(Op.SDC1, ops, line)
        elif mnemonic == "li.d":
            self._expand_lid(ops, line)
        else:
            return False
        return True

    def _expand_li(self, reg: int, value: int) -> None:
        value &= 0xFFFFFFFF
        signed = value - 0x100000000 if value & 0x80000000 else value
        if -32768 <= signed < 32768:
            self.unit.text.append(Instruction(Op.ADDIU, rt=reg, rs=Reg.ZERO, imm=signed))
        elif value <= 0xFFFF:
            self.unit.text.append(Instruction(Op.ORI, rt=reg, rs=Reg.ZERO, imm=value))
        else:
            self.unit.text.append(Instruction(Op.LUI, rt=reg, imm=(value >> 16) & 0xFFFF))
            if value & 0xFFFF:
                self.unit.text.append(
                    Instruction(Op.ORI, rt=reg, rs=reg, imm=value & 0xFFFF)
                )

    def _expand_la(self, reg: int, token: str, line: int) -> None:
        symbol, addend = _parse_sym_expr(token, line)
        self.unit.text_relocs.append(
            Relocation(len(self.unit.text), RelocKind.HI16, symbol, addend)
        )
        self.unit.text.append(Instruction(Op.LUI, rt=reg, imm=0))
        self.unit.text_relocs.append(
            Relocation(len(self.unit.text), RelocKind.LO16, symbol, addend)
        )
        self.unit.text.append(Instruction(Op.ADDIU, rt=reg, rs=reg, imm=0))

    def _expand_lid(self, ops: list[str], line: int) -> None:
        """``li.d $f4, 3.14`` loads from an auto-generated constant."""
        value = float(ops[1])
        label = self.dconst_cache.get(value)
        if label is None:
            self.dconst_counter += 1
            label = f"{self.unit.name}$dconst{self.dconst_counter}"
            self.dconst_cache[value] = label
            self.unit.data.append(
                DataDef(
                    name=label,
                    payload=bytearray(struct.pack("<d", value)),
                    align=8,
                    gp_addressable=True,
                )
            )
        freg = parse_freg(ops[0], line)
        self.unit.text_relocs.append(
            Relocation(len(self.unit.text), RelocKind.GPREL16, label, 0)
        )
        self.unit.text.append(Instruction(Op.LDC1, ft=freg, rs=Reg.GP, imm=0))

    # ------------------------------------------------------------------ #
    # branch resolution

    def _resolve_branches(self) -> None:
        for index, label, line in self.branch_fixups:
            inst = self.unit.text[index]
            target = self.unit.text_labels.get(label)
            if target is not None:
                inst.target = target  # local: instruction index
            elif inst.op in (Op.J, Op.JAL):
                self.unit.text_relocs.append(
                    Relocation(index, RelocKind.CALL26, label, 0)
                )
            else:
                raise AssemblerError(f"undefined branch target {label!r}", line)


_FORMAT_ARITY = {
    "r3": 3, "sh": 3, "i2": 3, "lui": 2, "md": 2, "mf": 1,
    "mc": 2, "mx": 2, "mp": 2, "fmc": 2, "fmx": 2,
    "b2": 3, "b1": 2, "j": 1, "jr": 1, "jalr": 2,
    "f3": 3, "f2": 2, "fcmp": 2, "fb": 1,
    "mtc1": 2, "mfc1": 2, "none": 0,
}


def assemble(source: str, name: str = "unit") -> ObjectUnit:
    """Assemble ``source`` text into a relocatable object unit."""
    return _Assembler(source, name).run()
