"""Per-instruction dataflow metadata for static analyses.

These helpers answer, from the :class:`~repro.isa.instruction.Instruction`
record alone, which integer registers an instruction reads and writes and
how it transfers control. They are the ISA-level foundation of the
fast-address-calculation static analyzer
(:mod:`repro.analysis.static_fac`), which must know exactly which
register defines reach each memory access.

Floating-point registers are deliberately out of scope: effective
addresses are always formed from integer registers, so FP dataflow never
influences predictability.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op, OpClass, OP_INFO
from repro.isa.registers import Reg

# Opcode groups, derived once from the metadata table.
_R3_OPS = frozenset(op for op, info in OP_INFO.items() if info.fmt == "r3")
_SHIFT_IMM_OPS = frozenset((Op.SLL, Op.SRL, Op.SRA))
_IMM_OPS = frozenset(op for op, info in OP_INFO.items() if info.fmt == "i2")
_BRANCH2_OPS = frozenset((Op.BEQ, Op.BNE))
_BRANCH1_OPS = frozenset((Op.BLEZ, Op.BGTZ, Op.BLTZ, Op.BGEZ))
_FP_BRANCH_OPS = frozenset((Op.BC1T, Op.BC1F))

CONDITIONAL_BRANCHES = _BRANCH2_OPS | _BRANCH1_OPS | _FP_BRANCH_OPS


def int_regs_read(inst: Instruction) -> tuple[int, ...]:
    """Integer registers whose values this instruction consumes."""
    op = inst.op
    info = OP_INFO[op]
    if op in _R3_OPS:
        return (inst.rs, inst.rt)
    if op in _SHIFT_IMM_OPS:
        return (inst.rt,)
    if op in _IMM_OPS:
        return (inst.rs,)
    if op == Op.LUI:
        return ()
    if op in (Op.MULT, Op.MULTU, Op.DIV, Op.DIVU):
        return (inst.rs, inst.rt)
    if info.mem_width:
        regs = [inst.rs]
        if info.mem_mode == "x":
            regs.append(inst.rx)
        if info.is_store and not info.mem_fp:
            regs.append(inst.rt)
        return tuple(regs)
    if op in _BRANCH2_OPS:
        return (inst.rs, inst.rt)
    if op in _BRANCH1_OPS:
        return (inst.rs,)
    if op in (Op.JR, Op.JALR):
        return (inst.rs,)
    if op == Op.MTC1:
        return (inst.rt,)
    if op == Op.SYSCALL:
        # service selector plus the widest argument set any service uses
        return (Reg.V0, Reg.A0)
    return ()


def int_regs_written(inst: Instruction) -> tuple[int, ...]:
    """Integer registers this instruction defines (excluding $zero)."""
    op = inst.op
    info = OP_INFO[op]
    written: tuple[int, ...]
    if op in _R3_OPS or op in _SHIFT_IMM_OPS or op in (Op.MFHI, Op.MFLO, Op.MFC1):
        written = (inst.rd,)
    elif op in _IMM_OPS or op == Op.LUI:
        written = (inst.rt,)
    elif info.is_load and not info.mem_fp:
        written = (inst.rt, inst.rs) if info.mem_mode == "p" else (inst.rt,)
    elif info.mem_width and info.mem_mode == "p":
        written = (inst.rs,)          # post-increment store updates the base
    elif op == Op.JAL:
        written = (Reg.RA,)
    elif op == Op.JALR:
        written = (inst.rd,)
    elif op == Op.SYSCALL:
        written = (Reg.V0,)           # sbrk returns the old break in $v0
    else:
        written = ()
    return tuple(r for r in written if r != Reg.ZERO)


def is_branch(inst: Instruction) -> bool:
    """Conditional branch (falls through when not taken)."""
    return inst.op in CONDITIONAL_BRANCHES


def is_call(inst: Instruction) -> bool:
    """Subroutine call that is expected to return to the next slot."""
    return inst.op in (Op.JAL, Op.JALR)


def is_return(inst: Instruction) -> bool:
    """``jr $ra`` -- the conventional function return."""
    return inst.op == Op.JR and inst.rs == Reg.RA


def is_indirect_jump(inst: Instruction) -> bool:
    """Computed transfer whose target is not in the instruction."""
    return inst.op == Op.JALR or (inst.op == Op.JR and inst.rs != Reg.RA)


def ends_block(inst: Instruction) -> bool:
    """True when control cannot simply fall into the next instruction
    without this instruction having a say (branch, jump, call, return,
    or trap)."""
    return (
        is_branch(inst)
        or inst.op in (Op.J, Op.JAL, Op.JR, Op.JALR, Op.BREAK)
    )


def static_targets(inst: Instruction) -> tuple[int, ...]:
    """Absolute branch/jump target addresses encoded in the instruction."""
    if inst.target is None:
        return ()
    if is_branch(inst) or inst.op in (Op.J, Op.JAL):
        return (inst.target,)
    return ()
