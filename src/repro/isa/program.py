"""Relocatable object units and fully-linked programs.

An :class:`ObjectUnit` is what the assembler produces from one source
file: a list of instructions with relocation records, data definitions,
and exported symbols. The linker (:mod:`repro.linker`) merges units,
lays out the global region, resolves relocations, and returns a
:class:`Program` ready for simulation.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from enum import Enum

from repro.isa.instruction import Instruction


class RelocKind(Enum):
    """Relocation kinds understood by the linker."""

    HI16 = "hi16"        # imm <- %hi(sym+addend), with low-half carry
    LO16 = "lo16"        # imm <- %lo(sym+addend)
    GPREL16 = "gprel16"  # imm <- (sym+addend) - gp_value
    CALL26 = "call26"    # target <- address of sym  (jal/j to extern)
    WORD32 = "word32"    # 32-bit data word <- address of sym + addend


@dataclass
class Relocation:
    """One pending fix-up against a symbol."""

    offset: int          # instruction index (text) or byte offset (data)
    kind: RelocKind
    symbol: str
    addend: int = 0


@dataclass
class DataDef:
    """One named datum in the data segment.

    ``gp_addressable`` is a *hint* from the compiler: the linker places all
    hinted symbols (and any symbol that is the target of a GPREL16
    relocation) into the global region near the global pointer.
    """

    name: str
    payload: bytearray
    align: int = 4
    relocs: list[Relocation] = field(default_factory=list)
    gp_addressable: bool = False
    is_bss: bool = False  # .comm / zero-initialized

    @property
    def size(self) -> int:
        return len(self.payload)


@dataclass
class Symbol:
    """A resolved symbol in a linked program."""

    name: str
    address: int
    size: int = 0
    section: str = "data"


@dataclass(frozen=True)
class FrameFacts:
    """Stack-frame layout facts for one compiled function.

    Recorded by the compiler's code generator and carried through the
    object unit into the linked program so static analyses (for example
    :mod:`repro.analysis.static_fac`) can reason about stack alignment
    without re-deriving the prologue.
    """

    name: str
    frame_size: int          # bytes subtracted from $sp (post rounding)
    frame_align: int         # the FacSoftwareOptions.frame_align in force
    variable_frame: bool     # prologue re-aligns $sp with an AND mask
    align_target: int        # alignment the prologue guarantees for $sp


@dataclass(frozen=True)
class LinkFacts:
    """Placement facts recorded by the linker.

    These are the linker-controlled inputs to fast-address-calculation
    predictability: where the gp-addressable global region landed, how it
    was aligned, and the initial stack pointer's guaranteed alignment.
    """

    gp_value: int            # value loaded into $gp
    gp_region_base: int      # base address of the global region
    gp_region_size: int      # bytes of gp-addressable data
    align_gp: bool           # paper Section 4 power-of-two relocation?
    sp_value: int            # initial stack pointer
    stack_align: int         # guaranteed alignment of the initial $sp
    # segment extents for the sanitizer's memory map (0 = unrecorded,
    # for LinkFacts built before these fields existed)
    data_base: int = 0       # first address of the data segment
    data_end: int = 0        # one past the last placed datum
    stack_top: int = 0       # exclusive upper bound of the stack region


@dataclass
class ObjectUnit:
    """Assembled but not yet linked translation unit."""

    name: str = "unit"
    text: list[Instruction] = field(default_factory=list)
    text_relocs: list[Relocation] = field(default_factory=list)
    data: list[DataDef] = field(default_factory=list)
    exported: set[str] = field(default_factory=set)
    # local text labels resolved to instruction indexes by the assembler
    text_labels: dict[str, int] = field(default_factory=dict)
    # layout metadata from the compiler (empty for hand-written assembly)
    frame_facts: dict[str, FrameFacts] = field(default_factory=dict)
    struct_facts: dict[str, int] = field(default_factory=dict)  # name -> size
    # source attribution from ``.loc`` directives: (inst index, file, line).
    # Each mark covers instructions until the next mark (or unit end).
    line_marks: list[tuple[int, str, int]] = field(default_factory=list)


class Program:
    """A fully linked program image.

    Attributes:
        instructions: text segment, one entry per word.
        text_base: address of ``instructions[0]``.
        data_image: list of ``(address, bytes)`` initialized spans.
        bss_spans: list of ``(address, size)`` zero-initialized spans.
        symbols: name -> :class:`Symbol`.
        entry: address of the first instruction to execute.
        gp_value: value the loader must place in ``$gp``.
        sp_value: initial stack pointer.
        brk: initial program break (start of the heap).
    """

    def __init__(
        self,
        instructions: list[Instruction],
        text_base: int,
        entry: int,
        gp_value: int,
        sp_value: int,
        brk: int,
    ):
        self.instructions = instructions
        self.text_base = text_base
        self.entry = entry
        self.gp_value = gp_value
        self.sp_value = sp_value
        self.brk = brk
        self.data_image: list[tuple[int, bytes]] = []
        self.bss_spans: list[tuple[int, int]] = []
        self.symbols: dict[str, Symbol] = {}
        # optional layout metadata for static analyses
        self.frame_facts: dict[str, FrameFacts] = {}
        self.struct_facts: dict[str, int] = {}
        self.link_facts: LinkFacts | None = None
        # merged source line table: (address, file, line), address-sorted.
        # A ``file`` of "" marks an attribution gap (hand-written startup
        # code, units assembled without ``.loc`` directives).
        self.line_table: list[tuple[int, str, int]] = []
        self._predecoded = None

    def predecoded(self):
        """The cached instruction-kind predecode of this program.

        Built on first use and shared by every CPU bound to this
        program; see :class:`repro.cpu.predecode.DecodedProgram`.
        """
        pre = self._predecoded
        if pre is None:
            from repro.cpu.predecode import DecodedProgram
            pre = self._predecoded = DecodedProgram(self)
        return pre

    def instruction_at(self, address: int) -> Instruction:
        """Fetch the instruction stored at ``address``."""
        index = (address - self.text_base) >> 2
        return self.instructions[index]

    @property
    def text_size(self) -> int:
        return len(self.instructions) * 4

    def symbol_address(self, name: str) -> int:
        return self.symbols[name].address

    def source_of(self, address: int) -> tuple[str, int] | None:
        """Map a text address to ``(file, line)`` via the line table.

        Returns None for addresses outside the text segment, in an
        attribution gap, or when the program was linked without any
        ``.loc`` information.
        """
        if not self.line_table:
            return None
        if not self.text_base <= address < self.text_base + self.text_size:
            return None
        index = bisect_right(self.line_table, (address, "￿", 0)) - 1
        if index < 0:
            return None
        _, file, line = self.line_table[index]
        if not file:
            return None
        return file, line

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Program {len(self.instructions)} insts, "
            f"entry=0x{self.entry:08x}, gp=0x{self.gp_value:08x}>"
        )
