"""Integer and floating-point register files and MIPS naming conventions.

Register conventions follow the MIPS O32 ABI used by the paper's compiler:
``$gp`` (r28) is the immutable global pointer, ``$sp`` (r29) the stack
pointer, ``$fp`` (r30) the frame pointer, ``$ra`` (r31) the return address.
Floating-point registers are modelled as 32 double-precision registers
(``$f0``..``$f31``); we do not model the MIPS-I even/odd pairing since it
is irrelevant to address-calculation behaviour.
"""

from __future__ import annotations

from repro.errors import AssemblerError


class Reg:
    """Symbolic names for the 32 integer registers."""

    ZERO = 0
    AT = 1
    V0, V1 = 2, 3
    A0, A1, A2, A3 = 4, 5, 6, 7
    T0, T1, T2, T3, T4, T5, T6, T7 = 8, 9, 10, 11, 12, 13, 14, 15
    S0, S1, S2, S3, S4, S5, S6, S7 = 16, 17, 18, 19, 20, 21, 22, 23
    T8, T9 = 24, 25
    K0, K1 = 26, 27
    GP = 28
    SP = 29
    FP = 30
    RA = 31


class FReg:
    """Symbolic names for selected floating-point registers."""

    F0 = 0
    F2 = 2
    F4 = 4
    F12 = 12  # first double argument register
    F14 = 14
    F20 = 20  # first callee-saved double


REG_NAMES = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

_NAME_TO_NUM = {name: num for num, name in enumerate(REG_NAMES)}
# Numeric forms $0..$31 are accepted too.
_NAME_TO_NUM.update({str(i): i for i in range(32)})
# Common aliases.
_NAME_TO_NUM["s8"] = 30

# Caller-saved (temporary) and callee-saved register sets, used by the
# compiler's register allocator.
CALLER_SAVED = (Reg.T0, Reg.T1, Reg.T2, Reg.T3, Reg.T4, Reg.T5, Reg.T6, Reg.T7, Reg.T8, Reg.T9)
CALLEE_SAVED = (Reg.S0, Reg.S1, Reg.S2, Reg.S3, Reg.S4, Reg.S5, Reg.S6, Reg.S7)
ARG_REGS = (Reg.A0, Reg.A1, Reg.A2, Reg.A3)

FP_TEMPS = (4, 6, 8, 10, 16, 18)
FP_CALLEE_SAVED = (20, 22, 24, 26, 28, 30)
FP_ARG_REGS = (12, 14)


def reg_name(num: int) -> str:
    """Canonical ``$name`` string for integer register ``num``."""
    return "$" + REG_NAMES[num]


def freg_name(num: int) -> str:
    """Canonical ``$fN`` string for floating-point register ``num``."""
    return f"$f{num}"


def parse_reg(token: str, line: int | None = None) -> int:
    """Parse ``$t0`` / ``$8`` / ``t0`` into an integer register number."""
    name = token[1:] if token.startswith("$") else token
    try:
        return _NAME_TO_NUM[name]
    except KeyError:
        raise AssemblerError(f"unknown register {token!r}", line) from None


def parse_freg(token: str, line: int | None = None) -> int:
    """Parse ``$f12`` / ``f12`` into a floating-point register number."""
    name = token[1:] if token.startswith("$") else token
    if name.startswith("f"):
        try:
            num = int(name[1:])
        except ValueError:
            raise AssemblerError(f"unknown FP register {token!r}", line) from None
        if 0 <= num < 32:
            return num
    raise AssemblerError(f"unknown FP register {token!r}", line)
