"""Persistent on-disk job queue with per-tenant quotas and fairness.

Every submission becomes one JSON file under ``<store>/serve/jobs/``,
written atomically (staged + ``os.replace``) on every state change, so
a service restart reloads exactly the queue it left: ``queued`` jobs
wait their turn again, and jobs that were mid-run when the process died
come back as ``queued`` too (the farm layer underneath is idempotent
against the artifact store, so re-running them costs only what the
crash actually lost).

Scheduling is fair across tenants, priority-ordered within one:

* :meth:`PersistentQueue.next_queued` round-robins tenants by
  least-recently-served, so one tenant flooding the queue cannot starve
  the others;
* within a tenant, jobs order by ``(-priority, seq)`` -- higher
  ``priority`` first, FIFO among equals (``seq`` is a monotonic
  admission counter, persisted so restarts keep the order).

Quotas bound *admission*: a tenant with ``quota`` jobs queued or
running gets :class:`QuotaExceeded` (the service maps it to HTTP 429),
while finished jobs stop counting -- the quota is about work in
flight, not history.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.serve.tracing import new_trace_id

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: States that count against a tenant's quota.
ACTIVE_STATES = (QUEUED, RUNNING)


class QuotaExceeded(Exception):
    """A tenant is at its in-flight job quota."""

    def __init__(self, tenant: str, quota: int):
        super().__init__(f"tenant {tenant!r} has {quota} jobs in flight "
                         f"(quota {quota})")
        self.tenant = tenant
        self.quota = quota


class PersistentQueue:
    """The serve queue; all state lives under ``root`` (see module doc).

    Not thread-safe by itself: the service serializes access on its
    event loop. Persistence, not locking, is this class's job.
    """

    def __init__(self, root: str | Path, quota: int = 8):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.quota = max(1, quota)
        self.records: dict[str, dict] = {}
        self._served: dict[str, int] = {}   # tenant -> last-served tick
        self._tick = 0
        self._seq = 0
        self._load()

    # ---------------------------------------------------------- #
    # persistence

    def _path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _persist(self, record: dict) -> None:
        path = self._path(record["job_id"])
        stage = path.with_suffix(".tmp")
        with open(stage, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(stage, path)

    def _load(self) -> None:
        for path in sorted(self.jobs_dir.glob("*.json")):
            try:
                with open(path) as handle:
                    record = json.load(handle)
            except (OSError, ValueError):
                continue
            changed = False
            if record.get("state") == RUNNING:
                # The previous process died mid-run; the farm layer is
                # store-idempotent, so simply run it again.
                record["state"] = QUEUED
                changed = True
            if "trace_id" not in record:
                # Records predating request tracing get an id minted at
                # reload so every downstream surface can rely on one.
                record["trace_id"] = new_trace_id()
                changed = True
            if "enqueued_at" not in record or record.get("state") == QUEUED:
                # Monotonic timestamps do not survive a process restart,
                # so re-stamp anything still waiting: queue-wait restarts
                # from "now", which under-reports rather than fabricates.
                record["enqueued_at"] = time.monotonic()
                changed = True
            if changed:
                self._persist(record)
            self.records[record["job_id"]] = record
            self._seq = max(self._seq, int(record.get("seq", 0)))

    # ---------------------------------------------------------- #
    # admission

    def active_jobs(self, tenant: str) -> int:
        return sum(1 for r in self.records.values()
                   if r["tenant"] == tenant and r["state"] in ACTIVE_STATES)

    def submit(self, submission: dict,
               trace_id: str | None = None,
               ingress_seconds: float | None = None) -> dict:
        """Admit one normalized submission; raises :class:`QuotaExceeded`.

        ``trace_id`` is the request-scoped id resolved at HTTP ingress
        (one is minted for direct/CLI submissions); ``enqueued_at`` is a
        *monotonic* timestamp so the worker can measure queue wait
        rather than infer it from wall clocks.
        """
        tenant = submission["tenant"]
        if self.active_jobs(tenant) >= self.quota:
            raise QuotaExceeded(tenant, self.quota)
        self._seq += 1
        job_id = f"job-{self._seq:06d}"
        record = {
            "job_id": job_id,
            "seq": self._seq,
            "tenant": tenant,
            "state": QUEUED,
            "priority": submission["priority"],
            "created": time.time(),
            "enqueued_at": time.monotonic(),
            "trace_id": trace_id or new_trace_id(),
            "submission": submission,
            "result": None,
        }
        if ingress_seconds is not None:
            record["ingress_seconds"] = round(ingress_seconds, 6)
        self.records[job_id] = record
        self._persist(record)
        return record

    # ---------------------------------------------------------- #
    # scheduling

    def next_queued(self) -> dict | None:
        """Pick (without dequeuing) the next job to run, fairly.

        The tenant served longest ago wins the round; its best job is
        the highest-priority, oldest one. Call :meth:`mark` with
        ``state=RUNNING`` to actually claim it.
        """
        queued = [r for r in self.records.values() if r["state"] == QUEUED]
        if not queued:
            return None
        tenants = sorted({r["tenant"] for r in queued},
                         key=lambda t: (self._served.get(t, -1), t))
        tenant = tenants[0]
        best = min((r for r in queued if r["tenant"] == tenant),
                   key=lambda r: (-r["priority"], r["seq"]))
        self._tick += 1
        self._served[tenant] = self._tick
        return best

    def mark(self, job_id: str, state: str,
             result: dict | None = None) -> dict:
        """Transition one job and persist the change."""
        record = self.records[job_id]
        record["state"] = state
        if result is not None:
            record["result"] = result
        self._persist(record)
        return record

    # ---------------------------------------------------------- #
    # introspection

    def get(self, job_id: str) -> dict | None:
        return self.records.get(job_id)

    def depth(self) -> dict:
        """Per-state job counts (the health endpoint's queue view)."""
        counts = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
        for record in self.records.values():
            counts[record["state"]] = counts.get(record["state"], 0) + 1
        counts["total"] = len(self.records)
        return counts

    def depth_by_tenant(self) -> dict:
        """Per-tenant per-state counts, tenants sorted for determinism."""
        tenants: dict[str, dict] = {}
        for record in self.records.values():
            row = tenants.setdefault(
                record["tenant"],
                {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0, "total": 0})
            row[record["state"]] = row.get(record["state"], 0) + 1
            row["total"] += 1
        return {t: tenants[t] for t in sorted(tenants)}

    def jobs(self, tenant: str | None = None) -> list[dict]:
        rows = [r for r in self.records.values()
                if tenant is None or r["tenant"] == tenant]
        return sorted(rows, key=lambda r: r["seq"])
