"""Wire schemas of the serve API (``repro.serve-*/1``).

Every document the service accepts or produces carries a ``schema``
tag, validated with the same JSON-Schema subset the lint/sanitize/farm
surfaces use (:func:`repro.analysis.reporting.validate_against_schema`).
Submissions are validated *then* normalized: optional fields get their
defaults filled in, so the rest of the stack (queue records, job
planning, fingerprints) only ever sees one canonical shape -- which is
also what makes "the same request" a store hit regardless of which
optional keys the client spelled out.
"""

from __future__ import annotations

import re

from repro.analysis.reporting import validate_against_schema

SERVE_JOB_SCHEMA_VERSION = "repro.serve-job/1"
SERVE_ERROR_SCHEMA_VERSION = "repro.serve-error/1"
SERVE_HEALTH_SCHEMA_VERSION = "repro.serve-health/1"

#: Ceiling on per-submission dynamic instructions: one request may not
#: monopolize a worker the way an offline sweep may.
MAX_SERVE_INSTRUCTIONS = 10_000_000

#: Submissions larger than this are rejected before parsing (DoS guard).
MAX_BODY_BYTES = 1 << 20

SERVE_JOB_SCHEMA = {
    "type": "object",
    "required": ["schema", "tenant"],
    "properties": {
        "schema": {"enum": [SERVE_JOB_SCHEMA_VERSION]},
        "tenant": {"type": "string"},
        "name": {"type": "string"},
        "benchmark": {"type": "string"},
        "source": {"type": "string"},
        "software": {"type": "boolean"},
        "machines": {"type": "array", "items": {"type": "string"}},
        "analysis": {"type": "boolean"},
        "priority": {"type": "integer"},
        "max_instructions": {"type": "integer"},
    },
}

SERVE_ERROR_SCHEMA = {
    "type": "object",
    "required": ["schema", "error", "detail", "problems"],
    "properties": {
        "schema": {"enum": [SERVE_ERROR_SCHEMA_VERSION]},
        "error": {"type": "string"},
        "detail": {"type": "string"},
        "problems": {"type": "array", "items": {"type": "string"}},
    },
}


def error_doc(error: str, detail: str,
              problems: list[str] | None = None) -> dict:
    """A ``repro.serve-error/1`` body (every non-2xx response is one)."""
    return {
        "schema": SERVE_ERROR_SCHEMA_VERSION,
        "error": error,
        "detail": detail,
        "problems": list(problems or []),
    }


def normalize_submission(payload, machines: dict,
                         benchmarks) -> tuple[dict | None, dict | None]:
    """Validate and canonicalize one submission.

    Returns ``(submission, None)`` on success -- a dict with every
    optional field defaulted -- or ``(None, error_doc)`` describing
    what was wrong. ``machines`` is the label -> config map the service
    accepts (:data:`repro.experiments.common.MACHINES`); ``benchmarks``
    the registered benchmark names.
    """
    if not isinstance(payload, dict):
        return None, error_doc(
            "invalid-submission", "submission body must be a JSON object",
            [f"$: expected object, got {type(payload).__name__}"])
    problems = validate_against_schema(payload, SERVE_JOB_SCHEMA)
    if problems:
        return None, error_doc(
            "invalid-submission",
            f"submission does not validate against "
            f"{SERVE_JOB_SCHEMA_VERSION}", problems)

    has_benchmark = bool(payload.get("benchmark"))
    has_source = bool(payload.get("source"))
    if has_benchmark == has_source:
        return None, error_doc(
            "invalid-submission",
            "exactly one of 'benchmark' and 'source' is required",
            ["$: pass a registered benchmark name or inline MiniC source"])
    if has_benchmark and payload["benchmark"] not in benchmarks:
        return None, error_doc(
            "unknown-benchmark",
            f"benchmark {payload['benchmark']!r} is not registered",
            [f"$.benchmark: choose from {sorted(benchmarks)}"])

    labels = payload.get("machines")
    if labels is None:
        labels = ["base"]
    unknown = [m for m in labels if m not in machines]
    if unknown:
        return None, error_doc(
            "unknown-machine",
            f"unknown machine flavour(s) {unknown}",
            [f"$.machines: choose from {sorted(machines)}"])
    if not payload.get("analysis", False) and not labels:
        return None, error_doc(
            "invalid-submission", "nothing to compute",
            ["$: request at least one machine or 'analysis': true"])

    budget = int(payload.get("max_instructions", MAX_SERVE_INSTRUCTIONS))
    if not 0 < budget <= MAX_SERVE_INSTRUCTIONS:
        return None, error_doc(
            "invalid-submission",
            f"max_instructions must be in 1..{MAX_SERVE_INSTRUCTIONS}",
            [f"$.max_instructions: got {budget}"])

    if has_benchmark:
        name = payload["benchmark"]
    else:
        # The display name flows into job ids and worker scratch-file
        # names, so restrict it to a filesystem-safe slug. Identity is
        # unaffected: inline artifacts key on content, never name.
        name = re.sub(r"[^A-Za-z0-9._-]+", "-",
                      payload.get("name") or "inline").strip("-.")[:64]
        name = name or "inline"
    submission = {
        "schema": SERVE_JOB_SCHEMA_VERSION,
        "tenant": payload["tenant"],
        "name": name,
        "benchmark": payload.get("benchmark"),
        "source": payload.get("source"),
        "software": bool(payload.get("software", False)),
        "machines": sorted(set(labels)),
        "analysis": bool(payload.get("analysis", False)),
        "priority": int(payload.get("priority", 0)),
        "max_instructions": budget,
    }
    return submission, None
