"""Declarative SLOs over ``repro.serve-metrics/1`` snapshots.

An objectives file is TOML::

    [availability]
    objective = 0.99                # success-fraction target

    [[availability.windows]]        # multi-window burn-rate alerting
    seconds = 3600
    max_burn_rate = 14.4

    [[availability.windows]]
    seconds = 21600
    max_burn_rate = 6.0

    [[latency]]
    name = "warm_p99"
    metric = "jobs.e2e.warm"        # a TimingHistogram registry path
    quantile = 0.99
    threshold_seconds = 2.0

**Burn rate** is the classic SRE ratio: ``error_rate / (1 - objective)``
— burn 1.0 spends the error budget exactly at the objective's pace,
burn N spends it N times too fast. An availability rule *breaches* only
when **every** configured window exceeds its ``max_burn_rate`` (the
multi-window AND filters blips: a short spike trips the short window
but not the long one, a slow leak trips the long window but the short
window has already recovered).

Evaluation consumes one or more ``repro.serve-metrics/1`` documents
(``GET /v1/metrics`` or the smoke tool's artifact). With a series, each
window is computed from the *delta* between the newest snapshot and the
oldest one inside the window, using ``meta.uptime_seconds`` as the time
axis; a single snapshot means every window clamps to the whole run.
Errors are HTTP 5xx — 429s are the quota system working as intended,
not unavailability.

``repro slo`` exits 0 when healthy, 1 on breach, 2 on usage errors.
"""

from __future__ import annotations

import json
import tomllib

from repro.obs.metrics import TimingHistogram

SLO_REPORT_SCHEMA_VERSION = "repro.slo-report/1"

SLO_REPORT_SCHEMA = {
    "type": "object",
    "required": ["schema", "breached", "results"],
    "properties": {
        "schema": {"enum": [SLO_REPORT_SCHEMA_VERSION]},
        "breached": {"type": "boolean"},
        "results": {"type": "array", "items": {"type": "object"}},
    },
}


class SloConfigError(ValueError):
    """The objectives file is malformed."""


def load_objectives(path) -> dict:
    """Parse and structurally validate one TOML objectives file."""
    with open(path, "rb") as handle:
        try:
            doc = tomllib.load(handle)
        except tomllib.TOMLDecodeError as exc:
            raise SloConfigError(f"{path}: invalid TOML: {exc}") from exc
    availability = doc.get("availability")
    if availability is not None:
        objective = availability.get("objective")
        if not isinstance(objective, (int, float)) \
                or not 0.0 < float(objective) < 1.0:
            raise SloConfigError(
                f"{path}: availability.objective must be in (0, 1), "
                f"got {objective!r}")
        windows = availability.get("windows") or []
        if not windows:
            raise SloConfigError(
                f"{path}: availability needs at least one [[availability"
                ".windows]] entry")
        for window in windows:
            if float(window.get("seconds", 0)) <= 0:
                raise SloConfigError(
                    f"{path}: window seconds must be positive")
            if float(window.get("max_burn_rate", 0)) <= 0:
                raise SloConfigError(
                    f"{path}: window max_burn_rate must be positive")
    for rule in doc.get("latency") or []:
        for field in ("name", "metric", "quantile", "threshold_seconds"):
            if field not in rule:
                raise SloConfigError(
                    f"{path}: latency rule missing {field!r}: {rule!r}")
        if not 0.0 < float(rule["quantile"]) <= 1.0:
            raise SloConfigError(
                f"{path}: latency quantile must be in (0, 1], "
                f"got {rule['quantile']!r}")
    if availability is None and not doc.get("latency"):
        raise SloConfigError(f"{path}: no objectives defined")
    return doc


def load_snapshots(paths) -> list[dict]:
    """Load serve-metrics documents, ordered by uptime (oldest first)."""
    snapshots = []
    for path in paths:
        with open(path) as handle:
            doc = json.load(handle)
        if doc.get("schema") != "repro.serve-metrics/1":
            raise SloConfigError(
                f"{path}: not a repro.serve-metrics/1 document "
                f"(schema={doc.get('schema')!r})")
        snapshots.append(doc)
    snapshots.sort(key=lambda d: d["meta"].get("uptime_seconds", 0.0))
    return snapshots


# ------------------------------------------------------------------ #
# counter / histogram arithmetic over snapshot payloads

def _request_totals(snapshot: dict) -> tuple[int, int]:
    """(requests, errors) from the http.requests counter forest."""
    requests = errors = 0
    for path, payload in snapshot["metrics"]["metrics"].items():
        if not path.startswith("http.requests."):
            continue
        count = int(payload.get("count", 0))
        requests += count
        status = path.rsplit(".", 1)[-1]
        if status.isdigit() and int(status) >= 500:
            errors += count
    return requests, errors


def _window_base(snapshots: list[dict], seconds: float) -> dict | None:
    """Oldest snapshot inside ``seconds`` of the newest (None = from 0).

    Returns None when the window spans the whole series — the delta is
    then taken against an implicit empty snapshot at uptime 0.
    """
    latest = snapshots[-1]["meta"].get("uptime_seconds", 0.0)
    cutoff = latest - seconds
    base = None
    for snapshot in snapshots[:-1]:
        uptime = snapshot["meta"].get("uptime_seconds", 0.0)
        if uptime <= cutoff:
            base = snapshot        # newest snapshot at or before the cutoff
    return base


def _timing_payload(snapshot: dict, metric: str) -> dict | None:
    payload = snapshot["metrics"]["metrics"].get(metric)
    if payload is None or payload.get("type") != "timing":
        return None
    return payload


def _timing_delta(new: dict, old: dict | None) -> dict:
    """``new - old`` on a timing payload; conservative min/max.

    Subtraction loses the exact min/max of the delta population, so the
    result keeps ``new``'s bounds — quantiles stay upper-bound
    conservative, which is the direction SLO gating needs.
    """
    if old is None:
        return new
    buckets = dict(new.get("buckets", {}))
    for key, amount in (old.get("buckets") or {}).items():
        buckets[key] = buckets.get(key, 0) - amount
        if buckets[key] <= 0:
            buckets.pop(key)
    return {
        "type": "timing",
        "count": max(0, int(new["count"]) - int(old["count"])),
        "sum": max(0.0, float(new["sum"]) - float(old["sum"])),
        "min": new.get("min", 0.0),
        "max": new.get("max", 0.0),
        "buckets": buckets,
    }


def _payload_quantile(payload: dict, q: float) -> float:
    """Conservative quantile straight from a timing payload."""
    count = int(payload.get("count", 0))
    if count == 0:
        return 0.0
    rank = q * count
    running = 0
    estimate = 0.0
    for index, amount in sorted(
            (int(k), v) for k, v in payload.get("buckets", {}).items()):
        running += amount
        if running >= rank:
            estimate = TimingHistogram.bucket_upper_bound(index)
            break
    else:
        estimate = float(payload.get("max", 0.0))
    maximum = float(payload.get("max", 0.0))
    if maximum:
        estimate = min(estimate, maximum)
    return estimate


# ------------------------------------------------------------------ #
# evaluation

def evaluate(objectives: dict, snapshots: list[dict],
             window_override: float | None = None) -> dict:
    """Evaluate objectives against a snapshot series; the report doc."""
    if not snapshots:
        raise SloConfigError("no metrics snapshots to evaluate")
    latest = snapshots[-1]
    results: list[dict] = []

    availability = objectives.get("availability")
    if availability is not None:
        objective = float(availability["objective"])
        budget = 1.0 - objective
        windows = availability.get("windows") or []
        if window_override is not None:
            windows = [{"seconds": window_override,
                        "max_burn_rate":
                            min(float(w["max_burn_rate"]) for w in windows)}]
        rows = []
        for window in windows:
            seconds = float(window["seconds"])
            max_burn = float(window["max_burn_rate"])
            base = _window_base(snapshots, seconds)
            total_new, errors_new = _request_totals(latest)
            total_old, errors_old = _request_totals(base) if base else (0, 0)
            requests = max(0, total_new - total_old)
            errors = max(0, errors_new - errors_old)
            error_rate = errors / requests if requests else 0.0
            burn = error_rate / budget
            rows.append({
                "seconds": seconds,
                "requests": requests,
                "errors": errors,
                "error_rate": round(error_rate, 6),
                "burn_rate": round(burn, 4),
                "max_burn_rate": max_burn,
                "breached": requests > 0 and burn > max_burn,
            })
        results.append({
            "name": "availability",
            "kind": "availability",
            "objective": objective,
            "windows": rows,
            # The multi-window AND: every window must be burning too
            # fast before the rule counts as breached.
            "breached": bool(rows) and all(r["breached"] for r in rows),
        })

    for rule in objectives.get("latency") or []:
        metric = rule["metric"]
        quantile = float(rule["quantile"])
        threshold = float(rule["threshold_seconds"])
        payload = _timing_payload(latest, metric)
        if payload is None:
            results.append({
                "name": rule["name"],
                "kind": "latency",
                "metric": metric,
                "quantile": quantile,
                "threshold_seconds": threshold,
                "observed_seconds": None,
                "count": 0,
                "breached": False,
                "note": "metric absent from snapshot",
            })
            continue
        if window_override is not None:
            base = _window_base(snapshots, window_override)
            payload = _timing_delta(
                payload, _timing_payload(base, metric) if base else None)
        observed = _payload_quantile(payload, quantile)
        count = int(payload.get("count", 0))
        results.append({
            "name": rule["name"],
            "kind": "latency",
            "metric": metric,
            "quantile": quantile,
            "threshold_seconds": threshold,
            "observed_seconds": round(observed, 6),
            "count": count,
            "breached": count > 0 and observed > threshold,
        })

    return {
        "schema": SLO_REPORT_SCHEMA_VERSION,
        "uptime_seconds": latest["meta"].get("uptime_seconds", 0.0),
        "snapshots": len(snapshots),
        "results": results,
        "breached": any(r["breached"] for r in results),
    }


def format_report(report: dict) -> str:
    """Human-readable evaluation summary for the CLI."""
    lines = [f"SLO report over {report['snapshots']} snapshot(s), "
             f"uptime {report['uptime_seconds']:.1f}s"]
    for result in report["results"]:
        flag = "BREACH" if result["breached"] else "ok"
        if result["kind"] == "availability":
            lines.append(f"  [{flag}] availability >= "
                         f"{result['objective']:.4g}")
            for row in result["windows"]:
                state = "over" if row["breached"] else "within"
                lines.append(
                    f"         window {row['seconds']:.0f}s: "
                    f"{row['errors']}/{row['requests']} errors, "
                    f"burn {row['burn_rate']:.2f} "
                    f"({state} max {row['max_burn_rate']:.2f})")
        else:
            observed = result["observed_seconds"]
            shown = "n/a" if observed is None else f"{observed:.4f}s"
            lines.append(
                f"  [{flag}] {result['name']}: p{result['quantile'] * 100:g} "
                f"of {result['metric']} = {shown} "
                f"(threshold {result['threshold_seconds']}s, "
                f"n={result['count']})")
            if result.get("note"):
                lines.append(f"         note: {result['note']}")
    lines.append("status: " + ("BREACHED" if report["breached"] else
                               "all objectives met"))
    return "\n".join(lines)
