"""Server-wide metrics for ``repro serve``: registry, JSON, Prometheus.

:class:`ServeMetrics` wraps one :class:`~repro.obs.metrics.MetricsRegistry`
with the serving layer's vocabulary — request counts per route/status,
per-route latency, end-to-end and queue-wait timings, farm cache hit
ratio, per-tenant throttles, SSE stream churn — and exports it two ways:

* ``GET /v1/metrics`` — a schema-tagged ``repro.serve-metrics/1`` JSON
  document: live gauges (queue depth, SSE subscribers, worker liveness)
  plus the full ``repro.metrics/1`` snapshot, machine-mergeable and
  consumable by ``repro slo``;
* ``GET /metrics`` — Prometheus text exposition (format 0.0.4), with
  :class:`~repro.obs.metrics.TimingHistogram` rendered as native
  cumulative ``_bucket``/``_sum``/``_count`` series.

Route labels are *templates* ("GET /v1/jobs/{id}"), never concrete
paths, so cardinality is bounded by the route table regardless of
traffic. :func:`validate_prometheus_text` is the in-repo exposition
linter shared by the tests, the smoke tool, and CI.
"""

from __future__ import annotations

import re
import time

from repro.obs.metrics import (
    SNAPSHOT_SCHEMA,
    MetricsRegistry,
    TimingHistogram,
)

SERVE_METRICS_SCHEMA_VERSION = "repro.serve-metrics/1"

#: Structural schema for the ``/v1/metrics`` document (the JSON-Schema
#: subset understood by repro.analysis.reporting.validate_against_schema).
SERVE_METRICS_SCHEMA = {
    "type": "object",
    "required": ["schema", "meta", "gauges", "metrics"],
    "properties": {
        "schema": {"enum": [SERVE_METRICS_SCHEMA_VERSION]},
        "meta": {
            "type": "object",
            "required": ["uptime_seconds"],
            "properties": {"uptime_seconds": {"type": "number"}},
        },
        "gauges": {
            "type": "object",
            "required": ["queue", "tenants", "sse_active", "worker"],
            "properties": {
                "queue": {"type": "object"},
                "tenants": {"type": "object"},
                "sse_active": {"type": "integer"},
                "worker": {"type": "object"},
            },
        },
        "metrics": SNAPSHOT_SCHEMA,
    },
}

#: The route templates the service can attribute a request to. Kept
#: dot-free so they embed directly in registry paths.
ROUTES = (
    "POST /v1/jobs",
    "GET /v1/jobs",
    "GET /v1/jobs/{id}",
    "GET /v1/jobs/{id}/events",
    "GET /v1/artifacts/{kind}/{key}",
    "GET /v1/health",
    "GET /v1/metrics",
    "GET /metrics",
    "OTHER",
)


def _safe_label_part(value: str) -> str:
    """A registry-path-safe token: dots would split the path."""
    return value.replace(".", "_")


class ServeMetrics:
    """One service instance's metrics state.

    All mutation happens on the service event loop or the single worker
    coroutine; the underlying metric objects are simple enough that the
    occasional cross-thread read (snapshot from a test) is benign.
    """

    def __init__(self, clock=time.monotonic):
        self.registry = MetricsRegistry()
        self.clock = clock
        self.started = clock()
        self.sse_active = 0

    # ------------------------------------------------------------ #
    # recording

    def record_request(self, route: str, status: int,
                       duration_seconds: float) -> None:
        if route not in ROUTES:
            route = "OTHER"
        self.registry.counter(f"http.requests.{route}.{status}").incr()
        self.registry.timing(f"http.latency.{route}").record(
            duration_seconds)

    def record_throttle(self, tenant: str) -> None:
        self.registry.counter(
            f"tenants.{_safe_label_part(tenant)}.throttled").incr()

    def record_job(self, doc: dict, e2e_seconds: float) -> None:
        """Account one finished job from its result doc."""
        status = doc.get("status", "failed")
        self.registry.counter(f"jobs.completed.{status}").incr()
        summary = doc.get("summary") or {}
        total = summary.get("total", 0)
        hits = summary.get("hits", 0)
        farm = self.registry.ratio("jobs.farm_cache")
        farm.hits += hits
        farm.total += total
        phase = "warm" if total and hits == total else "cold"
        self.registry.timing(f"jobs.e2e.{phase}").record(e2e_seconds)
        self.registry.timing("jobs.queue_wait").record(
            float(doc.get("queue_wait_seconds") or 0.0))

    def sse_opened(self) -> None:
        self.sse_active += 1
        self.registry.counter("sse.opened").incr()

    def sse_closed(self) -> None:
        self.sse_active = max(0, self.sse_active - 1)
        self.registry.counter("sse.closed").incr()

    # ------------------------------------------------------------ #
    # export

    def uptime_seconds(self) -> float:
        return self.clock() - self.started

    def snapshot(self, gauges: dict | None = None,
                 meta: dict | None = None) -> dict:
        """The ``repro.serve-metrics/1`` document."""
        doc_gauges = {
            "queue": {}, "tenants": {}, "sse_active": self.sse_active,
            "worker": {},
        }
        doc_gauges.update(gauges or {})
        doc_meta = {"uptime_seconds": round(self.uptime_seconds(), 6)}
        doc_meta.update(meta or {})
        return {
            "schema": SERVE_METRICS_SCHEMA_VERSION,
            "meta": doc_meta,
            "gauges": doc_gauges,
            "metrics": self.registry.snapshot(),
        }

    def render_prometheus(self, gauges: dict | None = None) -> str:
        return render_prometheus(self.snapshot(gauges))


# ------------------------------------------------------------------ #
# Prometheus text exposition

def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _labels(pairs: dict) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"'
                     for k, v in pairs.items())
    return "{" + inner + "}"


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Renderer:
    """Accumulates HELP/TYPE/sample lines per metric family, in order."""

    def __init__(self):
        self.lines: list[str] = []
        self._declared: set[str] = set()

    def family(self, name: str, kind: str, help_text: str) -> None:
        if name in self._declared:
            return
        self._declared.add(name)
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, labels: dict, value) -> None:
        self.lines.append(f"{name}{_labels(labels)} {_format_value(value)}")

    def timing(self, name: str, labels: dict, payload: dict) -> None:
        """One TimingHistogram as cumulative bucket series."""
        cumulative = 0
        for index, amount in sorted(
                (int(k), v) for k, v in payload["buckets"].items()):
            cumulative += amount
            bound = TimingHistogram.bucket_upper_bound(index)
            self.sample(f"{name}_bucket",
                        {**labels, "le": f"{bound:.9g}"}, cumulative)
        self.sample(f"{name}_bucket", {**labels, "le": "+Inf"},
                    payload["count"])
        self.sample(f"{name}_sum", labels, payload["sum"])
        self.sample(f"{name}_count", labels, payload["count"])


def render_prometheus(snapshot: dict) -> str:
    """Render a ``repro.serve-metrics/1`` document as exposition text."""
    metrics = snapshot["metrics"]["metrics"]
    gauges = snapshot["gauges"]
    out = _Renderer()

    out.family("repro_serve_uptime_seconds", "gauge",
               "Seconds since this serve instance started.")
    out.sample("repro_serve_uptime_seconds", {},
               snapshot["meta"]["uptime_seconds"])

    requests = [(path, payload) for path, payload in sorted(metrics.items())
                if path.startswith("http.requests.")]
    if requests:
        out.family("repro_serve_requests_total", "counter",
                   "HTTP requests served, by route template and status.")
        for path, payload in requests:
            route, _, status = path[len("http.requests."):].rpartition(".")
            out.sample("repro_serve_requests_total",
                       {"route": route, "status": status},
                       payload["count"])

    latencies = [(path, payload) for path, payload in sorted(metrics.items())
                 if path.startswith("http.latency.")]
    if latencies:
        out.family("repro_serve_request_duration_seconds", "histogram",
                   "HTTP request duration by route template.")
        for path, payload in latencies:
            route = path[len("http.latency."):]
            out.timing("repro_serve_request_duration_seconds",
                       {"route": route}, payload)

    e2e = [(path, payload) for path, payload in sorted(metrics.items())
           if path.startswith("jobs.e2e.")]
    if e2e:
        out.family("repro_serve_job_e2e_seconds", "histogram",
                   "Submission-to-terminal-state latency, by cache phase.")
        for path, payload in e2e:
            out.timing("repro_serve_job_e2e_seconds",
                       {"phase": path[len("jobs.e2e."):]}, payload)

    queue_wait = metrics.get("jobs.queue_wait")
    if queue_wait:
        out.family("repro_serve_queue_wait_seconds", "histogram",
                   "Time jobs spent queued before the worker picked them up.")
        out.timing("repro_serve_queue_wait_seconds", {}, queue_wait)

    completed = [(path, payload) for path, payload in sorted(metrics.items())
                 if path.startswith("jobs.completed.")]
    if completed:
        out.family("repro_serve_jobs_total", "counter",
                   "Jobs completed, by terminal status.")
        for path, payload in completed:
            out.sample("repro_serve_jobs_total",
                       {"status": path[len("jobs.completed."):]},
                       payload["count"])

    farm = metrics.get("jobs.farm_cache")
    if farm:
        out.family("repro_serve_farm_jobs_total", "counter",
                   "Farm jobs executed for served submissions.")
        out.sample("repro_serve_farm_jobs_total", {}, farm["total"])
        out.family("repro_serve_farm_cache_hits_total", "counter",
                   "Farm jobs resolved from the artifact store.")
        out.sample("repro_serve_farm_cache_hits_total", {}, farm["hits"])

    throttled = [(path, payload) for path, payload in sorted(metrics.items())
                 if path.startswith("tenants.")
                 and path.endswith(".throttled")]
    if throttled:
        out.family("repro_serve_throttled_total", "counter",
                   "429 quota rejections, by tenant.")
        for path, payload in throttled:
            tenant = path[len("tenants."):-len(".throttled")]
            out.sample("repro_serve_throttled_total", {"tenant": tenant},
                       payload["count"])

    for name, help_text in (("opened", "SSE streams opened."),
                            ("closed", "SSE streams closed.")):
        payload = metrics.get(f"sse.{name}")
        if payload:
            out.family(f"repro_serve_sse_{name}_total", "counter", help_text)
            out.sample(f"repro_serve_sse_{name}_total", {},
                       payload["count"])
    out.family("repro_serve_sse_active", "gauge",
               "Currently connected SSE subscribers.")
    out.sample("repro_serve_sse_active", {}, gauges.get("sse_active", 0))

    queue = gauges.get("queue") or {}
    if queue:
        out.family("repro_serve_queue_depth", "gauge",
                   "Jobs in the persistent queue, by state.")
        for state, count in sorted(queue.items()):
            out.sample("repro_serve_queue_depth", {"state": state}, count)
    tenants = gauges.get("tenants") or {}
    if tenants:
        out.family("repro_serve_queue_depth_by_tenant", "gauge",
                   "Per-tenant jobs in the persistent queue, by state.")
        for tenant, states in sorted(tenants.items()):
            for state, count in sorted(states.items()):
                out.sample("repro_serve_queue_depth_by_tenant",
                           {"tenant": tenant, "state": state}, count)

    worker = gauges.get("worker") or {}
    if worker:
        out.family("repro_serve_worker_alive", "gauge",
                   "1 when the worker heartbeat is fresh.")
        out.sample("repro_serve_worker_alive", {},
                   1 if worker.get("alive") else 0)
        out.family("repro_serve_worker_jobs_total", "counter",
                   "Jobs the worker loop has finished since start.")
        out.sample("repro_serve_worker_jobs_total", {},
                   worker.get("jobs_since_start", 0))
        age = worker.get("last_heartbeat_age_seconds")
        if age is not None:
            out.family("repro_serve_worker_heartbeat_age_seconds", "gauge",
                       "Seconds since the worker loop last made progress.")
            out.sample("repro_serve_worker_heartbeat_age_seconds", {}, age)

    return "\n".join(out.lines) + "\n"


# ------------------------------------------------------------------ #
# exposition linting (tests, smoke tool, CI)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$')
_VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def _parse_sample(line: str):
    """``(name, raw_labels, raw_value, raw_ts)`` or None if malformed.

    Not a single regex because label *values* may contain ``}`` (route
    templates like ``GET /v1/jobs/{id}`` do) — the closing brace has to
    be found with quote/escape awareness.
    """
    match = _NAME_RE.match(line)
    if match is None or match.start() != 0:
        return None
    name = match.group(0)
    rest = line[match.end():]
    raw_labels = None
    if rest.startswith("{"):
        in_quotes = escaped = False
        end = -1
        for index in range(1, len(rest)):
            char = rest[index]
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == '"':
                in_quotes = not in_quotes
            elif char == "}" and not in_quotes:
                end = index
                break
        if end < 0:
            return None
        raw_labels = rest[1:end]
        rest = rest[end + 1:]
    if not rest.startswith(" "):
        return None
    fields = rest[1:].split(" ")
    if len(fields) == 1:
        return name, raw_labels, fields[0], None
    if len(fields) == 2 and re.fullmatch(r"-?\d+", fields[1]):
        return name, raw_labels, fields[0], fields[1]
    return None


def _family_of(sample_name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def validate_prometheus_text(text: str) -> list[str]:
    """Problems with an exposition document (empty list = valid).

    Checks the 0.0.4 text format structurally: HELP/TYPE comment shape,
    metric/label name grammar, parseable sample values, TYPE declared
    before its samples, and — for histograms — the presence of ``+Inf``
    bucket, ``_sum``/``_count`` series, and non-decreasing cumulative
    bucket values with ``_count`` matching the ``+Inf`` bucket.
    """
    problems: list[str] = []
    types: dict[str, str] = {}
    # histogram family -> labels-minus-le -> list of (le, value)
    hist_buckets: dict[str, dict[str, list[tuple[float, float]]]] = {}
    hist_counts: dict[str, dict[str, float]] = {}
    seen_families: set[str] = set()

    if text and not text.endswith("\n"):
        problems.append("document must end with a newline")

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                problems.append(f"line {lineno}: malformed comment {line!r}")
                continue
            name = parts[2]
            if not _NAME_RE.fullmatch(name):
                problems.append(
                    f"line {lineno}: bad metric name {name!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _VALID_TYPES:
                    problems.append(
                        f"line {lineno}: bad TYPE line {line!r}")
                elif name in seen_families:
                    problems.append(
                        f"line {lineno}: TYPE for {name} after its samples")
                else:
                    types[name] = parts[3]
            continue

        parsed = _parse_sample(line)
        if parsed is None:
            problems.append(f"line {lineno}: malformed sample {line!r}")
            continue
        name, raw_labels, raw_value, _ts = parsed
        family = _family_of(name)
        seen_families.add(family)
        seen_families.add(name)
        labels: dict[str, str] = {}
        if raw_labels:
            for pair in _split_labels(raw_labels):
                if not _LABEL_RE.match(pair):
                    problems.append(
                        f"line {lineno}: malformed label {pair!r}")
                    continue
                key, _, value = pair.partition("=")
                labels[key] = value[1:-1]
        try:
            value = float(raw_value)
        except ValueError:
            problems.append(
                f"line {lineno}: unparseable value {raw_value!r}")
            continue

        declared = types.get(family) or types.get(name)
        if declared is None:
            problems.append(
                f"line {lineno}: sample {name} has no TYPE declaration")
            continue
        if declared == "histogram":
            key = ",".join(f"{k}={v}" for k, v in sorted(labels.items())
                           if k != "le")
            if name.endswith("_bucket"):
                le = labels.get("le")
                if le is None:
                    problems.append(
                        f"line {lineno}: histogram bucket without le label")
                    continue
                bound = float("inf") if le == "+Inf" else float(le)
                hist_buckets.setdefault(family, {}) \
                    .setdefault(key, []).append((bound, value))
            elif name.endswith("_count"):
                hist_counts.setdefault(family, {})[key] = value

    for family, series in hist_buckets.items():
        for key, buckets in series.items():
            ordered = sorted(buckets)
            bounds = [b for b, _ in ordered]
            values = [v for _, v in ordered]
            if not bounds or bounds[-1] != float("inf"):
                problems.append(
                    f"histogram {family}{{{key}}}: no +Inf bucket")
                continue
            if any(later < earlier
                   for earlier, later in zip(values, values[1:])):
                problems.append(
                    f"histogram {family}{{{key}}}: buckets not cumulative")
            count = hist_counts.get(family, {}).get(key)
            if count is None:
                problems.append(
                    f"histogram {family}{{{key}}}: missing _count series")
            elif count != values[-1]:
                problems.append(
                    f"histogram {family}{{{key}}}: _count {count} != "
                    f"+Inf bucket {values[-1]}")
    return problems


def _split_labels(raw: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    parts: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for char in raw:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return parts
