"""Request-scoped trace identity for ``repro serve``.

Every HTTP submission gets a ``trace_id`` at ingress — honoring an
inbound W3C ``traceparent`` header (the 32-hex trace-id field) or an
``x-repro-trace-id`` header, minting a fresh id otherwise — and the id
rides along through the :class:`~repro.serve.queue.PersistentQueue`
record, the worker's span tree, and the ``repro.ledger/1`` run meta, so
one request's full lifecycle (ingress parse, queue wait, farm execution,
SSE streaming) reconstructs as a single span tree in ``farm timeline``
and ``repro serve trace JOB_ID``.

The format here is deliberately looser than W3C trace-context: any
8-64 char hex-ish token is accepted from ``x-repro-trace-id`` so curl
users can pass ``deadbeefcafe1234`` without ceremony, while
``traceparent`` is parsed strictly enough to reject the all-zero
(invalid) trace id.
"""

from __future__ import annotations

import re
import uuid
from dataclasses import dataclass, field

#: Header consulted first: W3C trace-context, ``00-<32hex>-<16hex>-<2hex>``.
TRACEPARENT_HEADER = "traceparent"
#: Fallback header for hand-rolled clients: a bare hex token.
TRACE_ID_HEADER = "x-repro-trace-id"
#: Response header echoing the resolved trace id back to the caller.
RESPONSE_TRACE_HEADER = "X-Repro-Trace-Id"

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})"
    r"-(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)
_TRACE_TOKEN_RE = re.compile(r"^[0-9a-fA-F-]{8,64}$")


def new_trace_id() -> str:
    """Mint a fresh 32-hex trace id."""
    return uuid.uuid4().hex


def parse_traceparent(value: str) -> str | None:
    """Extract the trace-id field from a ``traceparent`` header.

    Returns None for malformed headers and for the all-zero trace id,
    which the W3C spec defines as invalid.
    """
    match = _TRACEPARENT_RE.match(value.strip().lower())
    if match is None:
        return None
    trace_id = match.group("trace_id")
    if trace_id == "0" * 32:
        return None
    return trace_id


def resolve_trace_id(headers: dict[str, str]) -> str:
    """Trace id for a request given its (lowercase-keyed) headers.

    Precedence: valid ``traceparent`` > plausible ``x-repro-trace-id`` >
    freshly minted. Never fails — a garbage header simply mints.
    """
    traceparent = headers.get(TRACEPARENT_HEADER)
    if traceparent:
        trace_id = parse_traceparent(traceparent)
        if trace_id is not None:
            return trace_id
    token = headers.get(TRACE_ID_HEADER, "").strip()
    if token and _TRACE_TOKEN_RE.match(token):
        return token.lower()
    return new_trace_id()


@dataclass
class RequestContext:
    """Per-request state threaded through the serve request path.

    Created at ingress (one per connection, since the server is
    one-request-per-connection), populated as routing and handling
    learn more, and consumed by the access log + metrics recorder when
    the response is sent.
    """

    trace_id: str = field(default_factory=new_trace_id)
    method: str = ""
    path: str = ""
    route: str = "OTHER"
    status: int = 0
    tenant: str = ""
    job_id: str = ""
    started: float = 0.0       # monotonic seconds at ingress
    ingress_seconds: float = 0.0   # time spent reading/parsing the request
