"""Simulation-as-a-service on top of the experiment farm.

``repro serve`` wraps the farm's content-addressed
:class:`~repro.farm.store.ArtifactStore` and crash-isolated scheduler
in a long-running, stdlib-only asyncio HTTP/JSON service:

* ``POST /v1/jobs`` accepts ``repro.serve-job/1`` submissions -- a
  registered benchmark or inline MiniC source, a machine-flavour list,
  and an optional trace analysis -- onto a persistent on-disk priority
  queue with per-tenant quotas and fair (round-robin across tenants)
  scheduling that survives restarts.
* A worker bridge lowers each submission onto the farm's
  build -> trace -> analysis/sim job graph and drives the existing
  scheduler, so served runs share one warm artifact cache with
  ``repro farm run`` (and with every other tenant: identical source
  text is one artifact, no matter who submitted it or what they
  called it).
* ``GET /v1/jobs/{id}/events`` streams the job's full ``farm.*`` /
  ``serve.*`` event log over Server-Sent Events -- replay-then-live,
  with per-job sequence numbers so not one event is dropped or
  duplicated across the handoff.
* Completed results are served straight from the store; spans and a
  ``repro.ledger/1`` manifest are recorded per job, so ``repro farm
  history`` / ``farm timeline`` cover served runs too.
* Every request carries a ``trace_id`` resolved at ingress
  (:mod:`repro.serve.tracing`), the whole instance is measured by a
  :class:`~repro.serve.metrics.ServeMetrics` registry exported at
  ``GET /metrics`` (Prometheus) and ``GET /v1/metrics``
  (``repro.serve-metrics/1``), and ``repro slo``
  (:mod:`repro.serve.slo`) gates burn rates and latency quantiles
  over those snapshots.

See docs/serving.md for the API reference and operations runbook.
"""

from repro.serve.metrics import (
    SERVE_METRICS_SCHEMA,
    SERVE_METRICS_SCHEMA_VERSION,
    ServeMetrics,
    render_prometheus,
    validate_prometheus_text,
)
from repro.serve.queue import PersistentQueue, QuotaExceeded
from repro.serve.schemas import (
    SERVE_ERROR_SCHEMA,
    SERVE_ERROR_SCHEMA_VERSION,
    SERVE_HEALTH_SCHEMA_VERSION,
    SERVE_JOB_SCHEMA,
    SERVE_JOB_SCHEMA_VERSION,
    error_doc,
    normalize_submission,
)
from repro.serve.service import ServeConfig, ServeService, start_in_background
from repro.serve.tracing import (
    RESPONSE_TRACE_HEADER,
    TRACE_ID_HEADER,
    TRACEPARENT_HEADER,
    new_trace_id,
    parse_traceparent,
    resolve_trace_id,
)
from repro.serve.worker import plan_serve_graph, run_serve_job

__all__ = [
    "PersistentQueue",
    "QuotaExceeded",
    "RESPONSE_TRACE_HEADER",
    "SERVE_ERROR_SCHEMA",
    "SERVE_ERROR_SCHEMA_VERSION",
    "SERVE_HEALTH_SCHEMA_VERSION",
    "SERVE_JOB_SCHEMA",
    "SERVE_JOB_SCHEMA_VERSION",
    "SERVE_METRICS_SCHEMA",
    "SERVE_METRICS_SCHEMA_VERSION",
    "ServeConfig",
    "ServeMetrics",
    "ServeService",
    "TRACE_ID_HEADER",
    "TRACEPARENT_HEADER",
    "error_doc",
    "new_trace_id",
    "normalize_submission",
    "parse_traceparent",
    "plan_serve_graph",
    "render_prometheus",
    "resolve_trace_id",
    "run_serve_job",
    "start_in_background",
    "validate_prometheus_text",
]
