"""Load generator: N simulated clients against one serve instance.

Drives the acceptance gate in ``benchmarks/test_serve_load.py`` and the
CI smoke job. The workload is mixed cold/warm by construction:

* **Cold phase** -- every client submits its *own* tiny inline MiniC
  variant (a distinct source digest, so nothing is cached) and follows
  it to completion over SSE.
* **Warm phase** -- every client re-submits its variant ``warm_rounds``
  times; each repeat must resolve entirely from the shared artifact
  store (the per-job summary says how many farm jobs were hits).

Latency is measured client-side, submit to terminal state. The SSE
integrity check streams each job's event log twice and verifies (a)
the sequence numbers are exactly ``0..n-1`` -- nothing dropped,
nothing duplicated -- and (b) the two reads are byte-identical after
:func:`~repro.serve.worker.normalized_events` strips timestamps.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor

from repro.serve import client as serve_client
from repro.serve.schemas import SERVE_JOB_SCHEMA_VERSION
from repro.serve.worker import normalized_events

_SOURCE_TEMPLATE = """\
/* serve-load variant {index} */
int data[32];
int acc = 0;

int main() {{
    int i;
    for (i = 0; i < 32; i++) {{
        data[i] = i * {step} + {index};
    }}
    for (i = 0; i < 32; i++) {{
        acc = acc + data[i];
    }}
    print_str("acc=");
    print_int(acc);
    print_char(10);
    return 0;
}}
"""


def tiny_source(index: int) -> str:
    """A unique-but-trivial MiniC program (distinct source digest)."""
    return _SOURCE_TEMPLATE.format(index=index, step=1 + index % 7)


def make_submission(index: int, tenant: str) -> dict:
    return {
        "schema": SERVE_JOB_SCHEMA_VERSION,
        "tenant": tenant,
        "name": "inline",
        "source": tiny_source(index),
        "machines": ["base"],
    }


def percentile(values: list[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[rank]


def _identity_free(entries: list[dict]) -> str:
    """Canonical bytes of a normalized log, minus per-submission
    identity (queue job id, tenant) on the serve.* records -- what must
    match when two tenants submit the same program."""
    scrubbed = []
    for entry in normalized_events(entries):
        if str(entry.get("event", "")).startswith("serve."):
            entry = {k: v for k, v in entry.items()
                     if k not in ("job_id", "tenant")}
        scrubbed.append(entry)
    return json.dumps(scrubbed, sort_keys=True)


def _run_one(base_url: str, index: int, tenant: str,
             timeout: float) -> dict:
    """Submit one job, wait for it, and audit its SSE stream."""
    start = time.monotonic()
    status, record = serve_client.submit(
        base_url, make_submission(index, tenant), timeout=timeout)
    if status != 202:
        raise RuntimeError(f"submit failed ({status}): {record}")
    job_id = record["job_id"]
    record = serve_client.wait_job(base_url, job_id, timeout=timeout,
                                   poll=0.02)
    latency = time.monotonic() - start
    if record["state"] != "done":
        raise RuntimeError(f"job {job_id} failed: {record.get('result')}")

    first = serve_client.stream_events(base_url, job_id, timeout=timeout)
    second = serve_client.stream_events(base_url, job_id, timeout=timeout)
    seqs = [entry["seq"] for entry in first]
    events_ok = (
        seqs == list(range(len(first)))
        and json.dumps(normalized_events(first), sort_keys=True)
        == json.dumps(normalized_events(second), sort_keys=True)
    )
    summary = record["result"]["summary"]
    return {
        "job_id": job_id,
        "latency": latency,
        "hits": summary["hits"],
        "total": summary["total"],
        "events_ok": events_ok,
        "log_signature": _identity_free(first),
    }


def run_load(base_url: str, clients: int = 8, warm_rounds: int = 2,
             timeout: float = 120.0) -> dict:
    """The full mixed workload; returns the gate's statistics."""
    with ThreadPoolExecutor(max_workers=clients) as pool:
        cold = list(pool.map(
            lambda i: _run_one(base_url, i, f"tenant-{i}", timeout),
            range(clients)))
        warm: list[dict] = []
        for _ in range(warm_rounds):
            warm.extend(pool.map(
                lambda i: _run_one(base_url, i, f"tenant-{i}", timeout),
                range(clients)))

    warm_hits = sum(r["hits"] for r in warm)
    warm_total = sum(r["total"] for r in warm)
    # Every warm repeat of variant i must stream the same normalized
    # log as its first warm run (modulo queue identity) -- the cold run
    # legitimately differs (it computed; repeats are cache hits).
    signatures_ok = all(
        warm[round_ * clients + i]["log_signature"]
        == warm[i]["log_signature"]
        for round_ in range(warm_rounds) for i in range(clients))
    return {
        "clients": clients,
        "warm_rounds": warm_rounds,
        "cold": {
            "count": len(cold),
            "p50": round(percentile([r["latency"] for r in cold], 0.50), 4),
            "p99": round(percentile([r["latency"] for r in cold], 0.99), 4),
        },
        "warm": {
            "count": len(warm),
            "p50": round(percentile([r["latency"] for r in warm], 0.50), 4),
            "p99": round(percentile([r["latency"] for r in warm], 0.99), 4),
            "hit_ratio": round(warm_hits / warm_total, 4) if warm_total
            else 0.0,
        },
        "events_ok": all(r["events_ok"] for r in cold + warm),
        "deterministic": signatures_ok,
    }
