"""The serve HTTP service: stdlib-only asyncio, HTTP/1.1, SSE.

One event loop runs everything: the accept loop, per-connection
handlers, and a single worker coroutine that drains the persistent
queue (the farm scheduler below it provides the real parallelism --
``ServeConfig.farm_jobs`` workers per job). Simulations run on a
thread (``asyncio.to_thread``), so the loop keeps serving submissions
and streaming events while a sweep computes; the thread-side event
flow re-enters the loop only through the
:func:`~repro.obs.events.subscribe_async` bridge.

Endpoints (all responses JSON unless noted; errors are
``repro.serve-error/1`` documents):

=========================================  ==========================
``POST /v1/jobs``                          submit (202, 400, 429)
``GET /v1/jobs``                           list jobs (``?tenant=``)
``GET /v1/jobs/{id}``                      one job record + result
``GET /v1/jobs/{id}/events``               SSE stream, replay + live
``GET /v1/artifacts/{kind}/{key}``         snapshot from the store
``GET /v1/health``                         schema/store/queue/worker
``GET /v1/metrics``                        ``repro.serve-metrics/1``
``GET /metrics``                           Prometheus text (not JSON)
=========================================  ==========================

Every request resolves a ``trace_id`` at ingress (``traceparent`` or
``x-repro-trace-id`` headers honored, one minted otherwise), echoes it
as ``X-Repro-Trace-Id``, stamps it on the queue record, and accounts
the request in the metrics registry and the JSONL access log.

Connections are ``Connection: close`` -- one request per connection
keeps the parser trivial and is plenty for the load profile (SSE
holds its connection open anyway).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass
from urllib.parse import parse_qs, unquote

from repro.farm.ledger import LEDGER_SCHEMA
from repro.obs.events import HttpRequestServed
from repro.obs.metrics import SNAPSHOT_VERSION
from repro.obs.sinks import AccessLogSink
from repro.farm.store import ArtifactStore
from repro.serve.metrics import ServeMetrics
from repro.serve.queue import DONE, FAILED, RUNNING, PersistentQueue, QuotaExceeded
from repro.serve.schemas import (
    MAX_BODY_BYTES,
    SERVE_ERROR_SCHEMA_VERSION,
    SERVE_HEALTH_SCHEMA_VERSION,
    SERVE_JOB_SCHEMA_VERSION,
    error_doc,
    normalize_submission,
)
from repro.serve.tracing import (
    RESPONSE_TRACE_HEADER,
    RequestContext,
    resolve_trace_id,
)
from repro.serve.worker import (
    JobEventLog,
    ServeJobQueued,
    ServeJobStarted,
    is_terminal,
    run_serve_job,
)

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
}


@dataclass
class ServeConfig:
    """Tunables of one service instance."""

    host: str = "127.0.0.1"
    port: int = 0                       # 0 = ephemeral (tests)
    quota: int = 8                      # per-tenant in-flight jobs
    farm_jobs: int = 1                  # farm workers per served job
    job_timeout: float | None = 300.0   # per farm-job attempt, seconds
    retries: int = 1
    gc_max_bytes: int | None = None     # store budget, trimmed between jobs
    worker_enabled: bool = True         # False: accept only (tests)
    metrics_enabled: bool = True        # False: no registry (overhead A/B)
    access_log: str | None = None       # JSONL access-log path


#: A worker whose heartbeat is older than this, with no job in flight,
#: is reported as not alive (the idle loop beats every 0.5s).
WORKER_STALE_SECONDS = 5.0


def build_health(store: ArtifactStore, queue: PersistentQueue,
                 started_at: float | None = None,
                 worker: dict | None = None) -> dict:
    """The ``/v1/health`` document (also ``repro serve --check``).

    ``queue.tenants`` breaks depth down per tenant; ``worker`` (when the
    caller has one) reports the job loop's liveness — a wedged worker
    with a growing heartbeat age is visible here, not just a 200.
    """
    depth = queue.depth()
    depth["tenants"] = queue.depth_by_tenant()
    doc = {
        "schema": SERVE_HEALTH_SCHEMA_VERSION,
        "schemas": {
            "metrics": SNAPSHOT_VERSION,
            "ledger": LEDGER_SCHEMA,
            "serve_job": SERVE_JOB_SCHEMA_VERSION,
            "serve_error": SERVE_ERROR_SCHEMA_VERSION,
        },
        "store": {
            "root": str(store.root),
            "stats": store.stats(),
            "shards": store.shard_stats(),
        },
        "queue": depth,
        "quota": queue.quota,
    }
    if worker is not None:
        doc["worker"] = worker
    if started_at is not None:
        doc["uptime_seconds"] = round(time.time() - started_at, 3)
    return doc


class ServeService:
    """One serve instance bound to one artifact store."""

    def __init__(self, store: ArtifactStore, config: ServeConfig | None = None):
        from repro.experiments.common import MACHINES
        from repro.workloads.suite import BENCHMARKS

        self.store = store
        self.config = config or ServeConfig()
        self.machines = MACHINES
        self.benchmarks = set(BENCHMARKS)
        serve_root = store.root / "serve"
        self.queue = PersistentQueue(serve_root / "queue",
                                     quota=self.config.quota)
        self.events_dir = serve_root / "events"
        self.events_dir.mkdir(parents=True, exist_ok=True)
        self.logs: dict[str, JobEventLog] = {}
        self.started_at = time.time()
        self.metrics = ServeMetrics() if self.config.metrics_enabled else None
        self.access_log = AccessLogSink(self.config.access_log) \
            if self.config.access_log else None
        self.worker_stats = {
            "jobs_since_start": 0,
            "current_job": None,
            "last_heartbeat": time.monotonic(),
        }
        self.server = None
        self.port = None
        self._running = False
        self._wake: asyncio.Event | None = None
        self._worker_task = None

    # ------------------------------------------------------------ #
    # lifecycle

    async def start(self) -> None:
        self._running = True
        self._wake = asyncio.Event()
        self.server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port)
        self.port = self.server.sockets[0].getsockname()[1]
        if self.config.worker_enabled:
            self._worker_task = asyncio.create_task(self._worker_loop())

    async def shutdown(self) -> None:
        self._running = False
        if self._wake is not None:
            self._wake.set()
        if self._worker_task is not None:
            self._worker_task.cancel()
            try:
                await self._worker_task
            except asyncio.CancelledError:
                pass
            self._worker_task = None
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None
        if self.access_log is not None:
            self.access_log.close()

    # ------------------------------------------------------------ #
    # worker

    def log_for(self, job_id: str) -> JobEventLog:
        log = self.logs.get(job_id)
        if log is None:
            log = JobEventLog(path=self.events_dir / f"{job_id}.jsonl")
            self.logs[job_id] = log
        return log

    def _beat(self) -> None:
        self.worker_stats["last_heartbeat"] = time.monotonic()

    def worker_liveness(self) -> dict:
        """The worker-loop liveness view for ``/v1/health`` and metrics.

        ``alive`` means the loop beat recently *or* is legitimately
        blocked running a job — only a loop that is idle-and-silent
        (wedged, crashed, or never started) reports dead.
        """
        age = time.monotonic() - self.worker_stats["last_heartbeat"]
        current = self.worker_stats["current_job"]
        enabled = self.config.worker_enabled
        return {
            "enabled": enabled,
            "alive": enabled and (current is not None
                                  or age < WORKER_STALE_SECONDS),
            "last_heartbeat_age_seconds": round(age, 3),
            "current_job": current,
            "jobs_since_start": self.worker_stats["jobs_since_start"],
        }

    async def _worker_loop(self) -> None:
        config = self.config
        while self._running:
            self._beat()
            record = self.queue.next_queued()
            if record is None:
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=0.5)
                except TimeoutError:
                    pass
                continue
            job_id = record["job_id"]
            self.queue.mark(job_id, RUNNING)
            self.worker_stats["current_job"] = job_id
            self._beat()
            log = self.log_for(job_id)
            log.append_event(ServeJobStarted(
                job_id=job_id, tenant=record["tenant"]))
            doc = await asyncio.to_thread(
                run_serve_job, self.store, record, log, self.machines,
                jobs=config.farm_jobs, timeout=config.job_timeout,
                retries=config.retries, gc_max_bytes=config.gc_max_bytes)
            self.queue.mark(job_id,
                            DONE if doc["status"] == "done" else FAILED,
                            result=doc)
            self.worker_stats["current_job"] = None
            self.worker_stats["jobs_since_start"] += 1
            self._beat()
            if self.metrics is not None:
                enqueued_at = record.get("enqueued_at")
                e2e = time.monotonic() - float(enqueued_at) \
                    if enqueued_at is not None else \
                    doc.get("elapsed_seconds", 0.0)
                self.metrics.record_job(doc, e2e)

    # ------------------------------------------------------------ #
    # HTTP plumbing

    async def _handle_client(self, reader, writer) -> None:
        ctx = RequestContext(started=time.monotonic())
        try:
            request = await self._read_request(reader, writer, ctx)
            if request is not None:
                method, path, query, body, headers = request
                ctx.trace_id = resolve_trace_id(headers)
                ctx.method, ctx.path = method, path
                ctx.ingress_seconds = time.monotonic() - ctx.started
                await self._route(reader, writer, ctx,
                                  method, path, query, body)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            try:
                await self._send_json(writer, 500, error_doc(
                    "internal", f"{type(exc).__name__}: {exc}"), ctx)
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                pass
        finally:
            self._finish_request(ctx)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _finish_request(self, ctx: RequestContext) -> None:
        """Account one completed request: metrics and the access log."""
        if not ctx.status:
            return      # connection opened but no request/response
        duration = time.monotonic() - ctx.started
        if self.metrics is not None:
            self.metrics.record_request(ctx.route, ctx.status, duration)
        if self.access_log is not None:
            self.access_log.handle(HttpRequestServed(
                trace_id=ctx.trace_id, method=ctx.method, route=ctx.route,
                path=ctx.path, status=ctx.status,
                duration_seconds=round(duration, 6),
                tenant=ctx.tenant, job_id=ctx.job_id))

    async def _read_request(self, reader, writer, ctx: RequestContext):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("ascii").split()
        except ValueError:
            await self._send_json(writer, 400, error_doc(
                "bad-request", "malformed request line"), ctx)
            return None
        headers = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            await self._send_json(writer, 413, error_doc(
                "payload-too-large",
                f"body exceeds {MAX_BODY_BYTES} bytes"), ctx)
            return None
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        return method.upper(), unquote(path), parse_qs(query), body, headers

    async def _send_json(self, writer, status: int, doc,
                         ctx: RequestContext | None = None) -> None:
        if ctx is not None:
            ctx.status = status
        trace = f"{RESPONSE_TRACE_HEADER}: {ctx.trace_id}\r\n" \
            if ctx is not None else ""
        payload = (json.dumps(doc, indent=2, sort_keys=True) + "\n").encode()
        writer.write(
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Status')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{trace}"
            f"Connection: close\r\n\r\n".encode())
        writer.write(payload)
        await writer.drain()

    async def _send_text(self, writer, status: int, text: str,
                         ctx: RequestContext,
                         content_type: str = "text/plain; version=0.0.4; "
                                             "charset=utf-8") -> None:
        ctx.status = status
        payload = text.encode()
        writer.write(
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Status')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{RESPONSE_TRACE_HEADER}: {ctx.trace_id}\r\n"
            f"Connection: close\r\n\r\n".encode())
        writer.write(payload)
        await writer.drain()

    # ------------------------------------------------------------ #
    # routing

    async def _route(self, reader, writer, ctx: RequestContext,
                     method, path, query, body) -> None:
        parts = [p for p in path.split("/") if p]
        if parts == ["metrics"] and method == "GET":
            ctx.route = "GET /metrics"
            await self._get_metrics_text(writer, ctx)
            return
        if parts[:1] != ["v1"]:
            await self._send_json(writer, 404, error_doc(
                "not-found", f"no route {path!r}"), ctx)
            return
        rest = parts[1:]
        if rest == ["jobs"]:
            if method == "POST":
                ctx.route = "POST /v1/jobs"
                await self._post_job(writer, ctx, body)
            elif method == "GET":
                ctx.route = "GET /v1/jobs"
                await self._list_jobs(writer, ctx, query)
            else:
                await self._send_json(writer, 405, error_doc(
                    "method-not-allowed", f"{method} {path}"), ctx)
        elif len(rest) == 2 and rest[0] == "jobs" and method == "GET":
            ctx.route = "GET /v1/jobs/{id}"
            await self._get_job(writer, ctx, rest[1])
        elif len(rest) == 3 and rest[0] == "jobs" and rest[2] == "events" \
                and method == "GET":
            ctx.route = "GET /v1/jobs/{id}/events"
            await self._stream_events(reader, writer, ctx, rest[1])
        elif len(rest) == 3 and rest[0] == "artifacts" and method == "GET":
            ctx.route = "GET /v1/artifacts/{kind}/{key}"
            await self._get_artifact(writer, ctx, rest[1], rest[2])
        elif rest == ["health"] and method == "GET":
            ctx.route = "GET /v1/health"
            await self._send_json(writer, 200, build_health(
                self.store, self.queue, self.started_at,
                worker=self.worker_liveness()), ctx)
        elif rest == ["metrics"] and method == "GET":
            ctx.route = "GET /v1/metrics"
            await self._get_metrics_json(writer, ctx)
        else:
            await self._send_json(writer, 404, error_doc(
                "not-found", f"no route {method} {path!r}"), ctx)

    # ------------------------------------------------------------ #
    # handlers

    async def _post_job(self, writer, ctx: RequestContext,
                        body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            await self._send_json(writer, 400, error_doc(
                "invalid-json", f"body is not valid JSON: {exc}"), ctx)
            return
        submission, error = normalize_submission(
            payload, self.machines, self.benchmarks)
        if error is not None:
            await self._send_json(writer, 400, error, ctx)
            return
        ctx.tenant = submission["tenant"]
        try:
            record = self.queue.submit(
                submission, trace_id=ctx.trace_id,
                ingress_seconds=time.monotonic() - ctx.started)
        except QuotaExceeded as exc:
            if self.metrics is not None:
                self.metrics.record_throttle(submission["tenant"])
            await self._send_json(writer, 429, error_doc(
                "quota-exceeded", str(exc)), ctx)
            return
        ctx.job_id = record["job_id"]
        self.log_for(record["job_id"]).append_event(ServeJobQueued(
            job_id=record["job_id"], tenant=record["tenant"],
            name=submission["name"]))
        if self._wake is not None:
            self._wake.set()
        await self._send_json(writer, 202, record, ctx)

    async def _list_jobs(self, writer, ctx: RequestContext, query) -> None:
        tenant = (query.get("tenant") or [None])[0]
        rows = [
            {"job_id": r["job_id"], "tenant": r["tenant"],
             "state": r["state"], "priority": r["priority"],
             "name": r["submission"]["name"], "seq": r["seq"]}
            for r in self.queue.jobs(tenant)
        ]
        await self._send_json(writer, 200, {"jobs": rows}, ctx)

    async def _get_job(self, writer, ctx: RequestContext,
                       job_id: str) -> None:
        record = self.queue.get(job_id)
        if record is None:
            await self._send_json(writer, 404, error_doc(
                "unknown-job", f"no job {job_id!r}"), ctx)
            return
        ctx.job_id = job_id
        ctx.tenant = record["tenant"]
        await self._send_json(writer, 200, record, ctx)

    async def _get_artifact(self, writer, ctx: RequestContext,
                            kind: str, key: str) -> None:
        meta = self.store.get_meta(kind, key) \
            if kind in ("build", "trace", "analysis", "sim") else None
        if meta is None:
            await self._send_json(writer, 404, error_doc(
                "unknown-artifact", f"no {kind} artifact {key[:16]}..."),
                ctx)
            return
        snapshot = self.store.get_json(kind, key)
        await self._send_json(writer, 200, {
            "kind": kind, "key": key, "meta": meta, "snapshot": snapshot},
            ctx)

    # ------------------------------------------------------------ #
    # metrics endpoints

    def _metric_gauges(self) -> dict:
        return {
            "queue": self.queue.depth(),
            "tenants": self.queue.depth_by_tenant(),
            "sse_active": self.metrics.sse_active
            if self.metrics is not None else 0,
            "worker": self.worker_liveness(),
        }

    async def _get_metrics_json(self, writer, ctx: RequestContext) -> None:
        if self.metrics is None:
            await self._send_json(writer, 404, error_doc(
                "metrics-disabled",
                "this instance runs with metrics_enabled=False"), ctx)
            return
        await self._send_json(
            writer, 200, self.metrics.snapshot(self._metric_gauges()), ctx)

    async def _get_metrics_text(self, writer, ctx: RequestContext) -> None:
        if self.metrics is None:
            await self._send_json(writer, 404, error_doc(
                "metrics-disabled",
                "this instance runs with metrics_enabled=False"), ctx)
            return
        await self._send_text(
            writer, 200,
            self.metrics.render_prometheus(self._metric_gauges()), ctx)

    @staticmethod
    def _sse_frame(entry: dict) -> bytes:
        data = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        return (f"id: {entry['seq']}\n"
                f"event: {entry.get('event', 'message')}\n"
                f"data: {data}\n\n").encode()

    async def _stream_events(self, reader, writer, ctx: RequestContext,
                             job_id: str) -> None:
        record = self.queue.get(job_id)
        if record is None:
            await self._send_json(writer, 404, error_doc(
                "unknown-job", f"no job {job_id!r}"), ctx)
            return
        ctx.job_id = job_id
        ctx.tenant = record["tenant"]
        log = self.log_for(job_id)
        # Atomic snapshot + subscribe: replay covers seq <= last, the
        # subscription everything after -- nothing dropped, nothing
        # doubled across the handoff.
        snapshot, sub = log.snapshot_and_subscribe()
        if self.metrics is not None:
            self.metrics.sse_opened()
        ctx.status = 200
        # The protocol is one-request-per-connection, so after the
        # request is parsed the client sends nothing more: any read
        # completing (EOF or stray bytes) means the client went away.
        # Racing it against the subscription is what lets a disconnect
        # tear the stream down *now* instead of on the next event.
        eof_task = asyncio.ensure_future(reader.read(1))
        get_task = None
        try:
            writer.write((f"HTTP/1.1 200 OK\r\n"
                          f"Content-Type: text/event-stream\r\n"
                          f"Cache-Control: no-cache\r\n"
                          f"{RESPONSE_TRACE_HEADER}: {ctx.trace_id}\r\n"
                          f"Connection: close\r\n\r\n").encode())
            last = -1
            done = False
            for entry in snapshot:
                writer.write(self._sse_frame(entry))
                last = entry["seq"]
                done = done or is_terminal(entry)
            await writer.drain()
            while not done:
                if get_task is None:
                    get_task = asyncio.ensure_future(sub.get())
                finished, _ = await asyncio.wait(
                    {get_task, eof_task},
                    return_when=asyncio.FIRST_COMPLETED)
                if eof_task in finished:
                    break              # client disconnected mid-stream
                entry = get_task.result()
                get_task = None
                if entry is None:      # subscription closed underneath us
                    break
                if entry["seq"] <= last:
                    continue
                writer.write(self._sse_frame(entry))
                await writer.drain()
                last = entry["seq"]
                done = is_terminal(entry)
        finally:
            for task in (eof_task, get_task):
                if task is not None and not task.done():
                    task.cancel()
            sub.close()
            if self.metrics is not None:
                self.metrics.sse_closed()


# ------------------------------------------------------------------ #
# embedding helpers

async def serve_forever(store: ArtifactStore,
                        config: ServeConfig | None = None) -> None:
    """Run a service until cancelled (the ``repro serve`` entry point)."""
    service = ServeService(store, config)
    await service.start()
    try:
        async with service.server:
            await service.server.serve_forever()
    finally:
        await service.shutdown()


class BackgroundServer:
    """A service on its own thread + loop (tests, the load generator)."""

    def __init__(self, service: ServeService, loop, thread, stop_event):
        self.service = service
        self._loop = loop
        self._thread = thread
        self._stop_event = stop_event

    @property
    def base_url(self) -> str:
        return f"http://{self.service.config.host}:{self.service.port}"

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout=timeout)


def start_in_background(store: ArtifactStore,
                        config: ServeConfig | None = None,
                        ready_timeout: float = 10.0) -> BackgroundServer:
    """Boot a service on a daemon thread; returns once it accepts."""
    ready = threading.Event()
    holder: dict = {}

    async def _main() -> None:
        service = ServeService(store, config)
        stop_event = asyncio.Event()
        await service.start()
        holder["service"] = service
        holder["loop"] = asyncio.get_running_loop()
        holder["stop_event"] = stop_event
        ready.set()
        try:
            await stop_event.wait()
        finally:
            await service.shutdown()

    def _runner() -> None:
        try:
            asyncio.run(_main())
        except Exception as exc:  # pragma: no cover - startup failure
            holder["error"] = exc
            ready.set()

    thread = threading.Thread(target=_runner, daemon=True,
                              name="repro-serve")
    thread.start()
    if not ready.wait(ready_timeout) or "error" in holder:
        raise RuntimeError(
            f"serve failed to start: {holder.get('error', 'timeout')}")
    return BackgroundServer(holder["service"], holder["loop"], thread,
                            holder["stop_event"])
