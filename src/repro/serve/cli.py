"""``repro serve`` / ``repro submit`` / ``repro slo`` -- service CLIs.

* ``repro serve``          -- run the HTTP service in the foreground
                              (``--check`` prints the health document
                              and exits without binding a socket).
* ``repro serve trace``    -- reconstruct one served request's full
                              lifecycle (queue record, span tree from
                              the run ledger) from its job id.
* ``repro submit``         -- submit one job to a running service,
                              optionally following its SSE event stream
                              and waiting for the result.
* ``repro slo``            -- evaluate a TOML objectives file against
                              ``repro.serve-metrics/1`` snapshots;
                              exits 1 on breach.
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path

from repro.farm.cli import parse_size
from repro.farm.store import ArtifactStore, default_store_root
from repro.serve.schemas import SERVE_JOB_SCHEMA_VERSION

DEFAULT_PORT = 8732


def _store_for(args) -> ArtifactStore:
    root = getattr(args, "store", None) or default_store_root()
    return ArtifactStore(root)


def cmd_serve(args) -> int:
    from repro.serve.queue import PersistentQueue
    from repro.serve.service import ServeConfig, ServeService, build_health

    store = _store_for(args)
    if args.check:
        queue = PersistentQueue(store.root / "serve" / "queue",
                                quota=args.quota)
        print(json.dumps(build_health(store, queue),
                         indent=2, sort_keys=True))
        return 0

    config = ServeConfig(
        host=args.host, port=args.port, quota=args.quota,
        farm_jobs=args.jobs, job_timeout=args.timeout,
        retries=args.retries,
        gc_max_bytes=(parse_size(args.gc_max_bytes)
                      if args.gc_max_bytes else None),
        metrics_enabled=not args.no_metrics,
        access_log=args.access_log,
    )

    async def _main() -> None:
        service = ServeService(store, config)
        await service.start()
        print(f"[serve] listening on http://{config.host}:{service.port} "
              f"(store: {store.root}, quota: {config.quota}/tenant)",
              file=sys.stderr)
        try:
            async with service.server:
                await service.server.serve_forever()
        finally:
            await service.shutdown()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("[serve] shutting down", file=sys.stderr)
    return 0


def cmd_serve_trace(args) -> int:
    """Print one served request's lifecycle: record + ledger span tree.

    Reads the queue's record file directly (instantiating the live
    queue would requeue RUNNING jobs under a running service) and finds
    the job's run in the span ledger by meta.
    """
    from repro.farm import ledger as ledger_mod
    from repro.serve.worker import normalized_events

    store = _store_for(args)
    record_path = (store.root / "serve" / "queue" / "jobs"
                   / f"{args.job_id}.json")
    if not record_path.is_file():
        print(f"no job {args.job_id!r} under {store.root}", file=sys.stderr)
        return 2
    with open(record_path) as handle:
        record = json.load(handle)
    run = ledger_mod.find_run_by_job(store, args.job_id)

    if args.json:
        doc = {
            "job_id": args.job_id,
            "trace_id": record.get("trace_id"),
            "record": record,
            "run_id": run.run_id if run is not None else None,
            "spans": run.spans if run is not None else [],
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0

    print(f"job {args.job_id} (tenant {record.get('tenant')}, "
          f"state {record.get('state')})")
    print(f"trace_id: {record.get('trace_id', '?')}")
    if record.get("ingress_seconds") is not None:
        print(f"ingress: {record['ingress_seconds']:.6f}s")
    result = record.get("result") or {}
    if result.get("queue_wait_seconds") is not None:
        print(f"queue wait: {result['queue_wait_seconds']:.6f}s")
    if result.get("elapsed_seconds") is not None:
        print(f"execution: {result['elapsed_seconds']:.3f}s "
              f"(run {result.get('run_id')})")

    events_path = store.root / "serve" / "events" / f"{args.job_id}.jsonl"
    if events_path.is_file():
        with open(events_path) as handle:
            entries = [json.loads(line) for line in handle if line.strip()]
        print(f"events ({len(entries)}):")
        for entry in normalized_events(entries):
            print(f"  [{entry.get('seq', '?'):>3}] {entry.get('event')}")

    if run is None:
        print("no ledger run recorded for this job (still queued, or "
              "the run failed before the ledger write)")
        return 0
    by_parent: dict[int | None, list[dict]] = {}
    for span in run.spans:
        by_parent.setdefault(span["parent_id"], []).append(span)

    def emit(span, depth):
        dur = "   open  " if span["t1"] is None else \
            f"{span['t1'] - span['t0']:>8.3f}s"
        print(f"{dur}  {'  ' * depth}{span['name']}")
        for child in sorted(by_parent.get(span["span_id"], []),
                            key=lambda s: s["t0"]):
            emit(child, depth + 1)

    print(f"span tree (run {run.run_id}):")
    for root in sorted(by_parent.get(None, []), key=lambda s: s["t0"]):
        emit(root, 0)
    return 0


def cmd_slo(args) -> int:
    """Evaluate SLOs; exit 0 healthy, 1 breached, 2 on bad input."""
    from repro.serve import slo as slo_mod

    try:
        objectives = slo_mod.load_objectives(args.objectives)
        snapshots = slo_mod.load_snapshots(args.from_metrics)
        report = slo_mod.evaluate(objectives, snapshots,
                                  window_override=args.window)
    except (slo_mod.SloConfigError, OSError, ValueError) as exc:
        print(f"slo: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(slo_mod.format_report(report))
    return 1 if report["breached"] else 0


def cmd_submit(args) -> int:
    from repro.serve import client as serve_client

    if (args.benchmark is None) == (args.source is None):
        print("submit: pass exactly one of --benchmark NAME or "
              "--source FILE", file=sys.stderr)
        return 2
    payload = {
        "schema": SERVE_JOB_SCHEMA_VERSION,
        "tenant": args.tenant,
        "software": args.software_support,
        "analysis": args.analysis,
        "priority": args.priority,
    }
    if args.benchmark is not None:
        payload["benchmark"] = args.benchmark
    else:
        with open(args.source) as handle:
            payload["source"] = handle.read()
        payload["name"] = args.name or Path(args.source).stem
    if args.machines:
        payload["machines"] = [m.strip() for m in args.machines.split(",")
                               if m.strip()]
    if args.max_instructions:
        payload["max_instructions"] = args.max_instructions

    status, doc = serve_client.submit(args.url, payload)
    if status != 202:
        print(json.dumps(doc, indent=2, sort_keys=True), file=sys.stderr)
        return 1
    job_id = doc["job_id"]
    print(f"[submit] accepted as {job_id}", file=sys.stderr)
    if args.no_wait:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    if args.follow:
        for entry in serve_client.stream_events(args.url, job_id,
                                                timeout=args.wait_timeout):
            print(f"[{entry['seq']:3d}] {entry.get('event')} "
                  f"{entry.get('job_id', '')}", file=sys.stderr)
    record = serve_client.wait_job(args.url, job_id,
                                  timeout=args.wait_timeout)
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        result = record.get("result") or {}
        summary = result.get("summary", {})
        print(f"[submit] {job_id}: {record['state']} "
              f"({summary.get('hits', 0)} hits, "
              f"{summary.get('computed', 0)} computed, "
              f"{len(summary.get('failed', []))} failed, "
              f"{result.get('elapsed_seconds', '?')}s)",
              file=sys.stderr)
        for ref in result.get("artifacts", []):
            print(f"  {ref['kind']:10s} {ref['key']}", file=sys.stderr)
    return 0 if record["state"] == "done" else 1


def add_serve_parser(sub) -> None:
    """Register ``serve`` and ``submit`` on a ``__main__`` subparser set."""
    p_serve = sub.add_parser(
        "serve", help="simulation-as-a-service HTTP server")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help=f"listen port (default {DEFAULT_PORT}, "
                              f"0 = ephemeral)")
    p_serve.add_argument("--store", default=None, metavar="DIR",
                         help="artifact store root (default: "
                              "$REPRO_FARM_DIR or .repro-farm/)")
    p_serve.add_argument("--quota", type=int, default=8,
                         help="per-tenant in-flight job quota (default 8)")
    p_serve.add_argument("--jobs", "-j", type=int, default=1,
                         help="farm workers per served job (default 1)")
    p_serve.add_argument("--timeout", type=float, default=300.0,
                         help="per farm-job attempt timeout (default 300)")
    p_serve.add_argument("--retries", type=int, default=1)
    p_serve.add_argument("--gc-max-bytes", default=None, metavar="SIZE",
                         help="trim the store to SIZE between jobs "
                              "(K/M/G suffixes; default: no trimming)")
    p_serve.add_argument("--check", action="store_true",
                         help="print the health document and exit")
    p_serve.add_argument("--access-log", default=None, metavar="FILE",
                         help="append structured JSONL access-log lines "
                              "to FILE")
    p_serve.add_argument("--no-metrics", action="store_true",
                         help="disable the metrics registry and /metrics "
                              "endpoints (overhead A/B runs)")
    p_serve.set_defaults(func=cmd_serve)

    serve_sub = p_serve.add_subparsers(dest="serve_command",
                                       required=False, metavar="")
    p_trace = serve_sub.add_parser(
        "trace", help="print one served request's trace (record, events, "
                      "span tree)")
    p_trace.add_argument("job_id", metavar="JOB_ID")
    p_trace.add_argument("--store", default=None, metavar="DIR",
                         help="artifact store root (default: "
                              "$REPRO_FARM_DIR or .repro-farm/)")
    p_trace.add_argument("--json", action="store_true",
                         help="print the full trace document as JSON")
    p_trace.set_defaults(func=cmd_serve_trace)

    p_submit = sub.add_parser(
        "submit", help="submit one job to a running serve instance")
    p_submit.add_argument("--url", default=f"http://127.0.0.1:{DEFAULT_PORT}")
    p_submit.add_argument("--benchmark", default=None, metavar="NAME",
                          help="a registered suite benchmark")
    p_submit.add_argument("--source", default=None, metavar="FILE",
                          help="an inline MiniC program")
    p_submit.add_argument("--name", default=None,
                          help="display name for --source jobs")
    p_submit.add_argument("--machines", default=None, metavar="LIST",
                          help="comma-separated machine flavours "
                               "(default: base)")
    p_submit.add_argument("--analysis", action="store_true",
                          help="also request the trace analysis")
    p_submit.add_argument("--software-support", action="store_true",
                          help="compile with the Section 4 support")
    p_submit.add_argument("--tenant", default="cli")
    p_submit.add_argument("--priority", type=int, default=0)
    p_submit.add_argument("--max-instructions", type=int, default=None)
    p_submit.add_argument("--follow", action="store_true",
                          help="stream the job's SSE events while waiting")
    p_submit.add_argument("--no-wait", action="store_true",
                          help="print the accepted record and exit")
    p_submit.add_argument("--wait-timeout", type=float, default=600.0)
    p_submit.add_argument("--json", action="store_true",
                          help="print the full job record as JSON")
    p_submit.set_defaults(func=cmd_submit)


def add_slo_parser(sub) -> None:
    """Register ``slo`` on a ``__main__`` subparser set."""
    p_slo = sub.add_parser(
        "slo", help="evaluate service-level objectives over metrics "
                    "snapshots")
    p_slo.add_argument("--objectives", required=True, metavar="TOML",
                       help="TOML objectives file (see docs/serving.md)")
    p_slo.add_argument("--from-metrics", required=True, nargs="+",
                       metavar="JSON",
                       help="one or more repro.serve-metrics/1 snapshots "
                            "(a series enables windowed burn rates)")
    p_slo.add_argument("--window", type=float, default=None,
                       metavar="SECONDS",
                       help="evaluate over the trailing SECONDS instead "
                            "of the objectives file's windows")
    p_slo.add_argument("--check", action="store_true",
                       help="explicit gate mode (the default already "
                            "exits 1 on breach; this flag documents "
                            "intent in CI)")
    p_slo.add_argument("--json", action="store_true",
                       help="print the repro.slo-report/1 document")
    p_slo.set_defaults(func=cmd_slo)
