"""``repro serve`` / ``repro submit`` -- the service CLI surfaces.

* ``repro serve``          -- run the HTTP service in the foreground
                              (``--check`` prints the health document
                              and exits without binding a socket).
* ``repro submit``         -- submit one job to a running service,
                              optionally following its SSE event stream
                              and waiting for the result.
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path

from repro.farm.cli import parse_size
from repro.farm.store import ArtifactStore, default_store_root
from repro.serve.schemas import SERVE_JOB_SCHEMA_VERSION

DEFAULT_PORT = 8732


def _store_for(args) -> ArtifactStore:
    root = getattr(args, "store", None) or default_store_root()
    return ArtifactStore(root)


def cmd_serve(args) -> int:
    from repro.serve.queue import PersistentQueue
    from repro.serve.service import ServeConfig, ServeService, build_health

    store = _store_for(args)
    if args.check:
        queue = PersistentQueue(store.root / "serve" / "queue",
                                quota=args.quota)
        print(json.dumps(build_health(store, queue),
                         indent=2, sort_keys=True))
        return 0

    config = ServeConfig(
        host=args.host, port=args.port, quota=args.quota,
        farm_jobs=args.jobs, job_timeout=args.timeout,
        retries=args.retries,
        gc_max_bytes=(parse_size(args.gc_max_bytes)
                      if args.gc_max_bytes else None),
    )

    async def _main() -> None:
        service = ServeService(store, config)
        await service.start()
        print(f"[serve] listening on http://{config.host}:{service.port} "
              f"(store: {store.root}, quota: {config.quota}/tenant)",
              file=sys.stderr)
        try:
            async with service.server:
                await service.server.serve_forever()
        finally:
            await service.shutdown()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("[serve] shutting down", file=sys.stderr)
    return 0


def cmd_submit(args) -> int:
    from repro.serve import client as serve_client

    if (args.benchmark is None) == (args.source is None):
        print("submit: pass exactly one of --benchmark NAME or "
              "--source FILE", file=sys.stderr)
        return 2
    payload = {
        "schema": SERVE_JOB_SCHEMA_VERSION,
        "tenant": args.tenant,
        "software": args.software_support,
        "analysis": args.analysis,
        "priority": args.priority,
    }
    if args.benchmark is not None:
        payload["benchmark"] = args.benchmark
    else:
        with open(args.source) as handle:
            payload["source"] = handle.read()
        payload["name"] = args.name or Path(args.source).stem
    if args.machines:
        payload["machines"] = [m.strip() for m in args.machines.split(",")
                               if m.strip()]
    if args.max_instructions:
        payload["max_instructions"] = args.max_instructions

    status, doc = serve_client.submit(args.url, payload)
    if status != 202:
        print(json.dumps(doc, indent=2, sort_keys=True), file=sys.stderr)
        return 1
    job_id = doc["job_id"]
    print(f"[submit] accepted as {job_id}", file=sys.stderr)
    if args.no_wait:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    if args.follow:
        for entry in serve_client.stream_events(args.url, job_id,
                                                timeout=args.wait_timeout):
            print(f"[{entry['seq']:3d}] {entry.get('event')} "
                  f"{entry.get('job_id', '')}", file=sys.stderr)
    record = serve_client.wait_job(args.url, job_id,
                                  timeout=args.wait_timeout)
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        result = record.get("result") or {}
        summary = result.get("summary", {})
        print(f"[submit] {job_id}: {record['state']} "
              f"({summary.get('hits', 0)} hits, "
              f"{summary.get('computed', 0)} computed, "
              f"{len(summary.get('failed', []))} failed, "
              f"{result.get('elapsed_seconds', '?')}s)",
              file=sys.stderr)
        for ref in result.get("artifacts", []):
            print(f"  {ref['kind']:10s} {ref['key']}", file=sys.stderr)
    return 0 if record["state"] == "done" else 1


def add_serve_parser(sub) -> None:
    """Register ``serve`` and ``submit`` on a ``__main__`` subparser set."""
    p_serve = sub.add_parser(
        "serve", help="simulation-as-a-service HTTP server")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help=f"listen port (default {DEFAULT_PORT}, "
                              f"0 = ephemeral)")
    p_serve.add_argument("--store", default=None, metavar="DIR",
                         help="artifact store root (default: "
                              "$REPRO_FARM_DIR or .repro-farm/)")
    p_serve.add_argument("--quota", type=int, default=8,
                         help="per-tenant in-flight job quota (default 8)")
    p_serve.add_argument("--jobs", "-j", type=int, default=1,
                         help="farm workers per served job (default 1)")
    p_serve.add_argument("--timeout", type=float, default=300.0,
                         help="per farm-job attempt timeout (default 300)")
    p_serve.add_argument("--retries", type=int, default=1)
    p_serve.add_argument("--gc-max-bytes", default=None, metavar="SIZE",
                         help="trim the store to SIZE between jobs "
                              "(K/M/G suffixes; default: no trimming)")
    p_serve.add_argument("--check", action="store_true",
                         help="print the health document and exit")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit one job to a running serve instance")
    p_submit.add_argument("--url", default=f"http://127.0.0.1:{DEFAULT_PORT}")
    p_submit.add_argument("--benchmark", default=None, metavar="NAME",
                          help="a registered suite benchmark")
    p_submit.add_argument("--source", default=None, metavar="FILE",
                          help="an inline MiniC program")
    p_submit.add_argument("--name", default=None,
                          help="display name for --source jobs")
    p_submit.add_argument("--machines", default=None, metavar="LIST",
                          help="comma-separated machine flavours "
                               "(default: base)")
    p_submit.add_argument("--analysis", action="store_true",
                          help="also request the trace analysis")
    p_submit.add_argument("--software-support", action="store_true",
                          help="compile with the Section 4 support")
    p_submit.add_argument("--tenant", default="cli")
    p_submit.add_argument("--priority", type=int, default=0)
    p_submit.add_argument("--max-instructions", type=int, default=None)
    p_submit.add_argument("--follow", action="store_true",
                          help="stream the job's SSE events while waiting")
    p_submit.add_argument("--no-wait", action="store_true",
                          help="print the accepted record and exit")
    p_submit.add_argument("--wait-timeout", type=float, default=600.0)
    p_submit.add_argument("--json", action="store_true",
                          help="print the full job record as JSON")
    p_submit.set_defaults(func=cmd_submit)
