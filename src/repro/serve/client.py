"""Minimal stdlib client for the serve API.

Shared by ``repro submit``, the load generator, and the serve tests --
one implementation of the wire details (JSON bodies, SSE framing) so a
protocol change breaks loudly in one place.
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import urlsplit


def _connect(base_url: str, timeout: float) -> http.client.HTTPConnection:
    parts = urlsplit(base_url)
    return http.client.HTTPConnection(parts.hostname, parts.port,
                                      timeout=timeout)


def request_json(base_url: str, method: str, path: str, payload=None,
                 timeout: float = 30.0,
                 headers: dict | None = None) -> tuple[int, dict]:
    """One JSON request/response; returns ``(status, document)``.

    ``headers`` lets callers propagate trace context
    (``x-repro-trace-id`` / ``traceparent``).
    """
    conn = _connect(base_url, timeout)
    try:
        body = None
        send_headers = dict(headers or {})
        if payload is not None:
            body = json.dumps(payload).encode()
            send_headers["Content-Type"] = "application/json"
        conn.request(method, path, body=body, headers=send_headers)
        response = conn.getresponse()
        raw = response.read()
        doc = json.loads(raw.decode()) if raw else {}
        return response.status, doc
    finally:
        conn.close()


def request_text(base_url: str, path: str,
                 timeout: float = 30.0) -> tuple[int, str]:
    """One plain-text GET (the Prometheus ``/metrics`` endpoint)."""
    conn = _connect(base_url, timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read().decode()
    finally:
        conn.close()


def submit(base_url: str, payload: dict,
           timeout: float = 30.0,
           headers: dict | None = None) -> tuple[int, dict]:
    return request_json(base_url, "POST", "/v1/jobs", payload,
                        timeout=timeout, headers=headers)


def get_metrics(base_url: str, timeout: float = 30.0) -> tuple[int, dict]:
    return request_json(base_url, "GET", "/v1/metrics", timeout=timeout)


def get_job(base_url: str, job_id: str,
            timeout: float = 30.0) -> tuple[int, dict]:
    return request_json(base_url, "GET", f"/v1/jobs/{job_id}",
                        timeout=timeout)


def get_health(base_url: str, timeout: float = 30.0) -> tuple[int, dict]:
    return request_json(base_url, "GET", "/v1/health", timeout=timeout)


def wait_job(base_url: str, job_id: str, timeout: float = 120.0,
             poll: float = 0.1) -> dict:
    """Poll until the job reaches a terminal state; returns the record."""
    deadline = time.monotonic() + timeout
    while True:
        status, record = get_job(base_url, job_id)
        if status == 200 and record.get("state") in ("done", "failed"):
            return record
        if time.monotonic() > deadline:
            raise TimeoutError(
                f"job {job_id} still {record.get('state')!r} "
                f"after {timeout}s")
        time.sleep(poll)


def stream_events(base_url: str, job_id: str,
                  timeout: float = 120.0) -> list[dict]:
    """Consume the job's SSE stream to completion.

    Returns the decoded ``data:`` payloads in arrival order. The server
    closes the stream after the terminal event, so reading to EOF is
    the termination condition.
    """
    conn = _connect(base_url, timeout)
    try:
        conn.request("GET", f"/v1/jobs/{job_id}/events")
        response = conn.getresponse()
        if response.status != 200:
            raw = response.read()
            raise RuntimeError(f"SSE request failed ({response.status}): "
                               f"{raw.decode(errors='replace')}")
        entries: list[dict] = []
        data_lines: list[str] = []
        while True:
            raw = response.readline()
            if not raw:
                break
            line = raw.decode().rstrip("\n").rstrip("\r")
            if not line:                      # frame boundary
                if data_lines:
                    entries.append(json.loads("\n".join(data_lines)))
                    data_lines = []
                continue
            if line.startswith("data:"):
                data_lines.append(line[5:].lstrip())
        if data_lines:                        # unterminated final frame
            entries.append(json.loads("\n".join(data_lines)))
        return entries
    finally:
        conn.close()
