"""The serve worker: one submission -> one farm sweep.

:func:`plan_serve_graph` lowers a normalized submission onto the same
build -> trace -> analysis/sim job graph ``repro farm run`` plans, with
one addition: inline-source submissions carry their MiniC text on the
:class:`~repro.farm.jobs.JobSpec` and fingerprint by content, so two
tenants submitting the same program share every artifact.

:func:`run_serve_job` is thread-side (the service calls it via
``asyncio.to_thread``): it drives the farm scheduler with a private
:class:`~repro.obs.events.EventBus` relayed into the job's
:class:`JobEventLog`, collects the per-cell snapshots from the store,
pins them across an optional size-budgeted gc (so trimming the cache
between jobs can never evict the result being returned), and persists
a ``repro.ledger/1`` manifest -- served runs show up in ``repro farm
history`` and ``farm timeline`` like any sweep.

Every log entry carries a per-job ``seq``; :func:`normalized_events`
strips wall-clock and resource fields, leaving a byte-deterministic
view (the SSE golden test and the load generator's no-drop/no-dup
check both build on it).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.farm import ledger as ledger_mod
from repro.farm.jobs import Cell, JobGraph, JobSpec
from repro.farm.scheduler import run_graph
from repro.farm.store import ArtifactStore
from repro.obs.events import Event, EventBus, subscribe_async
from repro.obs.spans import SpanTracker

#: Log-entry keys that legitimately differ between byte-identical runs
#: (wall-clock stamps, resource usage, run/request identity).
NONDETERMINISTIC_KEYS = frozenset({
    "ts", "elapsed", "elapsed_seconds", "cpu_seconds", "max_rss_bytes",
    "wall", "cpu", "max_rss", "run_id", "created", "updated", "trace_id",
})


# ------------------------------------------------------------------ #
# serve lifecycle events (alongside the farm.* taxonomy)

@dataclass(slots=True)
class ServeJobQueued(Event):
    """A submission was admitted to the queue."""

    kind = "serve.job.queued"
    job_id: str
    tenant: str
    name: str


@dataclass(slots=True)
class ServeJobStarted(Event):
    """The worker picked the job up and is planning its sweep."""

    kind = "serve.job.started"
    job_id: str
    tenant: str


@dataclass(slots=True)
class ServeJobFinished(Event):
    """Terminal: the sweep completed (``status`` done or failed)."""

    kind = "serve.job.finished"
    job_id: str
    status: str
    hits: int
    computed: int
    failed: int


# ------------------------------------------------------------------ #
# per-job event log

class JobEventLog:
    """Append-only, seq-stamped event log of one served job.

    Producers append from any thread (the farm scheduler's result pump,
    the service's event loop); consumers take a consistent snapshot and
    subscribe for the live tail in one atomic step, so an SSE stream
    sees every event exactly once: entries up to the snapshot come from
    replay, everything after arrives over the subscription, and the
    boundary cannot lose or double an event because appends hold the
    same lock the snapshot takes.

    ``path`` (optional) persists each entry as one JSON line, letting a
    restarted service replay the log of jobs it never saw run.
    """

    def __init__(self, path=None):
        self.entries: list[dict] = []
        self.lock = threading.Lock()
        self.bus = EventBus()
        self.path = path
        if path is not None and path.is_file():
            import json

            with open(path) as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        self.entries.append(json.loads(line))

    def append(self, payload: dict) -> dict:
        with self.lock:
            entry = {"seq": len(self.entries),
                     "ts": round(time.time(), 6), **payload}
            self.entries.append(entry)
            if self.path is not None:
                import json

                with open(self.path, "a") as handle:
                    handle.write(json.dumps(entry, sort_keys=True))
                    handle.write("\n")
            self.bus.emit(entry)
        return entry

    def append_event(self, event: Event) -> dict:
        return self.append(event.as_dict())

    def snapshot_and_subscribe(self, loop=None):
        """``(entries_so_far, live_subscription)``, atomically."""
        with self.lock:
            return list(self.entries), subscribe_async(self.bus, loop=loop)

    def handle(self, event) -> None:
        """Sink protocol: lets the log sit directly on a farm bus."""
        self.append(event.as_dict() if isinstance(event, Event) else event)


def is_terminal(entry: dict) -> bool:
    """Does this log entry end the stream?"""
    return entry.get("event") == ServeJobFinished.kind


def normalized_events(entries) -> list[dict]:
    """The deterministic view: same submission, same bytes."""
    return [{k: v for k, v in entry.items()
             if k not in NONDETERMINISTIC_KEYS}
            for entry in entries]


# ------------------------------------------------------------------ #
# request-scoped span tree

def graft_request_spans(tracker: SpanTracker, record: dict,
                        picked_up: float) -> int:
    """Wrap a sweep's span tree in a request-scoped root span.

    The farm scheduler records the sweep as its own root; this grafts
    that tree (and any other parentless spans) under one ``request``
    span carrying the trace identity, with synthetic ``ingress`` and
    ``queue.wait`` children reconstructed from the queue record's
    monotonic ``enqueued_at`` / ``ingress_seconds``. The request root's
    ``t0`` is backdated to ingress start so it is the earliest timestamp
    in the run and the ledger's rebase keeps every span non-negative.

    Returns the request root's span id.
    """
    enqueued_at = record.get("enqueued_at")
    ingress = float(record.get("ingress_seconds") or 0.0)
    queue_wait = max(0.0, picked_up - float(enqueued_at)) \
        if enqueued_at is not None else 0.0
    t_enqueue = picked_up - queue_wait
    t_ingress0 = t_enqueue - ingress

    sweep_roots = [s for s in tracker.spans.values()
                   if s.parent_id is None]
    root_id = tracker.start("request", cat="request", attrs={
        "trace_id": record.get("trace_id", ""),
        "serve_job_id": record["job_id"],
        "tenant": record["submission"]["tenant"],
        "name": record["submission"]["name"],
        "queue_wait_seconds": round(queue_wait, 6),
        "ingress_seconds": round(ingress, 6),
    })
    tracker.spans[root_id].t0 = t_ingress0
    if ingress > 0.0:
        span = tracker.end(tracker.start(
            "ingress", parent=root_id, cat="serve"))
        span.t0, span.t1 = t_ingress0, t_enqueue
    span = tracker.end(tracker.start(
        "queue.wait", parent=root_id, cat="serve",
        attrs={"queue_wait_seconds": round(queue_wait, 6)}))
    span.t0, span.t1 = t_enqueue, picked_up
    for span in sweep_roots:
        span.parent_id = root_id
    tracker.end(root_id)
    return root_id


# ------------------------------------------------------------------ #
# planning and execution

def plan_serve_graph(submission: dict, machines: dict) -> JobGraph:
    """Lower one normalized submission onto a farm job graph."""
    name = submission["name"]
    software = submission["software"]
    source = submission["source"]
    budget = submission["max_instructions"]
    tag = f"{name}+sw" if software else name

    graph = JobGraph()
    build_id = f"build:{tag}"
    trace_id = f"trace:{tag}"
    graph.jobs[build_id] = JobSpec(
        job_id=build_id, kind="build", name=name, software=software,
        max_instructions=budget, source=source)
    graph.jobs[trace_id] = JobSpec(
        job_id=trace_id, kind="trace", name=name, software=software,
        max_instructions=budget, deps=(build_id,), source=source)
    if submission["analysis"]:
        job_id = f"analysis:{tag}"
        graph.jobs[job_id] = JobSpec(
            job_id=job_id, kind="analysis", name=name, software=software,
            max_instructions=budget, deps=(trace_id,), source=source)
        graph.cell_jobs[Cell("analysis", name, software)] = job_id
    for label in submission["machines"]:
        job_id = f"sim:{tag}:{label}"
        graph.jobs[job_id] = JobSpec(
            job_id=job_id, kind="sim", name=name, software=software,
            max_instructions=budget, machine_label=label,
            machine=machines[label], deps=(trace_id,), source=source)
        graph.cell_jobs[Cell("sim", name, software, label)] = job_id
    return graph


def run_serve_job(store: ArtifactStore, record: dict, log: JobEventLog,
                  machines: dict, jobs: int = 1,
                  timeout: float | None = 300.0, retries: int = 1,
                  gc_max_bytes: int | None = None) -> dict:
    """Execute one queue record against the farm; returns the result doc.

    Runs on a worker thread. Never raises: planning or execution
    failures land in the result doc with ``status: "failed"``, and the
    terminal ``serve.job.finished`` event is always appended.
    """
    submission = record["submission"]
    start = time.monotonic()
    enqueued_at = record.get("enqueued_at")
    queue_wait = max(0.0, start - float(enqueued_at)) \
        if enqueued_at is not None else 0.0
    try:
        graph = plan_serve_graph(submission, machines)
        bus = EventBus([log])
        tracker = SpanTracker()
        result = run_graph(graph, store, jobs=jobs, timeout=timeout,
                           retries=retries, obs=bus, tracker=tracker)
        summary = result.summary()
        graft_request_spans(tracker, record, start)

        artifacts = []
        results: dict = {"machines": {}}
        for cell, job_id in sorted(graph.cell_jobs.items(),
                                   key=lambda kv: kv[1]):
            outcome = result.outcomes[job_id]
            if not outcome.ok or outcome.key is None:
                continue
            artifacts.append({"kind": cell.kind, "key": outcome.key})
            snapshot = store.get_json(cell.kind, outcome.key)
            if cell.kind == "analysis":
                results["analysis"] = snapshot
            else:
                results["machines"][cell.machine] = snapshot

        # Keep this job's outputs warm across the between-jobs trim.
        for ref in artifacts:
            store.pin(ref["kind"], ref["key"])
        try:
            if gc_max_bytes is not None:
                store.gc(max_bytes=gc_max_bytes)
        finally:
            for ref in artifacts:
                store.unpin(ref["kind"], ref["key"])

        run = ledger_mod.run_from_sweep(
            ledger_mod.new_run_id(), graph, result, tracker,
            meta={"serve": True, "job_id": record["job_id"],
                  "trace_id": record.get("trace_id", ""),
                  "tenant": submission["tenant"],
                  "name": submission["name"]})
        ledger_mod.write_run(store, run)

        status = "done" if result.ok else "failed"
        doc = {
            "status": status,
            "run_id": run.run_id,
            "trace_id": record.get("trace_id", ""),
            "summary": summary,
            "artifacts": artifacts,
            "results": results,
            "queue_wait_seconds": round(queue_wait, 6),
            "elapsed_seconds": round(time.monotonic() - start, 3),
        }
    except Exception as exc:  # noqa: BLE001 - reported in the result doc
        doc = {
            "status": "failed",
            "run_id": None,
            "trace_id": record.get("trace_id", ""),
            "summary": {"total": 0, "hits": 0, "computed": 0,
                        "failed": ["plan"],
                        "errors": {"plan": f"{type(exc).__name__}: {exc}"}},
            "artifacts": [],
            "results": {},
            "queue_wait_seconds": round(queue_wait, 6),
            "elapsed_seconds": round(time.monotonic() - start, 3),
        }
    log.append_event(ServeJobFinished(
        job_id=record["job_id"], status=doc["status"],
        hits=doc["summary"].get("hits", 0),
        computed=doc["summary"].get("computed", 0),
        failed=len(doc["summary"].get("failed", []))))
    return doc
