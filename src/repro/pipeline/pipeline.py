"""Trace-driven timing model of the Table 5 machine.

The functional simulator (:class:`repro.cpu.CPU`) supplies retired
instructions in program order; this module assigns each one an issue
cycle under the machine's constraints and accumulates cycle counts.
The model captures:

* 4-wide in-order issue with out-of-order completion (a scoreboard of
  per-register ready cycles),
* functional-unit structural hazards (counts per class; non-pipelined
  integer/FP divide),
* fetch constraints: 4 contiguous instructions per cycle, issue-group
  breaks at taken branches, BTB-driven 2-cycle misprediction bubbles,
  I-cache misses,
* the dual-read-ported / single-write-ported non-blocking data cache
  (two loads *or* one store per cycle) with a 16-entry non-merging store
  buffer that retires entries during unused cache cycles,
* **fast address calculation**: speculative cache access in EX when the
  predictor allows it, replay in MEM on misprediction, and the Section
  5.5 issue policy -- accesses issued the cycle after a misprediction do
  not speculate, except a load directly after a misspeculated load.

Timing for a load issued at cycle ``t`` (hit):

==============================  =============================
baseline                        result ready at ``t + 2``
1-cycle loads (Figure 2)        result ready at ``t + 1``
FAC, predicted correctly        result ready at ``t + 1``
FAC, mispredicted               result ready at ``t + 2``
==============================  =============================

A miss adds ``dcache.miss_latency`` cycles in every case (the cache is
non-blocking: only dependents stall).
"""

from __future__ import annotations

from collections import deque

from repro.cache.cache import Cache
from repro.cpu.executor import CPU, TraceRecord
from repro.fac.predictor import FastAddressCalculator
from repro.isa.opcodes import Op, OpClass, OP_INFO
from repro.isa.program import Program
from repro.obs.events import (
    BranchResolved,
    FacPredict,
    FacReplay,
    InstRetired,
    MemAccess,
    StoreBufferFullStall,
    StoreBufferInsert,
)
from repro.pipeline.btb import BranchTargetBuffer
from repro.pipeline.config import MachineConfig
from repro.pipeline.deps import NUM_SLOTS, sources_and_dests
from repro.pipeline.result import SimResult
from repro.utils.bits import to_signed32

_FU_CLASS = {
    OpClass.ALU: "alu",
    OpClass.BRANCH: "alu",
    OpClass.JUMP: "alu",
    OpClass.SYSTEM: "alu",
    OpClass.LOAD: "ldst",
    OpClass.STORE: "ldst",
    OpClass.IMULT: "imd",
    OpClass.IDIV: "imd",
    OpClass.FPADD: "fpa",
    OpClass.FPMULT: "fpm",
    OpClass.FPDIV: "fpm",
}


class PipelineSimulator:
    """Issue-cycle assignment engine; feed() one trace record at a time."""

    def __init__(self, config: MachineConfig | None = None, obs=None):
        self.config = config or MachineConfig()
        cfg = self.config
        # Optional EventBus. Every emission below is guarded by an
        # ``is not None`` test so the disabled path costs one attribute
        # check (bounded by benchmarks/test_obs_overhead.py).
        self.obs = obs
        self.icache = Cache(cfg.icache, obs=obs)
        self.dcache = Cache(cfg.dcache, obs=obs)
        self.btb = BranchTargetBuffer(cfg.btb_entries)
        self.fac = FastAddressCalculator(cfg.fac) if cfg.fac is not None else None
        self.result = SimResult()

        self._fu_limit = {
            "alu": cfg.int_alus,
            "ldst": cfg.load_store_units,
            "imd": cfg.int_mult_div_units,
            "fpa": cfg.fp_adders,
            "fpm": cfg.fp_mult_div_units,
        }
        # per-static-instruction facts, keyed by id(inst); the tuple keeps
        # the instruction alive so the id can never be recycled
        self._facts: dict[int, tuple] = {}
        self._non_pipelined = cfg.non_pipelined
        self._reg_ready = [0] * NUM_SLOTS
        self._cur_cycle = 0
        self._issued_in_cycle = 0
        self._fu_used = {"alu": 0, "ldst": 0, "imd": 0, "fpa": 0, "fpm": 0}
        self._unit_free = {"imd": 0, "fpm": 0}  # non-pipelined busy-until
        self._fetch_ready = 0
        self._last_iblock = -1
        self._iblock_shift = cfg.icache.offset_bits
        # cache port usage per cycle: cycle -> [loads, stores]
        self._ports: dict[int, list[int]] = {}
        # store buffer: deque of ready cycles; cursor for retirement scan
        self._store_buffer: deque[int] = deque()
        self._sb_cursor = 0
        # FAC issue policy: cycle and kind of the last misprediction
        self._mispredict_cycle = -2
        self._mispredict_was_load = False
        self._mem_plan: tuple[bool, int] = (False, 0)
        self._final_cycle = 0
        # optional per-instruction trace: (rec, issue_cycle, ready_cycle,
        # mem_access_cycle or None); enabled by attaching a list
        self.trace: list | None = None
        # optional flight-recorder ring tap: (slots, cap, seq_cell), see
        # repro.obs.flight. The pipeline writes ring slots inline so the
        # recorder adds no call frames to the hot loops; detached cost
        # is one attribute test per instruction.
        self._flight: tuple | None = None
        # observability bookkeeping (only touched when obs is attached)
        self._seq = 0
        self._fac_outcome: tuple[bool | None, str | None] = (None, None)

    # ------------------------------------------------------------------ #
    # resource helpers

    def _ports_at(self, cycle: int) -> list[int]:
        usage = self._ports.get(cycle)
        if usage is None:
            usage = [0, 0]
            self._ports[cycle] = usage
            if len(self._ports) > 128:
                floor = self._cur_cycle
                for key in [k for k in self._ports if k < floor]:
                    del self._ports[key]
        return usage

    def _load_port_free(self, cycle: int) -> bool:
        usage = self._ports_at(cycle)
        return usage[1] == 0 and usage[0] < self.config.dcache_read_ports

    def _store_port_free(self, cycle: int) -> bool:
        usage = self._ports_at(cycle)
        return usage[0] == 0 and usage[1] < self.config.dcache_write_ports

    def _claim_load_port(self, cycle: int) -> None:
        self._ports_at(cycle)[0] += 1

    def _claim_store_port(self, cycle: int) -> None:
        self._ports_at(cycle)[1] += 1

    def _cycle_unused(self, cycle: int) -> bool:
        usage = self._ports.get(cycle)
        return usage is None or (usage[0] == 0 and usage[1] == 0)

    def _advance_cycle(self, cycle: int) -> None:
        if cycle > self._cur_cycle:
            self._cur_cycle = cycle
            self._issued_in_cycle = 0
            for key in self._fu_used:
                self._fu_used[key] = 0

    def _drain_store_buffer(self, upto: int) -> None:
        """Retire buffered stores during unused cache cycles before ``upto``."""
        if not self._store_buffer:
            self._sb_cursor = max(self._sb_cursor, upto)
            return
        cycle = self._sb_cursor
        while self._store_buffer and cycle < upto:
            if self._store_buffer[0] <= cycle and self._cycle_unused(cycle):
                self._store_buffer.popleft()
            cycle += 1
        self._sb_cursor = max(self._sb_cursor, min(cycle, upto))

    # ------------------------------------------------------------------ #
    # per-instruction facts

    def _make_facts(self, inst) -> tuple:
        """Precompute everything ``feed`` needs that is static per
        instruction: functional unit, limits, latency, dependence slots.
        Cached by ``id(inst)``; the tuple holds ``inst`` to pin the id."""
        info = OP_INFO[inst.op]
        klass = info.klass
        fu = _FU_CLASS[klass]
        sources, dests = sources_and_dests(inst)
        facts = (
            inst, info, fu, self._fu_limit[fu],
            self.config.result_latency(klass),
            klass in self._non_pipelined,       # occupies its unit
            fu in self._unit_free,              # unit has a busy-until
            sources, dests,
            info.is_load, info.is_store, info.mem_mode == "p",
            klass is OpClass.BRANCH or klass is OpClass.JUMP,
        )
        self._facts[id(inst)] = facts
        return facts

    # ------------------------------------------------------------------ #

    def feed(self, rec: TraceRecord) -> int:
        """Assign an issue cycle to one retired instruction."""
        cfg = self.config
        inst = rec.inst
        facts = self._facts.get(id(inst))
        if facts is None:
            facts = self._make_facts(inst)
        (_, info, fu, fu_limit, latency, non_pipelined, unit_tracked,
         sources, dests, is_load, is_store, postinc, is_ctrl) = facts

        # ---- fetch constraints ------------------------------------------
        iblock = rec.pc >> self._iblock_shift
        if iblock != self._last_iblock:
            self._last_iblock = iblock
            self.result.icache_accesses += 1
            if not self.icache.access(rec.pc):
                self.result.icache_misses += 1
                self._fetch_ready = max(self._fetch_ready, self._cur_cycle) \
                    + cfg.icache.miss_latency

        earliest = max(self._fetch_ready, self._cur_cycle)
        # ---- data hazards ------------------------------------------------
        reg_ready = self._reg_ready
        for slot in sources:
            ready = reg_ready[slot]
            if ready > earliest:
                earliest = ready

        # ---- structural hazards -----------------------------------------
        cycle = earliest
        while True:
            if cycle <= self._cur_cycle and (
                    self._issued_in_cycle >= cfg.issue_width
                    or self._fu_used[fu] >= fu_limit):
                cycle += 1
                continue
            if unit_tracked and self._unit_free[fu] > cycle:
                cycle = self._unit_free[fu]
                continue
            if is_load or is_store:
                plan = self._plan_access(rec, cycle, is_store, info)
                if plan is None:
                    cycle += 1
                    continue
                if is_store and len(self._store_buffer) >= cfg.store_buffer_entries:
                    self._drain_store_buffer(cycle)
                    if len(self._store_buffer) >= cfg.store_buffer_entries:
                        # forced retirement stalls the pipeline one cycle
                        self.result.store_buffer_full_stalls += 1
                        if self.obs is not None:
                            self.obs.emit(StoreBufferFullStall(cycle=cycle))
                        self._store_buffer.popleft()
                        cycle += 1
                        continue
                self._mem_plan = plan
            break

        self._advance_cycle(cycle)
        self._issued_in_cycle += 1
        self._fu_used[fu] += 1
        if non_pipelined:
            self._unit_free[fu] = cycle + latency

        # ---- execute ------------------------------------------------------
        fr = self._flight
        pre = 0
        if is_load or is_store:
            if fr is not None:
                pre = self.result.dcache_misses
            ready = self._execute_memory(rec, cycle, is_store, info)
            if is_load:
                self.result.load_latency_sum += ready - cycle
        else:
            ready = cycle + latency
            if is_ctrl:
                if fr is not None:
                    pre = self.result.branch_mispredicts
                self._execute_branch(rec, cycle)
        for slot in dests:
            reg_ready[slot] = ready
        if postinc:
            # the base-register writeback is a simple ALU result
            pass  # handled in _execute_memory via dests ordering

        self.result.instructions += 1
        if fr is not None:
            slots, cap, cell = fr
            seq = cell[0]
            slot = slots[seq % cap]
            slot[0] = rec.pc
            slot[3] = cycle
            slot[4] = ready
            if is_load or is_store:
                slot[1] = rec
                slot[2] = 1
                slot[5] = self._mem_plan[1]
                slot[6] = self._fac_outcome[0]
                slot[7] = 0 if self.result.dcache_misses != pre else 1
            elif is_ctrl:
                slot[1] = rec
                slot[2] = 2
                slot[6] = None
                slot[7] = 1 if self.result.branch_mispredicts != pre else 0
            else:
                slot[1] = rec.inst
                slot[2] = 0
            cell[0] = seq + 1
        if self.trace is not None:
            access = self._mem_plan[1] if (is_load or is_store) else None
            self.trace.append((rec, cycle, ready, access))
        if self.obs is not None:
            self.obs.emit(InstRetired(
                seq=self._seq, pc=rec.pc, op=info.mnemonic,
                issue=cycle, ready=ready,
                mem=self._mem_plan[1] if (is_load or is_store) else None,
                slot=self._issued_in_cycle - 1,
            ))
            self._seq += 1
        if ready > self._final_cycle:
            self._final_cycle = ready
        if cycle + 1 > self._final_cycle:
            self._final_cycle = cycle + 1
        self._drain_store_buffer(cycle)
        return cycle

    # ------------------------------------------------------------------ #
    # streaming trace protocol (CPU.run_trace consumers)

    # memory and control-flow instructions need the full record; the
    # generic path already handles them
    trace_mem = feed
    trace_branch = feed

    def trace_plain(self, pc, inst) -> None:
        """Record-free fast lane for instructions that are neither
        memory ops nor branches: the ALU/mult/FP/system subset of
        :meth:`feed`, cycle-for-cycle identical, with the memory and
        control-flow arms compiled out. When an instruction trace or an
        event bus is attached the full path runs instead (both need a
        real :class:`TraceRecord`)."""
        if self.trace is not None or self.obs is not None:
            self.feed(TraceRecord(pc, inst, None, 0, 0, None, pc + 4))
            return
        facts = self._facts.get(id(inst))
        if facts is None:
            facts = self._make_facts(inst)
        (_, _, fu, fu_limit, latency, non_pipelined, unit_tracked,
         sources, dests, _, _, _, _) = facts

        # ---- fetch constraints ----
        iblock = pc >> self._iblock_shift
        if iblock != self._last_iblock:
            self._last_iblock = iblock
            self.result.icache_accesses += 1
            if not self.icache.access(pc):
                self.result.icache_misses += 1
                self._fetch_ready = max(self._fetch_ready, self._cur_cycle) \
                    + self.config.icache.miss_latency

        # ---- data hazards ----
        cur = self._cur_cycle
        earliest = self._fetch_ready
        if cur > earliest:
            earliest = cur
        reg_ready = self._reg_ready
        for slot in sources:
            ready = reg_ready[slot]
            if ready > earliest:
                earliest = ready

        # ---- structural hazards ----
        cycle = earliest
        while True:
            if cycle <= cur and (
                    self._issued_in_cycle >= self.config.issue_width
                    or self._fu_used[fu] >= fu_limit):
                cycle += 1
                continue
            if unit_tracked and self._unit_free[fu] > cycle:
                cycle = self._unit_free[fu]
                continue
            break

        if cycle > cur:
            # inlined _advance_cycle + the issue bookkeeping
            self._cur_cycle = cycle
            self._issued_in_cycle = 1
            fu_used = self._fu_used
            for key in fu_used:
                fu_used[key] = 0
            fu_used[fu] = 1
        else:
            self._issued_in_cycle += 1
            self._fu_used[fu] += 1
        if non_pipelined:
            self._unit_free[fu] = cycle + latency

        # ---- execute ----
        ready = cycle + latency
        for slot in dests:
            reg_ready[slot] = ready
        self.result.instructions += 1
        if ready > self._final_cycle:
            self._final_cycle = ready
        if cycle + 1 > self._final_cycle:
            self._final_cycle = cycle + 1
        if self._store_buffer:
            self._drain_store_buffer(cycle)
        elif cycle > self._sb_cursor:
            self._sb_cursor = cycle
        fr = self._flight
        if fr is not None:
            slots, cap, cell = fr
            seq = cell[0]
            slot = slots[seq % cap]
            slot[0] = pc
            slot[1] = inst
            slot[2] = 0
            slot[3] = cycle
            slot[4] = ready
            cell[0] = seq + 1

    # ------------------------------------------------------------------ #
    # memory

    def _plan_access(self, rec: TraceRecord, cycle: int,
                     is_store: bool, info) -> tuple[bool, int] | None:
        """Decide (speculate?, cache-access cycle) for an access issuing
        at ``cycle``, honouring port availability.

        A FAC access that cannot get an EX-stage port falls back to the
        ordinary MEM-stage access rather than stalling issue -- the
        Section 5.5 policy frees the following cycle's port for replays
        in exactly the same way. Returns None when no port is available
        at all (the instruction must stall).
        """
        port_free = self._store_port_free if is_store else self._load_port_free
        if self.config.one_cycle_loads:
            return (False, cycle) if port_free(cycle) else None
        if self.fac is not None and self._would_speculate(rec, cycle, info) \
                and port_free(cycle):
            return (True, cycle)
        if port_free(cycle + 1):
            return (False, cycle + 1)
        return None

    def _would_speculate(self, rec: TraceRecord, cycle: int, info) -> bool:
        if info.mem_mode == "p":
            return True  # address is the raw base register: always exact
        if not self.fac.should_speculate(info.mem_mode == "x", info.is_store):
            return False
        # Section 5.5 policy: after a misprediction in cycle c, accesses
        # issued in c+1 do not speculate -- except a load right after a
        # misspeculated load.
        if self._mispredict_cycle == cycle - 1:
            if not (info.is_load and self._mispredict_was_load):
                return False
        return True

    def _execute_memory(self, rec: TraceRecord, cycle: int,
                        is_store: bool, info) -> int:
        cfg = self.config
        if is_store:
            self.result.stores += 1
        else:
            self.result.loads += 1
        self.result.dcache_accesses += 1
        hit = self.dcache.access(rec.ea, is_store)
        if not hit:
            self.result.dcache_misses += 1
        miss_penalty = 0 if (hit or cfg.perfect_dcache) else cfg.dcache.miss_latency

        speculate, access_cycle = self._mem_plan
        if not speculate:
            self._claim_port(is_store, access_cycle)
            if self.fac is not None and not cfg.one_cycle_loads:
                self.result.fac_not_speculated += 1
            self._fac_outcome = (None, None)
            result_ready = access_cycle + 1 + miss_penalty
        else:
            result_ready = self._execute_fac_memory(rec, cycle, is_store,
                                                    miss_penalty, info)
        if self.obs is not None:
            fac_success, fac_reason = self._fac_outcome
            self.obs.emit(MemAccess(
                pc=rec.pc, cycle=cycle, ea=rec.ea, is_store=is_store,
                hit=hit, speculated=speculate, fac_success=fac_success,
                fac_reason=fac_reason, result_ready=result_ready,
            ))
        if is_store:
            # the store's "result" is its tag probe; dependents (none,
            # stores write no register) are unaffected. Buffer the data.
            self._store_buffer.append(result_ready)
            if self.obs is not None:
                self.obs.emit(StoreBufferInsert(
                    cycle=cycle, occupancy=len(self._store_buffer)))
            result_ready = cycle + 1
        return result_ready

    def _claim_port(self, is_store: bool, cycle: int) -> None:
        if is_store:
            self._claim_store_port(cycle)
        else:
            self._claim_load_port(cycle)

    def _execute_fac_memory(self, rec: TraceRecord, cycle: int, is_store: bool,
                            miss_penalty: int, info) -> int:
        """FAC machine: speculative access in EX, replay in MEM on failure."""
        if info.mem_mode == "p":
            # post-increment: the effective address IS the base register.
            self._claim_port(is_store, cycle)
            self._fac_outcome = (True, None)
            return cycle + 1 + miss_penalty
        offset = rec.offset_value if info.mem_mode == "c" \
            else to_signed32(rec.offset_value)
        # allocation-free verdict on the hot path; the full Prediction
        # (with its FailureSignals) is only materialized on failure when
        # an observer wants the reason
        failed = self.fac.fails(rec.base_value, offset, info.mem_mode == "x")
        self.result.fac_speculated += 1
        self._claim_port(is_store, cycle)
        if not failed:
            self._fac_outcome = (True, None)
            if self.obs is not None:
                self.obs.emit(FacPredict(pc=rec.pc, cycle=cycle,
                                         is_store=is_store,
                                         success=True, reason=None))
            return cycle + 1 + miss_penalty
        # replay with the non-speculative address in MEM
        self.result.fac_mispredicted += 1
        if is_store:
            self.result.fac_store_mispredicted += 1
        else:
            self.result.fac_load_mispredicted += 1
        self._mispredict_cycle = cycle
        self._mispredict_was_load = not is_store
        self._claim_port(is_store, cycle + 1)
        # the outcome must be readable by wrapping consumers (e.g. the
        # flight recorder) even without an event bus; the reason stays
        # lazy -- None means "failed, signals not materialized"
        self._fac_outcome = (False, None)
        if self.obs is not None:
            prediction = self.fac.predict(rec.base_value, offset,
                                          info.mem_mode == "x")
            reason = prediction.signals.primary_reason
            self._fac_outcome = (False, reason)
            self.obs.emit(FacPredict(pc=rec.pc, cycle=cycle,
                                     is_store=is_store,
                                     success=False, reason=reason))
            self.obs.emit(FacReplay(pc=rec.pc, cycle=cycle + 1, penalty=1))
        return cycle + 2 + miss_penalty

    # ------------------------------------------------------------------ #
    # control flow

    def _execute_branch(self, rec: TraceRecord, cycle: int) -> None:
        cfg = self.config
        op = rec.inst.op
        if op in (Op.J, Op.JAL):
            # direct unconditional jumps redirect at decode: the group
            # simply breaks at the taken jump.
            self._fetch_ready = max(self._fetch_ready, cycle + 1)
            return
        taken = bool(rec.taken)
        self.result.branches += 1
        correct = self.btb.update(rec.pc, taken, rec.next_pc)
        if self.obs is not None:
            self.obs.emit(BranchResolved(pc=rec.pc, cycle=cycle, taken=taken,
                                         mispredicted=not correct))
        if not correct:
            self.result.branch_mispredicts += 1
            self._fetch_ready = max(
                self._fetch_ready, cycle + 1 + cfg.branch_mispredict_penalty
            )
        elif taken:
            self._fetch_ready = max(self._fetch_ready, cycle + 1)

    # ------------------------------------------------------------------ #

    def finalize(self, memory_usage: int = 0) -> SimResult:
        """Complete the run and return the statistics."""
        # drain the store buffer
        cycle = max(self._final_cycle, self._sb_cursor)
        while self._store_buffer:
            ready = self._store_buffer.popleft()
            cycle = max(cycle, ready) + 1
        result = self.result
        result.cycles = max(self._final_cycle, cycle)
        result.memory_usage = memory_usage
        result.extras["btb_accuracy"] = self.btb.accuracy
        return result


def simulate_program(
    program: Program,
    config: MachineConfig | None = None,
    max_instructions: int = 50_000_000,
    obs=None,
    engine: str = "predecoded",
) -> SimResult:
    """Run ``program`` functionally and time it on the pipeline model.

    ``engine="predecoded"`` streams the predecoded interpreter straight
    into the pipeline's trace hooks; ``engine="step"`` keeps the legacy
    step-and-feed loop. Both produce identical results.
    """
    cpu = CPU(program, obs=obs)
    pipe = PipelineSimulator(config, obs=obs)
    if engine == "step":
        feed = pipe.feed
        step = cpu.step
        budget = max_instructions
        while not cpu.halted and budget > 0:
            feed(step())
            budget -= 1
    else:
        cpu.run_trace(pipe, max_instructions)
    return pipe.finalize(memory_usage=cpu.memory_usage)
