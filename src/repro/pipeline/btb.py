"""Branch target buffer: direct-mapped, tagged, 2-bit saturating counters.

Table 5: "2048 entry direct-mapped BTB with 2-bit saturating counters,
2 cycle misprediction penalty". A branch predicts taken when its BTB
entry hits with counter >= 2; the predicted target is the stored one, so
a taken branch with a different target (e.g. ``jr``) still mispredicts.
"""

from __future__ import annotations


class BranchTargetBuffer:
    """Direct-mapped BTB."""

    def __init__(self, entries: int = 2048):
        self.entries = entries
        self._tags = [-1] * entries
        self._targets = [0] * entries
        self._counters = [1] * entries  # weakly not-taken on allocation
        self.lookups = 0
        self.mispredicts = 0

    def _index(self, pc: int) -> tuple[int, int]:
        word = pc >> 2
        return word % self.entries, word // self.entries

    def predict(self, pc: int) -> tuple[bool, int]:
        """Return (taken?, target) prediction for the branch at ``pc``."""
        index, tag = self._index(pc)
        if self._tags[index] == tag and self._counters[index] >= 2:
            return True, self._targets[index]
        return False, pc + 4

    def update(self, pc: int, taken: bool, target: int) -> bool:
        """Record the outcome; returns True when prediction was correct."""
        self.lookups += 1
        predicted_taken, predicted_target = self.predict(pc)
        correct = (predicted_taken == taken) and (
            not taken or predicted_target == target
        )
        if not correct:
            self.mispredicts += 1
        index, tag = self._index(pc)
        if self._tags[index] != tag:
            if taken:
                self._tags[index] = tag
                self._targets[index] = target
                self._counters[index] = 2
        else:
            counter = self._counters[index]
            if taken:
                self._counters[index] = min(counter + 1, 3)
                self._targets[index] = target
            else:
                self._counters[index] = max(counter - 1, 0)
        return correct

    @property
    def accuracy(self) -> float:
        return 1.0 - (self.mispredicts / self.lookups) if self.lookups else 0.0
