"""The 4-way in-order superscalar timing simulator of Table 5."""

from repro.pipeline.btb import BranchTargetBuffer
from repro.pipeline.config import MachineConfig
from repro.pipeline.pipeline import PipelineSimulator, simulate_program
from repro.pipeline.result import SimResult
from repro.pipeline.tracer import TracedRun, trace_program

__all__ = [
    "BranchTargetBuffer",
    "MachineConfig",
    "PipelineSimulator",
    "SimResult",
    "simulate_program",
    "TracedRun",
    "trace_program",
]
