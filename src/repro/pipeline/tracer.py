"""Cycle-by-cycle pipeline diagrams (the paper's Figure 1).

Attach a trace list to a :class:`PipelineSimulator`, feed it a program,
and render the classic stage chart::

    cycle            1    2    3    4    5    6    7
    add $t2,...      IF   ID   EX   WB
    lw $t3, 4($t2)        IF   ID   EX   MEM  WB
    sub $t4,...           IF   ID   --   EX   WB

Stage mapping is reconstructed from the issue cycle ``t``: ``IF`` at
``t-2``, ``ID`` at ``t-1``, ``EX`` at ``t``, ``MEM`` at the cache-access
cycle for memory operations, ``WB`` when the result is ready. A ``--``
cell marks a cycle the instruction spent stalled in decode waiting to
issue (the untolerated load-use hazard of Figure 1). With fast address
calculation the cache access moves into EX and the stall disappears.
"""

from __future__ import annotations

from repro.cpu.executor import CPU
from repro.isa.disassembler import disassemble
from repro.isa.program import Program
from repro.pipeline.config import MachineConfig
from repro.pipeline.pipeline import PipelineSimulator


class TracedRun:
    """The recorded trace of one simulation, with a renderer."""

    def __init__(self, entries: list, cycles: int):
        self.entries = entries  # (rec, issue, ready, mem_access or None)
        self.cycles = cycles

    def render(self, first: int = 0, count: int = 10, label_width: int = 22) -> str:
        """Render instructions [first, first+count) as a stage chart."""
        window = self.entries[first:first + count]
        if not window:
            return "(empty trace)"
        start_cycle = min(issue - 2 for __, issue, __r, __a in window)
        end_cycle = max(max(ready, issue + 1)
                        for __, issue, ready, __a in window)
        width = 5
        header = "cycle".ljust(label_width) + "".join(
            str(c - start_cycle + 1).center(width)
            for c in range(start_cycle, end_cycle + 1)
        )
        lines = [header]
        prev_issue = None
        for rec, issue, ready, access in window:
            stages: dict[int, str] = {issue - 2: "IF", issue - 1: "ID", issue: "EX"}
            if access is not None and access != issue:
                stages[access] = "MEM"
            wb = max(ready, issue + 1)
            if wb not in stages:
                stages[wb] = "WB"
            # mark decode stalls: cycles between this instruction's
            # natural slot (one after the previous issue) and its issue
            if prev_issue is not None:
                for stalled in range(prev_issue + 1, issue):
                    stages.setdefault(stalled, "--")
            prev_issue = issue
            label = disassemble(rec.inst)[:label_width - 1]
            row = label.ljust(label_width)
            for cycle in range(start_cycle, end_cycle + 1):
                row += stages.get(cycle, "").center(width)
            lines.append(row.rstrip())
        return "\n".join(lines)

    def issue_cycle(self, index: int) -> int:
        return self.entries[index][1]


def trace_program(program: Program, config: MachineConfig | None = None,
                  max_instructions: int = 100_000,
                  engine: str = "predecoded") -> TracedRun:
    """Run ``program`` and record every instruction's pipeline timing."""
    cpu = CPU(program)
    pipe = PipelineSimulator(config)
    pipe.trace = []
    if engine == "step":
        budget = max_instructions
        while not cpu.halted and budget > 0:
            pipe.feed(cpu.step())
            budget -= 1
    else:
        # an attached trace list makes the pipeline's plain-instruction
        # fast lane fall back to full feed(), so every entry is recorded
        cpu.run_trace(pipe, max_instructions)
    result = pipe.finalize()
    return TracedRun(pipe.trace, result.cycles)
