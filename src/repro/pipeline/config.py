"""Machine configuration: the baseline simulation model of Table 5.

Reconstructed values
--------------------

The OCR of the paper's Table 5 drops digits from several entries
(``24 entry BTB``, ``integer DIV-2/2``, ``FP DIV-2/2``). The surrounding
text pins the rest ("16k direct-mapped ... 6 cycle miss delay",
"2048 entry BTB" is the standard reading of the era's simulators, and the
MIPS R4000-class latencies int DIV 20, FP DIV 12 match the visible first
digits). The reconstruction is recorded here so every experiment reads
the same model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cache.cache import CacheConfig
from repro.fac.config import FacConfig
from repro.isa.opcodes import OpClass


@dataclass(frozen=True)
class MachineConfig:
    """One timing-simulator design point."""

    # front end
    fetch_width: int = 4
    issue_width: int = 4
    icache: CacheConfig = field(default_factory=lambda: CacheConfig(
        size=16 * 1024, block_size=32, assoc=1, miss_latency=6, name="icache"))
    btb_entries: int = 2048
    branch_mispredict_penalty: int = 2

    # data memory
    dcache: CacheConfig = field(default_factory=lambda: CacheConfig(
        size=16 * 1024, block_size=32, assoc=1, miss_latency=6, name="dcache"))
    dcache_read_ports: int = 2   # up to two loads per cycle
    dcache_write_ports: int = 1  # or one store (write goes to both copies)
    store_buffer_entries: int = 16

    # functional units (counts)
    int_alus: int = 4
    load_store_units: int = 2
    fp_adders: int = 2
    int_mult_div_units: int = 1
    fp_mult_div_units: int = 1

    # result latencies by class (cycles until a dependent can issue);
    # loads take 1 (address) + 1 (cache) handled separately.
    latency_alu: int = 1
    latency_imult: int = 3
    latency_idiv: int = 20
    latency_fpadd: int = 2
    latency_fpmult: int = 4
    latency_fpdiv: int = 12

    # fast address calculation (None = baseline machine, no FAC)
    fac: FacConfig | None = None

    # Figure 2 idealizations
    one_cycle_loads: bool = False   # magic 1-cycle hit latency, no FAC
    perfect_dcache: bool = False    # all data accesses hit

    def result_latency(self, klass: OpClass) -> int:
        return _LATENCY_ATTR[klass](self)

    @property
    def non_pipelined(self) -> frozenset:
        return frozenset((OpClass.IDIV, OpClass.FPDIV))

    def with_fac(self, fac: FacConfig | None) -> "MachineConfig":
        return replace(self, fac=fac)


_LATENCY_ATTR = {
    OpClass.ALU: lambda c: c.latency_alu,
    OpClass.BRANCH: lambda c: c.latency_alu,
    OpClass.JUMP: lambda c: c.latency_alu,
    OpClass.SYSTEM: lambda c: c.latency_alu,
    OpClass.IMULT: lambda c: c.latency_imult,
    OpClass.IDIV: lambda c: c.latency_idiv,
    OpClass.FPADD: lambda c: c.latency_fpadd,
    OpClass.FPMULT: lambda c: c.latency_fpmult,
    OpClass.FPDIV: lambda c: c.latency_fpdiv,
    OpClass.LOAD: lambda c: c.latency_alu,
    OpClass.STORE: lambda c: c.latency_alu,
}
