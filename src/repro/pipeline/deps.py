"""Register dependence extraction for the scoreboard.

Registers are mapped to scoreboard slots: integer ``$1``..``$31`` are
slots 1..31 (``$zero`` is never a dependence), FP registers are 32..63,
``HI``/``LO`` are 64/65, and the FP condition flag is 66.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op, OP_INFO

HI = 64
LO = 65
FCC = 66
NUM_SLOTS = 67


def _f(reg: int) -> int:
    return 32 + reg


def sources_and_dests(inst: Instruction) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Return (source slots, destination slots) for ``inst``."""
    op = inst.op
    fmt = OP_INFO[op].fmt
    if fmt == "r3":
        return _regs(inst.rs, inst.rt), _regs(inst.rd)
    if fmt == "sh":
        return _regs(inst.rt), _regs(inst.rd)
    if fmt == "i2":
        return _regs(inst.rs), _regs(inst.rt)
    if fmt == "lui":
        return (), _regs(inst.rt)
    if fmt == "md":
        return _regs(inst.rs, inst.rt), (HI, LO)
    if fmt == "mf":
        return ((HI,) if op == Op.MFHI else (LO,)), _regs(inst.rd)
    if fmt == "mc":
        if OP_INFO[op].is_load:
            return _regs(inst.rs), _regs(inst.rt)
        return _regs(inst.rs, inst.rt), ()
    if fmt == "fmc":
        if OP_INFO[op].is_load:
            return _regs(inst.rs), (_f(inst.ft),)
        return _regs(inst.rs) + (_f(inst.ft),), ()
    if fmt == "mx":
        if OP_INFO[op].is_load:
            return _regs(inst.rs, inst.rx), _regs(inst.rt)
        return _regs(inst.rs, inst.rx, inst.rt), ()
    if fmt == "fmx":
        if OP_INFO[op].is_load:
            return _regs(inst.rs, inst.rx), (_f(inst.ft),)
        return _regs(inst.rs, inst.rx) + (_f(inst.ft),), ()
    if fmt == "mp":
        # post-increment: the base register is read and written back
        if OP_INFO[op].is_load:
            return _regs(inst.rs), _regs(inst.rt) + _regs(inst.rs)
        return _regs(inst.rs, inst.rt), _regs(inst.rs)
    if fmt == "b2":
        return _regs(inst.rs, inst.rt), ()
    if fmt == "b1":
        return _regs(inst.rs), ()
    if fmt == "j":
        return (), (_regs(31) if op == Op.JAL else ())
    if fmt == "jr":
        return _regs(inst.rs), ()
    if fmt == "jalr":
        return _regs(inst.rs), _regs(inst.rd)
    if fmt == "f3":
        return (_f(inst.fs), _f(inst.ft)), (_f(inst.fd),)
    if fmt == "f2":
        return (_f(inst.fs),), (_f(inst.fd),)
    if fmt == "fcmp":
        return (_f(inst.fs), _f(inst.ft)), (FCC,)
    if fmt == "fb":
        return (FCC,), ()
    if fmt == "mtc1":
        return _regs(inst.rt), (_f(inst.fs),)
    if fmt == "mfc1":
        return (_f(inst.fs),), _regs(inst.rd)
    if op == Op.SYSCALL:
        # conventions: reads $v0 and $a0 (and $f12); writes $v0
        return (2, 4, _f(12)), (2,)
    return (), ()


def _regs(*nums: int) -> tuple[int, ...]:
    return tuple(n for n in nums if n != 0)
