"""Aggregated statistics from one timing-simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.obs.metrics import safe_ratio


@dataclass
class SimResult:
    """Everything the paper's tables and figures need from one run."""

    cycles: int = 0
    instructions: int = 0
    loads: int = 0
    stores: int = 0

    # caches
    dcache_accesses: int = 0
    dcache_misses: int = 0
    icache_accesses: int = 0
    icache_misses: int = 0

    # branch prediction
    branches: int = 0
    branch_mispredicts: int = 0

    # fast address calculation
    fac_speculated: int = 0          # accesses attempted speculatively
    fac_mispredicted: int = 0        # failed -> replayed in MEM
    fac_not_speculated: int = 0      # policy-excluded accesses
    fac_load_mispredicted: int = 0
    fac_store_mispredicted: int = 0

    # store buffer
    store_buffer_full_stalls: int = 0

    # sum over loads of (result_ready - issue_cycle); the paper's
    # "effective load latency" is this divided by the load count
    load_latency_sum: int = 0

    memory_usage: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return safe_ratio(self.instructions, self.cycles)

    @property
    def dcache_miss_ratio(self) -> float:
        return safe_ratio(self.dcache_misses, self.dcache_accesses)

    @property
    def icache_miss_ratio(self) -> float:
        return safe_ratio(self.icache_misses, self.icache_accesses)

    @property
    def memory_refs(self) -> int:
        return self.loads + self.stores

    @property
    def fac_extra_accesses(self) -> int:
        """Mispredicted speculative accesses = extra cache bandwidth."""
        return self.fac_mispredicted

    @property
    def effective_load_latency(self) -> float:
        """Average cycles from load issue to result availability."""
        return safe_ratio(self.load_latency_sum, self.loads)

    @property
    def bandwidth_overhead(self) -> float:
        """Table 6 metric: extra accesses as a fraction of total refs."""
        return safe_ratio(self.fac_extra_accesses, self.memory_refs)

    def speedup_over(self, baseline: "SimResult") -> float:
        """Execution-time speedup of this run relative to ``baseline``."""
        return safe_ratio(baseline.cycles, self.cycles)

    # ------------------------------------------------------------------ #
    # uniform metrics protocol (see repro.obs.metrics)

    def as_dict(self) -> dict:
        """Every raw counter field as a metrics-protocol dict.

        Derived ratios are intentionally excluded: they are recomputed
        from the merged counters, never averaged.
        """
        out = {}
        for f in fields(self):
            if f.name == "extras":
                continue
            out[f.name] = {"type": "counter", "value": getattr(self, f.name)}
        return out

    def merge(self, other: "SimResult") -> None:
        """Sum another run's counters into this one (sharded workloads).

        ``cycles`` adds as if the runs were executed back-to-back;
        ``extras`` entries from ``other`` win on key collision.
        """
        for f in fields(self):
            if f.name == "extras":
                continue
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        self.extras.update(other.extras)

    def to_registry(self, registry, prefix: str = "sim") -> None:
        """Record every counter into a
        :class:`~repro.obs.metrics.MetricsRegistry` under ``prefix``."""
        for f in fields(self):
            if f.name == "extras":
                continue
            registry.counter(f"{prefix}.{f.name}").incr(getattr(self, f.name))
        registry.ratio(f"{prefix}.dcache").hits = \
            self.dcache_accesses - self.dcache_misses
        registry.ratio(f"{prefix}.dcache").total = self.dcache_accesses
        registry.ratio(f"{prefix}.icache").hits = \
            self.icache_accesses - self.icache_misses
        registry.ratio(f"{prefix}.icache").total = self.icache_accesses
        registry.ratio(f"{prefix}.fac").hits = \
            self.fac_speculated - self.fac_mispredicted
        registry.ratio(f"{prefix}.fac").total = self.fac_speculated
