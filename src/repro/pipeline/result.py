"""Aggregated statistics from one timing-simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimResult:
    """Everything the paper's tables and figures need from one run."""

    cycles: int = 0
    instructions: int = 0
    loads: int = 0
    stores: int = 0

    # caches
    dcache_accesses: int = 0
    dcache_misses: int = 0
    icache_accesses: int = 0
    icache_misses: int = 0

    # branch prediction
    branches: int = 0
    branch_mispredicts: int = 0

    # fast address calculation
    fac_speculated: int = 0          # accesses attempted speculatively
    fac_mispredicted: int = 0        # failed -> replayed in MEM
    fac_not_speculated: int = 0      # policy-excluded accesses
    fac_load_mispredicted: int = 0
    fac_store_mispredicted: int = 0

    # store buffer
    store_buffer_full_stalls: int = 0

    # sum over loads of (result_ready - issue_cycle); the paper's
    # "effective load latency" is this divided by the load count
    load_latency_sum: int = 0

    memory_usage: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def dcache_miss_ratio(self) -> float:
        return self.dcache_misses / self.dcache_accesses if self.dcache_accesses else 0.0

    @property
    def icache_miss_ratio(self) -> float:
        return self.icache_misses / self.icache_accesses if self.icache_accesses else 0.0

    @property
    def memory_refs(self) -> int:
        return self.loads + self.stores

    @property
    def fac_extra_accesses(self) -> int:
        """Mispredicted speculative accesses = extra cache bandwidth."""
        return self.fac_mispredicted

    @property
    def effective_load_latency(self) -> float:
        """Average cycles from load issue to result availability."""
        return self.load_latency_sum / self.loads if self.loads else 0.0

    @property
    def bandwidth_overhead(self) -> float:
        """Table 6 metric: extra accesses as a fraction of total refs."""
        return self.fac_extra_accesses / self.memory_refs if self.memory_refs else 0.0

    def speedup_over(self, baseline: "SimResult") -> float:
        """Execution-time speedup of this run relative to ``baseline``."""
        return baseline.cycles / self.cycles if self.cycles else 0.0
