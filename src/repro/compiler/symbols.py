"""Symbol table objects shared by sema and codegen."""

from __future__ import annotations

from repro.compiler.typesys import Type


class VarSymbol:
    """A variable: global, parameter, or local."""

    __slots__ = (
        "name", "ctype", "storage", "addr_taken", "use_count",
        "home", "asm_name", "gp_addressable", "is_synthetic",
    )

    def __init__(self, name: str, ctype: Type, storage: str):
        self.name = name
        self.ctype = ctype
        self.storage = storage  # 'global' | 'param' | 'local'
        self.addr_taken = False
        self.use_count = 0
        # assigned by codegen:
        #   ('sreg', n) | ('freg', n) | ('frame', offset) | ('global',)
        self.home: tuple | None = None
        self.asm_name: str | None = None      # globals only
        self.gp_addressable = False           # globals only
        self.is_synthetic = False             # created by the optimizer

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Var {self.name}: {self.ctype!r} ({self.storage})>"


class FuncSymbol:
    """A function: user-defined, runtime-library, or compiler builtin."""

    __slots__ = ("name", "ret_type", "param_types", "defined", "builtin")

    def __init__(self, name: str, ret_type: Type, param_types: list[Type],
                 builtin: str | None = None):
        self.name = name
        self.ret_type = ret_type
        self.param_types = param_types
        self.defined = False
        self.builtin = builtin  # syscall builtins are expanded inline

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Func {self.name}/{len(self.param_types)}>"


class Scope:
    """A lexical scope chain."""

    def __init__(self, parent: "Scope | None" = None):
        self.parent = parent
        self.vars: dict[str, VarSymbol] = {}

    def define(self, symbol: VarSymbol) -> None:
        self.vars[symbol.name] = symbol

    def lookup(self, name: str) -> VarSymbol | None:
        scope: Scope | None = self
        while scope is not None:
            symbol = scope.vars.get(name)
            if symbol is not None:
                return symbol
            scope = scope.parent
        return None
