"""Semantic analysis: symbol resolution, type checking and annotation.

Sema is whole-program: one :class:`Sema` instance analyzes every
translation unit (runtime library first), so cross-unit calls and global
references resolve naturally. It:

* lays out all struct types (honouring the ``struct_pad_cap`` option),
* resolves variable references to :class:`VarSymbol` records and counts
  uses (weighted by loop depth) for the register allocator,
* annotates every expression with its MiniC type,
* inserts explicit :class:`~repro.compiler.ast_nodes.Cast` nodes for the
  implicit int<->double conversions so codegen never guesses,
* folds integer constant expressions,
* assigns labels to string literals.
"""

from __future__ import annotations

from repro.compiler import ast_nodes as ast
from repro.compiler.options import CompilerOptions
from repro.compiler.symbols import FuncSymbol, Scope, VarSymbol
from repro.compiler.typesys import (
    ArrayType,
    CHAR,
    DOUBLE,
    INT,
    IntType,
    DoubleType,
    PointerType,
    StructType,
    Type,
    UINT,
    VOID,
    common_arith,
    decay,
)
from repro.errors import CompileError

# Builtins expanded inline by codegen (syscall wrappers).
_BUILTINS = [
    ("print_int", VOID, [INT]),
    ("print_char", VOID, [INT]),
    ("print_str", VOID, [PointerType(CHAR)]),
    ("print_double", VOID, [DOUBLE]),
    ("exit", VOID, [INT]),
    ("sbrk", PointerType(CHAR), [INT]),
    ("sqrt", DOUBLE, [DOUBLE]),
]


class Sema:
    """Whole-program semantic analyzer."""

    def __init__(self, options: CompilerOptions,
                 structs: dict[str, StructType] | None = None):
        self.options = options
        self.structs = structs if structs is not None else {}
        self.globals = Scope()
        self.functions: dict[str, FuncSymbol] = {}
        self.string_literals: list[tuple[str, str]] = []  # (label, value)
        self._string_labels: dict[str, str] = {}
        self._label_counter = 0
        self._loop_depth = 0
        self._current_func: FuncSymbol | None = None
        self._local_scope: Scope | None = None
        for name, ret, params in _BUILTINS:
            symbol = FuncSymbol(name, ret, list(params), builtin=name)
            symbol.defined = True
            self.functions[name] = symbol

    # ------------------------------------------------------------------ #
    # entry point

    def analyze(self, unit: ast.TranslationUnit) -> None:
        """Register then check a single self-contained unit."""
        self.register(unit)
        self.check(unit)

    def register(self, unit: ast.TranslationUnit) -> None:
        """First pass: struct layout, globals, function signatures."""
        self._layout_structs()
        for decl in unit.decls:
            if isinstance(decl, ast.GlobalVar):
                self._global_var(decl)
            elif isinstance(decl, ast.FuncDef):
                self._register_function(decl)
            else:  # pragma: no cover - parser emits only these
                raise CompileError(f"unexpected top-level node {decl!r}")

    def check(self, unit: ast.TranslationUnit) -> None:
        """Second pass: analyze function bodies."""
        for decl in unit.decls:
            if isinstance(decl, ast.FuncDef) and decl.body is not None:
                self._function_body(decl)

    def _layout_structs(self) -> None:
        done: set[str] = set()
        in_progress: set[str] = set()

        def lay(struct: StructType) -> None:
            if struct.name in done:
                return
            if struct.name in in_progress:
                raise CompileError(f"recursive struct {struct.name} by value")
            in_progress.add(struct.name)
            for _, field_type in struct.fields:
                inner = field_type
                while isinstance(inner, ArrayType):
                    inner = inner.element
                if isinstance(inner, StructType):
                    lay(self.structs[inner.name])
            struct.layout(self.options.fac.struct_pad_cap)
            in_progress.discard(struct.name)
            done.add(struct.name)

        for struct in self.structs.values():
            if struct.fields:
                lay(struct)

    # ------------------------------------------------------------------ #
    # declarations

    def _global_var(self, decl: ast.GlobalVar) -> None:
        if self.globals.vars.get(decl.name) is not None:
            raise CompileError(f"global {decl.name!r} redefined", decl.line)
        self._check_complete(decl.var_type, decl.line)
        symbol = VarSymbol(decl.name, decl.var_type, "global")
        symbol.asm_name = decl.name
        symbol.gp_addressable = decl.var_type.size <= self.options.gp_threshold
        self.globals.define(symbol)
        decl.symbol = symbol
        if isinstance(decl.init, ast.Expr):
            self._expr(decl.init)

    def _register_function(self, decl: ast.FuncDef) -> None:
        symbol = self.functions.get(decl.name)
        param_types = [decay(t) for t, _ in decl.params]
        if symbol is None:
            symbol = FuncSymbol(decl.name, decl.ret_type, param_types)
            self.functions[decl.name] = symbol
        else:
            if symbol.builtin:
                raise CompileError(f"cannot redefine builtin {decl.name!r}", decl.line)
            if len(symbol.param_types) != len(param_types):
                raise CompileError(
                    f"conflicting declarations of {decl.name!r}", decl.line
                )
        decl.symbol = symbol
        if decl.body is not None:
            if symbol.defined:
                raise CompileError(f"function {decl.name!r} redefined", decl.line)
            symbol.defined = True

    def _function_body(self, decl: ast.FuncDef) -> None:
        self._current_func = decl.symbol
        scope = Scope(self.globals)
        for param_type, param_name in decl.params:
            param_symbol = VarSymbol(param_name, decay(param_type), "param")
            scope.define(param_symbol)
        self._local_scope = scope
        self._block(decl.body, scope)
        self._local_scope = None
        self._current_func = None

    def _check_complete(self, ctype: Type, line: int) -> None:
        inner = ctype
        while isinstance(inner, (ArrayType, PointerType)):
            if isinstance(inner, PointerType):
                return  # pointers to incomplete types are fine
            inner = inner.element
        if isinstance(inner, StructType) and not inner.laid_out:
            raise CompileError(f"incomplete type struct {inner.name}", line)

    # ------------------------------------------------------------------ #
    # statements

    def _block(self, block: ast.Block, parent: Scope) -> None:
        scope = Scope(parent)
        for stmt in block.stmts:
            self._stmt(stmt, scope)

    def _stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._block(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr, scope)
        elif isinstance(stmt, ast.LocalDecl):
            self._check_complete(stmt.var_type, stmt.line)
            symbol = VarSymbol(stmt.name, stmt.var_type, "local")
            scope.define(symbol)
            stmt.symbol = symbol
            if stmt.init is not None:
                self._expr(stmt.init, scope)
                stmt.init = self._coerce(stmt.init, decay(stmt.var_type), stmt.line)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.cond, scope)
            self._stmt(stmt.then_stmt, scope)
            if stmt.else_stmt is not None:
                self._stmt(stmt.else_stmt, scope)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.cond, scope)
            self._loop_depth += 1
            self._stmt(stmt.body, scope)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            self._loop_depth += 1
            self._stmt(stmt.body, scope)
            self._loop_depth -= 1
            self._expr(stmt.cond, scope)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._stmt(stmt.init, scope)
            if stmt.cond is not None:
                self._expr(stmt.cond, scope)
            self._loop_depth += 1
            if stmt.step is not None:
                self._expr(stmt.step, scope)
            self._stmt(stmt.body, scope)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.Switch):
            ctype = self._expr(stmt.expr, scope)
            if not decay(ctype).is_integer:
                raise CompileError("switch needs an integer expression", stmt.line)
            for case in stmt.cases:
                for inner in case.stmts:
                    self._stmt(inner, scope)
        elif isinstance(stmt, ast.Return):
            ret_type = self._current_func.ret_type
            is_void = ret_type == VOID
            if stmt.expr is not None:
                self._expr(stmt.expr, scope)
                if is_void:
                    raise CompileError("void function returns a value", stmt.line)
                stmt.expr = self._coerce(stmt.expr, decay(ret_type), stmt.line)
            elif not is_void:
                raise CompileError("non-void function returns nothing", stmt.line)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass
        else:  # pragma: no cover
            raise CompileError(f"unhandled statement {stmt!r}")

    # ------------------------------------------------------------------ #
    # expressions

    def _expr(self, expr: ast.Expr, scope: Scope | None = None) -> Type:
        scope = scope or self._local_scope or self.globals
        method = getattr(self, "_expr_" + type(expr).__name__)
        ctype = method(expr, scope)
        expr.ctype = ctype
        return ctype

    def _expr_IntLit(self, expr: ast.IntLit, scope) -> Type:
        return INT

    def _expr_FloatLit(self, expr: ast.FloatLit, scope) -> Type:
        return DOUBLE

    def _expr_StrLit(self, expr: ast.StrLit, scope) -> Type:
        label = self._string_labels.get(expr.value)
        if label is None:
            label = f"__str{self._label_counter}"
            self._label_counter += 1
            self._string_labels[expr.value] = label
            self.string_literals.append((label, expr.value))
        expr.label = label
        return PointerType(CHAR)

    def _expr_VarRef(self, expr: ast.VarRef, scope: Scope) -> Type:
        symbol = scope.lookup(expr.name)
        if symbol is None:
            raise CompileError(f"undeclared identifier {expr.name!r}", expr.line)
        symbol.use_count += 1 + 9 * min(self._loop_depth, 3)
        expr.symbol = symbol
        return symbol.ctype

    def _expr_Binary(self, expr: ast.Binary, scope: Scope) -> Type:
        if expr.op == ",":
            self._expr(expr.left, scope)
            return self._expr(expr.right, scope)
        left = decay(self._expr(expr.left, scope))
        right = decay(self._expr(expr.right, scope))
        op = expr.op
        if op in ("&&", "||"):
            return INT
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if left.is_arith and right.is_arith:
                common = common_arith(left, right)
                expr.left = self._coerce(expr.left, common, expr.line)
                expr.right = self._coerce(expr.right, common, expr.line)
            elif not (left.is_pointer and right.is_pointer
                      or left.is_pointer and right.is_integer
                      or left.is_integer and right.is_pointer):
                raise CompileError(f"bad operands for {op!r}", expr.line)
            return INT
        if op in ("&", "|", "^", "<<", ">>", "%"):
            if not (left.is_integer and right.is_integer):
                raise CompileError(f"{op!r} needs integer operands", expr.line)
            return common_arith(left, right) if op not in ("<<", ">>") else left
        if op == "+":
            if left.is_pointer and right.is_integer:
                return left
            if left.is_integer and right.is_pointer:
                return right
        if op == "-":
            if left.is_pointer and right.is_integer:
                return left
            if left.is_pointer and right.is_pointer:
                if left != right:
                    raise CompileError("pointer difference of unlike types", expr.line)
                return INT
        if op in ("+", "-", "*", "/"):
            if left.is_arith and right.is_arith:
                common = common_arith(left, right)
                expr.left = self._coerce(expr.left, common, expr.line)
                expr.right = self._coerce(expr.right, common, expr.line)
                return common
        raise CompileError(f"bad operands for {op!r} ({left!r}, {right!r})", expr.line)

    def _expr_Unary(self, expr: ast.Unary, scope: Scope) -> Type:
        inner = self._expr(expr.operand, scope)
        op = expr.op
        if op == "-":
            value_type = decay(inner)
            if not value_type.is_arith:
                raise CompileError("unary '-' needs arithmetic operand", expr.line)
            if isinstance(value_type, DoubleType):
                return DOUBLE
            return common_arith(value_type, INT)
        if op == "!":
            return INT
        if op == "~":
            if not decay(inner).is_integer:
                raise CompileError("'~' needs an integer operand", expr.line)
            return common_arith(decay(inner), INT)
        if op == "*":
            target = decay(inner)
            if not target.is_pointer:
                raise CompileError("dereference of non-pointer", expr.line)
            return target.target
        if op == "&":
            self._mark_addr_taken(expr.operand)
            if isinstance(inner, ArrayType):
                return PointerType(inner.element)
            return PointerType(inner)
        raise CompileError(f"unhandled unary {op!r}", expr.line)  # pragma: no cover

    def _mark_addr_taken(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.VarRef) and expr.symbol is not None:
            expr.symbol.addr_taken = True
        elif isinstance(expr, ast.Member) and not expr.arrow:
            self._mark_addr_taken(expr.base)
        elif isinstance(expr, ast.Index):
            self._mark_addr_taken(expr.base)

    def _expr_Assign(self, expr: ast.Assign, scope: Scope) -> Type:
        target = self._expr(expr.target, scope)
        self._check_lvalue(expr.target)
        self._expr(expr.value, scope)
        if isinstance(target, ArrayType):
            raise CompileError("cannot assign to an array", expr.line)
        expr.value = self._coerce(expr.value, decay(target), expr.line)
        return target

    def _expr_IncDec(self, expr: ast.IncDec, scope: Scope) -> Type:
        target = self._expr(expr.target, scope)
        self._check_lvalue(expr.target)
        target = decay(target)
        if not (target.is_integer or target.is_pointer):
            raise CompileError("++/-- needs integer or pointer", expr.line)
        return target

    def _expr_Call(self, expr: ast.Call, scope: Scope) -> Type:
        func = self.functions.get(expr.name)
        if func is None:
            raise CompileError(f"call to undeclared function {expr.name!r}", expr.line)
        if len(expr.args) != len(func.param_types):
            raise CompileError(
                f"{expr.name!r} expects {len(func.param_types)} args, "
                f"got {len(expr.args)}",
                expr.line,
            )
        expr.func = func
        for position, arg in enumerate(expr.args):
            self._expr(arg, scope)
            expr.args[position] = self._coerce(
                arg, decay(func.param_types[position]), expr.line
            )
        return func.ret_type

    def _expr_Index(self, expr: ast.Index, scope: Scope) -> Type:
        base = decay(self._expr(expr.base, scope))
        index = decay(self._expr(expr.index, scope))
        if not base.is_pointer:
            raise CompileError("subscript of non-array", expr.line)
        if not index.is_integer:
            raise CompileError("array subscript must be an integer", expr.line)
        return base.target

    def _expr_Member(self, expr: ast.Member, scope: Scope) -> Type:
        base = self._expr(expr.base, scope)
        if expr.arrow:
            base = decay(base)
            if not (base.is_pointer and isinstance(base.target, StructType)):
                raise CompileError("'->' on non-struct-pointer", expr.line)
            struct = base.target
        else:
            if not isinstance(base, StructType):
                raise CompileError("'.' on non-struct", expr.line)
            struct = base
        return struct.field_type(expr.field)

    def _expr_Cast(self, expr: ast.Cast, scope: Scope) -> Type:
        self._expr(expr.expr, scope)
        return expr.target_type

    def _expr_SizeofType(self, expr: ast.SizeofType, scope) -> Type:
        return UINT

    def _expr_Ternary(self, expr: ast.Ternary, scope: Scope) -> Type:
        self._expr(expr.cond, scope)
        then_type = decay(self._expr(expr.then_expr, scope))
        else_type = decay(self._expr(expr.else_expr, scope))
        if then_type.is_arith and else_type.is_arith:
            common = common_arith(then_type, else_type)
            expr.then_expr = self._coerce(expr.then_expr, common, expr.line)
            expr.else_expr = self._coerce(expr.else_expr, common, expr.line)
            return common
        if then_type != else_type:
            raise CompileError("mismatched ternary arms", expr.line)
        return then_type

    # ------------------------------------------------------------------ #
    # helpers

    def _check_lvalue(self, expr: ast.Expr) -> None:
        if isinstance(expr, (ast.VarRef, ast.Index, ast.Member)):
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return
        raise CompileError("not an lvalue", expr.line)

    def _coerce(self, expr: ast.Expr, want: Type, line: int) -> ast.Expr:
        have = decay(expr.ctype)
        if have == want:
            return expr
        if isinstance(want, DoubleType) and have.is_integer:
            if isinstance(expr, ast.IntLit):
                lit = ast.FloatLit(float(expr.value), line)
                lit.ctype = DOUBLE
                return lit
            cast = ast.Cast(DOUBLE, expr, line)
            cast.ctype = DOUBLE
            return cast
        if want.is_integer and isinstance(have, DoubleType):
            cast = ast.Cast(want, expr, line)
            cast.ctype = want
            return cast
        if want.is_integer and have.is_integer:
            # same register representation; keep the node's own type so
            # codegen picks the right load/store width.
            return expr
        if want.is_pointer and (have.is_pointer or have.is_integer):
            return expr  # pointer casts are free in MiniC
        if want.is_integer and have.is_pointer:
            return expr
        raise CompileError(f"cannot convert {have!r} to {want!r}", line)
